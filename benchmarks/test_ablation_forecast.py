"""Ablation: forecasting strategies for the online monitor.

Compares the paper's error-feedback (EWMA) forecaster against last-value,
sliding-window and trend predictors on a drifting workload with a scene
cut.  All reasonable forecasters land close together (the decisions are
robust to moderate estimate noise); the interesting number is the
prediction error itself.
"""

from repro import (
    ExecutionMonitor,
    HEFScheduler,
    RisppSimulator,
    predictor_factory,
)
from repro.workload.model import H264WorkloadModel


def test_ablation_forecasters(benchmark, platform):
    registry, library = platform
    model = H264WorkloadModel(
        num_frames=16, seed=47, scene_cut_frame=8,
        activity_amplitude=0.45,
    )
    workload = model.generate()

    def run(kind, **kwargs):
        monitor = ExecutionMonitor(
            profile=model.offline_profile(),
            predictor_factory=predictor_factory(kind, **kwargs),
        )
        sim = RisppSimulator(
            library, registry, HEFScheduler(), num_acs=13,
            monitor=monitor,
        )
        cycles = sim.run(workload).total_mcycles
        error = monitor.stats("ME", "SAD").relative_error
        return cycles, error

    def run_all():
        return {
            "ewma": run("ewma", alpha=0.5),
            "last": run("last"),
            "window": run("window", window=4),
            "trend": run("trend", alpha=0.5, beta=0.3),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for kind, (cycles, error) in results.items():
        print(f"  {kind:<7s} {cycles:7.1f}M  ME/SAD rel. error {error:6.1%}")
    cycles_only = [cycles for cycles, _ in results.values()]
    assert max(cycles_only) / min(cycles_only) < 1.05
    # Every forecaster tracks the drifting content reasonably.
    assert all(error < 0.25 for _, error in results.values())
