"""Ablation: eviction policies under hot-spot churn.

The prototype evicts least-recently-used stale atoms.  Because the three
hot spots use disjoint atom sets and their combined demand exceeds the
fabric, almost everything stale is equally dead when a hot spot returns
— so the eviction policy should be *second-order* compared to the
scheduler.  This benchmark verifies that claim (and that even the
adversarial MRU policy cannot do much damage), which justifies the
paper's silence on the topic.
"""

from repro import HEFScheduler, RisppSimulator, generate_workload
from repro.fabric import get_eviction_policy


def test_ablation_eviction_policies(benchmark, platform):
    registry, library = platform
    workload = generate_workload(num_frames=10, seed=17)

    def run_all():
        totals = {}
        for name in ("LRU", "FIFO", "LFU", "MRU"):
            sim = RisppSimulator(
                library,
                registry,
                HEFScheduler(),
                num_acs=13,
                eviction_policy=get_eviction_policy(name),
            )
            totals[name] = sim.run(workload).total_mcycles
        return totals

    totals = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(
        "\n"
        + " | ".join(f"{k} {v:.1f}M" for k, v in totals.items())
    )
    spread = max(totals.values()) / min(totals.values())
    print(f"spread: {spread:.4f}x (policy is second-order)")
    assert spread < 1.10
    # LRU (the prototype policy) is never meaningfully worse than the
    # best alternative.
    assert totals["LRU"] <= min(totals.values()) * 1.05
