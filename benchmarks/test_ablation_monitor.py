"""Ablation: value of the online monitor (Section 3.1, point II).

The paper's motivation is that SI execution frequencies are hard to
predict at design time.  This ablation runs HEF with three forecasting
configurations:

* **adaptive** — starts from a *wrong* design-time profile (the per-SI
  frequencies of each hot spot inverted: the hottest SI is believed to
  be the rarest) and learns from run-time feedback (alpha = 0.5),
* **frozen-wrong** — the same wrong profile, never updated (a
  design-time-only system whose prediction missed),
* **frozen-oracle** — a perfect offline profile, never updated (the
  unrealistic best case of design-time prediction).

The adaptive monitor must recover most of the gap between the frozen
extremes: run-time monitoring substitutes for design-time knowledge,
which is the paper's central motivation.
"""

from repro import ExecutionMonitor, HEFScheduler, RisppSimulator
from repro.workload.model import H264WorkloadModel


class _FrozenMonitor(ExecutionMonitor):
    """An ExecutionMonitor that ignores all feedback."""

    def update(self, hot_spot, measured):  # noqa: D102 - ablation stub
        return None


def test_ablation_monitor_feedback(benchmark, platform):
    registry, library = platform
    model = H264WorkloadModel(
        num_frames=16, seed=31, scene_cut_frame=8,
        activity_amplitude=0.45,
    )
    workload = model.generate()
    profile = model.offline_profile()
    # Invert each hot spot's frequency assignment: hottest <-> rarest.
    wrong_profile = {}
    for hot_spot, entries in profile.items():
        names = sorted(entries, key=entries.get)
        values = sorted(entries.values(), reverse=True)
        wrong_profile[hot_spot] = dict(zip(names, values))

    def run(monitor):
        sim = RisppSimulator(
            library, registry, HEFScheduler(), num_acs=13,
            monitor=monitor,
        )
        return sim.run(workload).total_mcycles

    def run_all():
        adaptive = run(ExecutionMonitor(alpha=0.5, profile=wrong_profile))
        frozen_wrong = run(_FrozenMonitor(alpha=0.5, profile=wrong_profile))
        frozen_oracle = run(_FrozenMonitor(alpha=0.5, profile=profile))
        return adaptive, frozen_wrong, frozen_oracle

    adaptive, frozen_wrong, frozen_oracle = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    print(
        f"\nadaptive (wrong start) {adaptive:.1f}M | "
        f"frozen wrong {frozen_wrong:.1f}M | "
        f"frozen oracle profile {frozen_oracle:.1f}M"
    )
    # Monitoring must recover the wrong design-time estimate...
    assert adaptive < frozen_wrong
    # ...to within a few percent of the design-time oracle.
    assert adaptive <= frozen_oracle * 1.05
