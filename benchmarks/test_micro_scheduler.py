"""Microbenchmarks: the run-time decision path itself.

The paper implements HEF in hardware because the decision has to run at
every hot-spot switch; these benchmarks measure the software cost of one
full decision (forecast -> selection -> schedule) and of the individual
pieces, using pytest-benchmark's statistical timing.
"""

from repro import (
    ExecutionMonitor,
    HEFScheduler,
    RuntimeManager,
    get_scheduler,
    select_molecules,
)
from repro.h264.silibrary import HOT_SPOT_SIS


EXPECTED_EE = {
    "DCT": 5544.0,
    "HT2x2": 396.0,
    "HT4x4": 792.0,
    "MC": 2633.0,
    "IPredHDC": 416.0,
    "IPredVDC": 416.0,
}


def test_micro_selection(benchmark, platform):
    registry, library = platform
    sis = library.subset(HOT_SPOT_SIS["EE"])
    selection = benchmark(select_molecules, sis, EXPECTED_EE, 20)
    assert selection.num_atoms <= 20


def test_micro_hef_schedule(benchmark, platform):
    registry, library = platform
    sis = {name: library.get(name) for name in HOT_SPOT_SIS["EE"]}
    selection = select_molecules(
        list(sis.values()), EXPECTED_EE, 20
    ).hardware_selection()
    scheduler = HEFScheduler()
    zero = library.space.zero()
    schedule = benchmark(
        scheduler.schedule, selection, sis, zero, EXPECTED_EE
    )
    assert len(schedule) > 0


def test_micro_full_hot_spot_plan(benchmark, platform):
    registry, library = platform
    manager = RuntimeManager(
        library,
        get_scheduler("HEF"),
        num_acs=20,
        monitor=ExecutionMonitor(profile={"EE": EXPECTED_EE}),
    )
    plan = benchmark(
        manager.plan_hot_spot, "EE", HOT_SPOT_SIS["EE"],
        library.space.zero(),
    )
    assert plan.selection.num_atoms <= 20


def test_micro_fastest_available(benchmark, platform):
    registry, library = platform
    satd = library.get("SATD")
    available = library.space.molecule(
        {"QSUB": 1, "REPACK": 1, "HADAMARD": 2, "SAV": 1}
    )
    impl = benchmark(satd.fastest_available, available)
    assert not impl.is_software
