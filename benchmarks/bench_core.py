"""Committed perf trajectory for the cycle-accounting core.

Runs the Figure 7 driver grid (every paper scheduler and the Molen and
software baselines across the full AC sweep, 8 frames) through
``execute_cell`` — no cache, no worker pool — once per engine, and
records, per PR:

* ``cells_per_sec`` / ``iterations_per_sec`` per engine and the
  reference→vector ``speedup`` — wall-clock numbers; informational on
  shared machines, comparable on a pinned one,
* ``cells`` / ``total_iterations`` — the deterministic size of the
  scenario (bit-stable: a change means the driver grid or the workload
  model changed),
* ``result_digest`` — a hash over every cell's cycle accounting from
  the reference engine; a digest change without an intentional semantic
  change is a regression,
* ``engines_identical`` — whether the vector engine reproduced the
  reference digest bit-for-bit; ``False`` is always a bug,
* ``cells_per_sec_prefetch`` / ``prefetch_hidden_cycles`` — one
  informational PREFETCH pass over the RISPP AC sweep (reference
  engine: speculation forces the per-cycle loop).  Never gated — it
  records the speculative lane's throughput cost and how much
  reconfiguration overhead it hides next to the HEF cells of the same
  grid.

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py            # print
    PYTHONPATH=src python benchmarks/bench_core.py --write    # append
    PYTHONPATH=src python benchmarks/bench_core.py --check    # gate

``--write`` appends one entry (keyed by ``--label``, default the short
git hash) to ``BENCH_core.json`` at the repo root; the file is a
history, newest last.  ``--check`` re-runs the scenario and fails if
the deterministic fields drifted from the newest committed entry —
wall throughput is never gated.

Timing is min-of-``reps`` with the engines interleaved per rep, so a
load spike on a shared machine hits both engines rather than biasing
the speedup ratio.

The file deliberately does not match pytest's ``test_*`` pattern: it is
a recording harness, not part of the benchmark smoke suite.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_core.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import (  # noqa: E402
    ExperimentScale,
    fig7_spec,
)
from repro.exec.runner import execute_cell  # noqa: E402

#: The recorded scenario: the Figure 7 grid at 8 frames (the same scale
#: as the live golden sweep).  Change these only together with a fresh
#: ``--write`` entry explaining why.
SCENARIO: Dict[str, Any] = {
    "figure": "fig7",
    "frames": 8,
    "seed": 2008,
    "reps": 3,
}

#: Deterministic (machine-independent) fields gated by ``--check``.
GATED_FIELDS = (
    "cells",
    "total_iterations",
    "result_digest",
    "engines_identical",
)


def _digest(results: List[Any]) -> str:
    """Hash the cycle accounting of every cell, in grid order."""
    payload = [
        {
            "system": r.system,
            "scheduler": r.scheduler_name,
            "num_acs": r.num_acs,
            "total_cycles": r.total_cycles,
            "hot_spot_cycles": r.hot_spot_cycles,
            "per_frame_cycles": list(r.per_frame_cycles),
            "si_executions": dict(r.si_executions),
            "loads_started": r.loads_started,
            "loads_completed": r.loads_completed,
            "evictions": r.evictions,
            "degraded_cycles": r.degraded_cycles,
        }
        for r in results
    ]
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return "sha256:" + hashlib.sha256(blob).hexdigest()[:16]


def run_scenario() -> Dict[str, Any]:
    scale = ExperimentScale(
        frames=int(SCENARIO["frames"]), seed=int(SCENARIO["seed"])
    )
    spec = fig7_spec(scale)
    cells = {
        engine: [
            dataclasses.replace(cell, engine=engine)
            for cell in spec.cells()
        ]
        for engine in ("reference", "vector")
    }
    workload = scale.workload()
    iters_per_cell = sum(t.counts.shape[0] for t in workload.traces)

    walls = {"reference": [], "vector": []}  # type: Dict[str, List[float]]
    results: Dict[str, List[Any]] = {}
    for rep in range(int(SCENARIO["reps"])):
        for engine in ("reference", "vector"):
            start = time.perf_counter()
            batch = [execute_cell(cell) for cell in cells[engine]]
            walls[engine].append(time.perf_counter() - start)
            if rep == 0:
                results[engine] = batch

    digests = {eng: _digest(results[eng]) for eng in results}
    n_cells = len(cells["reference"])
    total_iterations = iters_per_cell * n_cells
    entry: Dict[str, Any] = {
        "scenario": dict(SCENARIO),
        "cells": n_cells,
        "total_iterations": total_iterations,
        "result_digest": digests["reference"],
        "engines_identical": digests["reference"] == digests["vector"],
    }
    for engine in ("reference", "vector"):
        wall = min(walls[engine])
        entry[f"wall_seconds_{engine}"] = round(wall, 3)
        entry[f"cells_per_sec_{engine}"] = round(n_cells / wall, 1)
        entry[f"iterations_per_sec_{engine}"] = round(
            total_iterations / wall, 1
        )
    entry["speedup"] = round(
        entry["wall_seconds_reference"] / entry["wall_seconds_vector"], 2
    )

    # Informational PREFETCH pass: the HEF cells of the same grid with
    # speculation enabled (reference engine — speculation forces the
    # per-cycle loop).  One rep; never gated.
    prefetch_cells = [
        dataclasses.replace(cell, scheduler="PREFETCH", engine="reference")
        for cell in cells["reference"]
        if cell.system == "RISPP" and cell.scheduler == "HEF"
    ]
    start = time.perf_counter()
    prefetch_results = [execute_cell(cell) for cell in prefetch_cells]
    prefetch_wall = time.perf_counter() - start
    hef_by_acs = {
        r.num_acs: r
        for r in results["reference"]
        if r.system == "RISPP" and r.scheduler_name == "HEF"
    }
    hidden = sum(
        max(0, hef_by_acs[r.num_acs].total_cycles - r.total_cycles)
        for r in prefetch_results
    )
    entry["wall_seconds_prefetch"] = round(prefetch_wall, 3)
    entry["cells_per_sec_prefetch"] = round(
        len(prefetch_cells) / prefetch_wall, 1
    )
    entry["prefetch_hidden_cycles"] = hidden
    return entry


def git_label() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "worktree"


def load_history() -> List[Dict[str, Any]]:
    if not BENCH_PATH.exists():
        return []
    return list(json.loads(BENCH_PATH.read_text(encoding="utf-8")))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write",
        action="store_true",
        help="append this run to BENCH_core.json",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if deterministic metrics drifted from the newest entry",
    )
    parser.add_argument(
        "--label", default=None, help="entry label (default: git hash)"
    )
    args = parser.parse_args(argv)

    entry = run_scenario()
    entry["label"] = args.label or git_label()
    print(json.dumps(entry, indent=2, sort_keys=True))

    if not entry["engines_identical"]:
        print("vector engine diverged from reference", file=sys.stderr)
        return 1

    if args.check:
        history = load_history()
        if not history:
            print("no committed history to check against", file=sys.stderr)
            return 1
        baseline = history[-1]
        drift = {
            field: (baseline.get(field), entry[field])
            for field in GATED_FIELDS
            if baseline.get(field) != entry[field]
        }
        if drift:
            print(f"deterministic metrics drifted: {drift}", file=sys.stderr)
            return 1
        print(f"check ok against entry {baseline.get('label')!r}")
        return 0

    if args.write:
        history = load_history()
        history.append(entry)
        BENCH_PATH.write_text(
            json.dumps(history, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"recorded entry {entry['label']!r} -> {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
