"""Ablation: how much of HEF's advantage is the benefit metric?

Compares HEF against a random-but-valid upgrade order (lower bound on
scheduling intelligence) and against a beam-search lookahead (upper
bound under the same cost surrogate) at a representative AC count.
HEF should clearly beat random and sit close to the lookahead, which is
the paper's implicit claim when calling the greedy metric sufficient.
"""

from repro import (
    LookaheadScheduler,
    RandomScheduler,
    RisppSimulator,
    get_scheduler,
    generate_workload,
)


def _run(platform, scheduler, workload, num_acs=13):
    registry, library = platform
    sim = RisppSimulator(library, registry, scheduler, num_acs)
    return sim.run(workload).total_mcycles


def test_ablation_hef_vs_random_vs_lookahead(benchmark, platform):
    workload = generate_workload(num_frames=10, seed=5)

    def run_all():
        hef = _run(platform, get_scheduler("HEF"), workload)
        randoms = [
            _run(platform, RandomScheduler(seed=s), workload)
            for s in range(3)
        ]
        lookahead = _run(
            platform, LookaheadScheduler(beam_width=4), workload
        )
        return hef, randoms, lookahead

    hef, randoms, lookahead = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    mean_random = sum(randoms) / len(randoms)
    print(
        f"\nHEF {hef:.1f}M vs random {mean_random:.1f}M "
        f"(x{mean_random / hef:.3f}) vs lookahead(4) {lookahead:.1f}M "
        f"(x{hef / lookahead:.3f})"
    )
    # The benefit metric must beat uninformed ordering...
    assert hef < mean_random
    # ...and come close to the (costly) lookahead.
    assert hef < lookahead * 1.10
