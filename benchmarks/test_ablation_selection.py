"""Ablation: greedy vs. optimal molecule selection.

Molecule selection is "beyond the scope" of the paper (it cites the
RISPP platform paper [23], which uses a profit-greedy heuristic).  This
ablation quantifies what the greedy heuristic gives away against a
branch-and-bound optimum on the two real hot spots, per AC budget.

Known result: the greedy is exact at most budgets but can mis-spend a
very tight budget (e.g. 4 ACs on ME: it accelerates SAD first and can
no longer afford SATD's four-atom entry molecule).
"""

from repro import select_molecules, select_molecules_optimal
from repro.h264.silibrary import HOT_SPOT_SIS

EXPECTED = {
    "SAD": 19_800.0,
    "SATD": 12_177.0,
    "DCT": 5_544.0,
    "HT2x2": 396.0,
    "HT4x4": 792.0,
    "MC": 2_633.0,
    "IPredHDC": 416.0,
    "IPredVDC": 416.0,
}


def _cost(selection, names):
    return sum(EXPECTED[name] * selection.latency(name) for name in names)


def test_ablation_selection_greedy_vs_optimal(benchmark, platform):
    registry, library = platform

    def sweep():
        rows = []
        for hot_spot in ("ME", "EE"):
            names = HOT_SPOT_SIS[hot_spot]
            sis = library.subset(names)
            for num_acs in (4, 6, 8, 12, 16, 20):
                greedy = _cost(
                    select_molecules(sis, EXPECTED, num_acs), names
                )
                optimal = _cost(
                    select_molecules_optimal(sis, EXPECTED, num_acs),
                    names,
                )
                rows.append((hot_spot, num_acs, greedy / optimal))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nhot spot  #ACs  greedy/optimal expected-cost ratio")
    worst = 1.0
    for hot_spot, num_acs, ratio in rows:
        print(f"  {hot_spot:<6s} {num_acs:4d}  {ratio:8.3f}")
        worst = max(worst, ratio)
    # Greedy is never unboundedly bad and exact at most budgets.
    assert worst < 2.5
    exact = sum(1 for _, _, r in rows if r < 1.001)
    assert exact >= len(rows) // 2
