"""Figure 2 — SI executions per 100K cycles with vs without upgrades.

The motivating experiment: the Motion Estimation hot spot processed with
gradual SI upgrades (RISPP/HEF) and without (Molen-like, software until
the full molecule is reconfigured).  Shape targets from the paper: the
upgrade run ramps up its execution rate well before the no-upgrade run
(whose rate only jumps once the full SATD implementation is loaded) and
finishes the same work earlier.
"""

from repro.analysis import format_figure2, run_figure2


def test_fig2_upgrade_motivation(benchmark):
    result = benchmark.pedantic(
        run_figure2, kwargs={"num_acs": 10}, rounds=1, iterations=1
    )
    # Shape 1: the with-upgrade run never finishes later.
    assert result.with_total_cycles <= result.without_total_cycles
    # Shape 2: the rate ramp starts earlier with upgrades.
    half_with = result.with_upgrade.max() / 2
    half_without = result.without_upgrade.max() / 2
    ramp_with = next(
        i for i, v in enumerate(result.with_upgrade) if v > half_with
    )
    ramp_without = next(
        i for i, v in enumerate(result.without_upgrade) if v > half_without
    )
    assert ramp_with < ramp_without
    print()
    print(format_figure2(result))
