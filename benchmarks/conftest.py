"""Shared state for the benchmark harness.

The Figure 7 sweep is by far the heaviest experiment and feeds both the
Figure 7 benchmark and the Table 2 benchmark; it is computed once per
session and cached here.  Set ``REPRO_FRAMES=140`` for the full paper
scale (default: 40 frames — the speedup shapes are stable there).

The sweep executes through the parallel sweep engine
(:mod:`repro.exec`): set ``REPRO_JOBS=N`` to fan the cells out over N
worker processes and ``REPRO_CACHE_DIR=...`` to reuse cell results
across benchmark sessions (parallel and cached runs are bit-identical
to serial fresh ones).  Set ``REPRO_TIMEOUT=SECONDS`` (and optionally
``REPRO_MAX_ATTEMPTS=N``) to route the sweep through the fault-tolerant
supervisor (:mod:`repro.exec.supervise`) so a hung cell is killed,
retried and, if it keeps failing, quarantined instead of stalling the
whole benchmark session.
"""

import pytest

from repro import build_atom_registry, build_si_library
from repro.analysis.experiments import default_scale, run_figure7


@pytest.fixture(scope="session")
def platform():
    registry = build_atom_registry()
    return registry, build_si_library(registry)


@pytest.fixture(scope="session")
def scale():
    return default_scale()


_FIG7_CACHE = {}


@pytest.fixture(scope="session")
def fig7_result(scale):
    """The scheduler sweep underlying Figure 7 and Table 2."""
    key = (scale.frames, scale.seed, scale.ac_counts)
    if key not in _FIG7_CACHE:
        _FIG7_CACHE[key] = run_figure7(scale=scale)
    return _FIG7_CACHE[key]
