"""Table 3 — hardware implementation results of the HEF scheduler.

The structural cost model reproduces the paper's synthesis numbers
exactly with the default parameters (12-state FSM, 18-bit cross-
multiplied benefit pipeline).
"""

import pytest

from repro.analysis import format_table3
from repro.hw import HEFSchedulerCostModel, table3


def test_table3_hw_costs(benchmark):
    hef, atom = benchmark(table3)
    assert hef.slices == 549
    assert hef.luts == 915
    assert hef.ffs == 297
    assert hef.mult18x18 == 5
    assert hef.gate_equivalents == 30_769
    assert hef.clock_delay_ns == pytest.approx(12.596)
    assert atom.slices == 421
    assert atom.gate_equivalents == 6_944
    assert hef.fits_one_ac()
    print()
    print(format_table3())


def test_table3_scaling_what_if(benchmark):
    """Extension: scheduler cost if the benefit pipeline were 36 bit."""
    model = HEFSchedulerCostModel(benefit_width=36)
    wide = benchmark(model.characteristics)
    narrow, _ = table3()
    print(
        f"\n36-bit benefit datapath: {wide.slices} slices / "
        f"{wide.mult18x18} MULT18X18 vs paper's {narrow.slices} / "
        f"{narrow.mult18x18}"
    )
    assert wide.slices > narrow.slices
