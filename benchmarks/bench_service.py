"""Committed perf trajectory for the multi-tenant fabric service.

Runs a fixed, fully deterministic overload scenario through
:func:`repro.service.run_service` and records, per PR:

* ``requests_per_sec`` — wall-clock throughput of the arbiter event
  loop (the only non-deterministic field; informational on shared
  machines, comparable on a pinned one),
* ``p50_latency`` / ``p99_latency`` — *virtual* ticks from arrival to
  completion (bit-stable: any change means the arbiter's scheduling
  behaviour changed, not the machine),
* ``shed_rate`` and the shed taxonomy,
* ``service_digest`` — the run's identity; a digest change without an
  intentional semantic change is a regression,
* ``snapshot_overhead`` / ``recovery_wall_seconds`` — wall-clock cost
  of journaling with periodic snapshots, and of a snapshot-anchored
  recovery after a mid-soak crash (both informational, never gated).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # print
    PYTHONPATH=src python benchmarks/bench_service.py --write    # append
    PYTHONPATH=src python benchmarks/bench_service.py --check    # gate

``--write`` appends one entry (keyed by ``--label``, default the short
git hash) to ``BENCH_service.json`` at the repo root; the file is a
history, newest last.  ``--check`` re-runs the scenario and fails if
the virtual metrics drifted from the newest committed entry — wall
throughput is never gated.

The file deliberately does not match pytest's ``test_*`` pattern: it is
a recording harness, not part of the benchmark smoke suite.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_service.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import ServiceCrash  # noqa: E402
from repro.service import (  # noqa: E402
    ServiceConfig,
    make_tenant_fleet,
    recover_service,
    run_service,
)

#: The recorded scenario: an oversubscribed 8-tenant fleet with a fault
#: storm landing while the answer cache is still cold.  Change these
#: only together with a fresh ``--write`` entry explaining why.
SCENARIO: Dict[str, Any] = {
    "tenants": 8,
    "duration": 20_000,
    "num_acs": 6,
    "seed": 2008,
    "mean_gap": 90,
    "deadline_slack": 500,
    "fault_ticks": [1000, 1020, 1040],
}

#: Virtual (machine-independent) fields gated by ``--check``.
GATED_FIELDS = (
    "submitted",
    "completed",
    "degraded",
    "shed_rate",
    "shed",
    "p50_latency",
    "p99_latency",
    "service_digest",
)


def run_scenario() -> Dict[str, Any]:
    fleet = make_tenant_fleet(
        int(SCENARIO["tenants"]),
        seed=int(SCENARIO["seed"]),
        mean_gap=int(SCENARIO["mean_gap"]),
        deadline_slack=int(SCENARIO["deadline_slack"]),
    )
    config = ServiceConfig(
        num_acs=int(SCENARIO["num_acs"]),
        duration=int(SCENARIO["duration"]),
        seed=int(SCENARIO["seed"]),
        fault_ticks=tuple(SCENARIO["fault_ticks"]),
    )
    start = time.perf_counter()
    report = run_service(fleet, config=config, cache=None)
    wall = time.perf_counter() - start
    payload = report.to_json_dict()
    snap_overhead, recovery_wall = measure_crash_recovery(
        fleet, config, wall, payload["service_digest"]
    )
    return {
        "scenario": dict(SCENARIO),
        "wall_seconds": round(wall, 3),
        "requests_per_sec": round(payload["submitted"] / wall, 1),
        "submitted": payload["submitted"],
        "completed": payload["completed"],
        "degraded": payload["degraded"],
        "cache_hits": payload["cache_hits"],
        "shed_rate": round(
            sum(payload["shed"].values()) / payload["submitted"], 4
        ),
        "shed": payload["shed"],
        "p50_latency": payload["p50_latency"],
        "p99_latency": payload["p99_latency"],
        "breaker_trips": payload["breaker_trips"],
        "service_digest": payload["service_digest"],
        "snapshot_overhead": snap_overhead,
        "recovery_wall_seconds": recovery_wall,
    }


def measure_crash_recovery(
    fleet: Any, config: ServiceConfig, plain_wall: float, digest: str
) -> tuple:
    """Wall-clock cost of snapshotting and of crash recovery.

    Runs the scenario again with a journal and periodic snapshots to
    price the durability machinery (overhead relative to the bare run),
    then crashes a third run mid-soak and times ``recover_service``.
    Both numbers are wall-clock and therefore informational only; the
    recovered digest is still asserted identical so the harness never
    records timings for a broken recovery.
    """
    snapshot_every = max(1, int(config.duration) // 8)
    crash_at = int(config.duration) // 2
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        journal = Path(tmp) / "service.jsonl"
        snap_config = dataclasses.replace(
            config, snapshot_every=snapshot_every
        )
        start = time.perf_counter()
        run_service(fleet, config=snap_config, journal_path=journal)
        snap_wall = time.perf_counter() - start

        crash_journal = Path(tmp) / "crash.jsonl"
        try:
            run_service(
                fleet,
                config=snap_config,
                journal_path=crash_journal,
                crash_at_tick=crash_at,
                crash_mode="raise",
            )
        except ServiceCrash:
            pass
        start = time.perf_counter()
        report = recover_service(
            fleet, config=snap_config, journal_path=crash_journal
        )
        recovery_wall = time.perf_counter() - start
        if report.service_digest() != digest:
            raise SystemExit(
                "crash recovery diverged from the reference run; "
                "refusing to record timings"
            )
    overhead = (snap_wall - plain_wall) / plain_wall if plain_wall else 0.0
    return round(overhead, 3), round(recovery_wall, 3)


def git_label() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "worktree"


def load_history() -> List[Dict[str, Any]]:
    if not BENCH_PATH.exists():
        return []
    return list(json.loads(BENCH_PATH.read_text(encoding="utf-8")))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write",
        action="store_true",
        help="append this run to BENCH_service.json",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if virtual metrics drifted from the newest entry",
    )
    parser.add_argument(
        "--label", default=None, help="entry label (default: git hash)"
    )
    args = parser.parse_args(argv)

    entry = run_scenario()
    entry["label"] = args.label or git_label()
    print(json.dumps(entry, indent=2, sort_keys=True))

    if args.check:
        history = load_history()
        if not history:
            print("no committed history to check against", file=sys.stderr)
            return 1
        baseline = history[-1]
        drift = {
            field: (baseline.get(field), entry[field])
            for field in GATED_FIELDS
            if baseline.get(field) != entry[field]
        }
        if drift:
            print(f"virtual metrics drifted: {drift}", file=sys.stderr)
            return 1
        print(f"check ok against entry {baseline.get('label')!r}")
        return 0

    if args.write:
        history = load_history()
        history.append(entry)
        BENCH_PATH.write_text(
            json.dumps(history, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"recorded entry {entry['label']!r} -> {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
