"""Figure 7 — execution time vs Atom-Container count per scheduler.

Sweeps ASF, FSFR, SJF and HEF (plus the Molen baseline) over the paper's
AC range on the calibrated 140-frame CIF workload (REPRO_FRAMES scales
it down for quick runs).  Shape targets from the paper:

* HEF is never slower than any other scheduler (small tie tolerance),
* more ACs help HEF monotonically overall (end vs start of the sweep),
* the naive schedulers show non-monotone behaviour — adding ACs can
  *hurt* them because the selection picks bigger molecules,
* everything beats the 7,403 M-cycle pure-software run by an order of
  magnitude.
"""

from repro.analysis import ascii_plot_fig7, format_fig7_table


def test_fig7_scheduler_sweep(benchmark, fig7_result):
    result = benchmark.pedantic(
        lambda: fig7_result, rounds=1, iterations=1
    )
    hef = result.mcycles["HEF"]
    # HEF never loses (1% tolerance for ties at tiny AC counts).
    for name in ("ASF", "FSFR", "SJF", "Molen"):
        for h, other in zip(hef, result.mcycles[name]):
            assert h <= other * 1.01, name
    # The sweep helps HEF end to end.
    assert hef[-1] < hef[0]
    # Non-monotone degradation exists for at least one naive scheduler.
    degradations = 0
    for name in ("ASF", "FSFR", "SJF"):
        series = result.mcycles[name]
        degradations += sum(
            1 for a, b in zip(series, series[1:]) if b > a * 1.001
        )
    assert degradations > 0
    # Everything is far better than software.
    for series in result.mcycles.values():
        assert all(v < result.software_mcycles / 3 for v in series)
    print()
    print(format_fig7_table(result))
    print()
    print(ascii_plot_fig7(result))
