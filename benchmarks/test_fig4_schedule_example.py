"""Figure 4 — atom schedules and molecule availability (toy example).

Two schedules for the same selected molecule m3 = (3, 3): a good one
(HEF) that upgrades stepwise through m1 and m2, and the naive dashed-line
schedule that loads all A1 atoms first and leaves the SI in software for
most of the reconfiguration.
"""

from repro.analysis import format_figure4, run_figure4


def test_fig4_schedule_example(benchmark):
    result = benchmark(run_figure4)
    hef = result.availability["HEF"]
    naive = result.availability["naive"]
    # The good schedule exploits stepwise upgrading...
    assert hef[1] == "m1" and hef[3] == "m2" and hef[5] == "m3"
    # ...the naive one stays in software noticeably longer (Figure 4's
    # table: no accelerating molecule until the 5th load).
    assert naive[:4] == ["software"] * 4
    # Both end at the selected molecule.
    assert naive[-1] == "m3"
    # Time-integrated latency is strictly better for the good schedule.
    assert sum(result.latencies["HEF"]) < sum(result.latencies["naive"])
    print()
    print(format_figure4(result))
