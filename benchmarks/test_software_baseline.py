"""Section 5 anchor — the pure-software (0 ACs) execution time.

The paper reports 7,403 M cycles for encoding 140 CIF frames on the
base processor alone.  The workload model and trap latencies are
calibrated to land within 1% of that number at full scale; at reduced
REPRO_FRAMES the per-frame figure is checked instead.
"""

from repro import generate_workload, simulate_software
from repro.calibration import NUM_FRAMES, SOFTWARE_TOTAL_MCYCLES


def test_software_baseline_calibration(benchmark, platform, scale):
    registry, library = platform
    workload = generate_workload(num_frames=scale.frames)
    result = benchmark.pedantic(
        simulate_software, args=(library, workload), rounds=1,
        iterations=1,
    )
    per_frame = result.total_mcycles / scale.frames
    paper_per_frame = SOFTWARE_TOTAL_MCYCLES / NUM_FRAMES
    print(
        f"\nsoftware: {result.total_mcycles:,.0f} M over {scale.frames} "
        f"frames = {per_frame:.2f} M/frame "
        f"(paper: {paper_per_frame:.2f} M/frame, 7,403 M total)"
    )
    assert abs(per_frame - paper_per_frame) < 0.02 * paper_per_frame
