"""Figure 8 — detailed HEF behaviour over ME and EE of one frame.

At 10 ACs the latency lines of SAD/SATD (ME) and MC/DCT (EE) step down
as the scheduled upgrades land, and the execution-rate bars rise
accordingly.  Shape targets: every plotted SI shows at least one upgrade
step inside its hot spot, ME activity precedes EE activity, and the
execution rate after the upgrades is a multiple of the initial rate.
"""

import numpy as np

from repro.analysis import format_figure8, run_figure8


def test_fig8_hef_detail(benchmark):
    result = benchmark.pedantic(
        run_figure8, kwargs={"num_acs": 10}, rounds=1, iterations=1
    )
    # Upgrades land for the hot SIs (latency strictly decreases).
    for name in ("SAD", "SATD", "DCT"):
        cycles, lats = result.latency_series[name]
        assert len(lats) >= 2, name
        assert lats.min() < lats.max(), name
    # ME (SAD) precedes EE (DCT) — the Figure 1 hot-spot order.
    sad = result.executions["SAD"]
    dct = result.executions["DCT"]
    first_sad = next(i for i, v in enumerate(sad) if v > 0)
    first_dct = next(i for i, v in enumerate(dct) if v > 0)
    assert first_sad < first_dct
    # The rate ramps up within ME as upgrades land.
    active = sad[sad > 0]
    assert active.max() > 2 * active[0]
    print()
    print(format_figure8(result))
