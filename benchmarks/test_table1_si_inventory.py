"""Table 1 — the implemented SIs of H.264.

Regenerates the SI inventory from the library and checks it against the
paper's exact counts; the benchmark measures the library construction
(the static input the run-time system is built from).
"""

from repro import build_atom_registry, build_si_library
from repro.analysis import format_table1

PAPER_TABLE1 = {
    "SAD": (1, 3),
    "SATD": (4, 20),
    "DCT": (3, 12),
    "HT2x2": (1, 2),
    "HT4x4": (2, 7),
    "MC": (3, 11),
    "IPredHDC": (2, 4),
    "IPredVDC": (1, 3),
    "LF_BS4": (2, 5),
}


def test_table1_si_inventory(benchmark):
    registry = build_atom_registry()
    library = benchmark(build_si_library, registry)
    inventory = {
        name: (types, molecules)
        for name, types, molecules in library.inventory()
    }
    assert inventory == PAPER_TABLE1
    print()
    print(format_table1(library))
    print("(matches the paper's Table 1 exactly)")
