"""Table 2 — speedups of HEF vs ASF, ASF vs Molen and HEF vs Molen.

Derived from the Figure 7 sweep.  Shape targets from the paper:

* HEF vs Molen grows with the AC count (paper: 1.09x at 5 ACs up to
  2.38x at 24),
* ASF vs Molen grows as well (paper: up to 1.67x),
* HEF never performs slower than Molen or any other scheduler.

Absolute magnitudes depend on the authors' unpublished molecule latency
tables; EXPERIMENTS.md records measured-vs-paper values.
"""

from repro.analysis import format_table2, speedup_table


def test_table2_speedups(benchmark, fig7_result):
    table = benchmark.pedantic(
        speedup_table, args=(fig7_result,), rounds=1, iterations=1
    )
    hef_molen = table["HEF vs Molen"]
    asf_molen = table["ASF vs Molen"]
    hef_asf = table["HEF vs ASF"]
    # Growth with AC count (compare the top third to the bottom third).
    third = max(1, len(hef_molen) // 3)
    assert (
        sum(hef_molen[-third:]) / third
        > sum(hef_molen[:third]) / third
    )
    assert (
        sum(asf_molen[-third:]) / third
        >= sum(asf_molen[:third]) / third
    )
    # HEF never slower than Molen or ASF (1% tie tolerance).
    assert all(v >= 0.99 for v in hef_molen)
    assert all(v >= 0.99 for v in hef_asf)
    print()
    print(format_table2(fig7_result))
