#!/usr/bin/env python3
"""CI gate around mypy: strict islands block, the rest is baselined.

Runs ``mypy`` over ``src/repro`` with the repo's ``pyproject.toml`` and
splits the reported errors in two:

* **Island errors** — in ``repro/core``, ``repro/obs``, ``repro/exec``,
  ``repro/lint`` or ``repro/service`` (the strictly-typed packages).
  Any island error fails the gate immediately.
* **Baseline errors** — everywhere else.  These fail only when they are
  *new* relative to the committed ``tools/mypy_baseline.txt``; known
  debt is tolerated but may not grow.  Entries are matched without line
  numbers so unrelated edits don't invalidate the baseline.

Usage::

    python tools/mypy_gate.py                  # gate (CI)
    python tools/mypy_gate.py --update-baseline  # re-record known debt

Exit codes: 0 gate passed, 1 new errors, 2 mypy could not run.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path
from typing import List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "tools" / "mypy_baseline.txt"
ISLANDS = (
    "repro/core/",
    "repro/obs/",
    "repro/exec/",
    "repro/lint/",
    "repro/service/",
    "repro/sim/vector",
)

# "src/repro/sim/engine.py:12: error: message  [code]"
_ERROR_RE = re.compile(
    r"^(?P<path>[^:]+\.py):(?P<line>\d+)(?::\d+)?: error: (?P<message>.*)$"
)


def run_mypy() -> Tuple[List[str], int]:
    """mypy's stdout lines and return code (2 = crashed/missing)."""
    cmd = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        str(REPO_ROOT / "pyproject.toml"),
        "src/repro",
    ]
    try:
        proc = subprocess.run(
            cmd,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=False,
        )
    except FileNotFoundError:
        return [], 2
    if proc.returncode not in (0, 1) or "No module named mypy" in proc.stderr:
        sys.stderr.write(proc.stdout + proc.stderr)
        return [], 2
    return proc.stdout.splitlines(), proc.returncode


def error_key(path: str, message: str) -> str:
    """Baseline key: path + message, line number dropped."""
    normalized = path.replace("\\", "/")
    return f"{normalized}: {message.strip()}"


def split_errors(lines: List[str]) -> Tuple[List[str], List[str], Set[str]]:
    """(island error lines, other error lines, other error keys)."""
    island: List[str] = []
    other: List[str] = []
    other_keys: Set[str] = set()
    for line in lines:
        match = _ERROR_RE.match(line.strip())
        if not match:
            continue
        path = match.group("path").replace("\\", "/")
        if any(marker in path for marker in ISLANDS):
            island.append(line)
        else:
            other.append(line)
            other_keys.add(error_key(path, match.group("message")))
    return island, other, other_keys


def load_baseline() -> Set[str]:
    if not BASELINE.exists():
        return set()
    keys = set()
    for raw in BASELINE.read_text().splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite tools/mypy_baseline.txt from the current mypy run",
    )
    args = parser.parse_args(argv)

    lines, code = run_mypy()
    if code == 2:
        print("mypy_gate: mypy is not runnable here", file=sys.stderr)
        return 2

    island, other, other_keys = split_errors(lines)

    if args.update_baseline:
        body = "".join(sorted(key + "\n" for key in other_keys))
        BASELINE.write_text(
            "# mypy known debt outside the strict islands.\n"
            "# Regenerate with: python tools/mypy_gate.py --update-baseline\n"
            + body
        )
        print(f"mypy_gate: baseline updated ({len(other_keys)} entries)")
        if island:
            print("mypy_gate: island errors are never baselined:")
            print("\n".join(island))
            return 1
        return 0

    baseline = load_baseline()
    new_other = [
        line
        for line in other
        if (m := _ERROR_RE.match(line.strip()))
        and error_key(m.group("path"), m.group("message")) not in baseline
    ]

    failed = False
    if island:
        failed = True
        print(f"mypy_gate: {len(island)} error(s) in strict islands:")
        print("\n".join(island))
    if new_other:
        failed = True
        print(f"mypy_gate: {len(new_other)} new error(s) outside islands:")
        print("\n".join(new_other))
        print(
            "mypy_gate: fix them, or (for pre-existing debt) run "
            "`python tools/mypy_gate.py --update-baseline`"
        )
    if not failed:
        stale = len(baseline) - len(other_keys & baseline)
        note = f" ({stale} stale baseline entries)" if stale else ""
        print(f"mypy_gate: clean{note}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
