#!/usr/bin/env python3
"""Quickstart: run the RISPP run-time system on the paper's workload.

Builds the calibrated H.264 platform (atom registry + Table 1 SI
library), generates a few frames of the paper-scale workload, and runs
the proposed HEF scheduler against the pure-software baseline and the
Molen-like state of the art.
"""

from repro import (
    HEFScheduler,
    MolenSimulator,
    RisppSimulator,
    build_atom_registry,
    build_si_library,
    generate_workload,
    paper_si_label,
    simulate_software,
)


def main() -> None:
    registry = build_atom_registry()
    library = build_si_library(registry)

    print("The nine Special Instructions of the H.264 encoder (Table 1):")
    for name, atom_types, molecules in library.inventory():
        print(
            f"  {paper_si_label(name):<10s} {atom_types} atom types, "
            f"{molecules} molecules"
        )

    workload = generate_workload(num_frames=10)
    print(f"\nWorkload: {workload}")

    num_acs = 10
    software = simulate_software(library, workload)
    molen = MolenSimulator(library, registry, num_acs).run(workload)
    rispp = RisppSimulator(
        library, registry, HEFScheduler(), num_acs
    ).run(workload)

    print(f"\nEncoding {workload.num_frames} CIF frames with {num_acs} "
          "Atom Containers:")
    print(f"  pure software : {software.total_mcycles:9.1f} Mcycles")
    print(f"  Molen-like    : {molen.total_mcycles:9.1f} Mcycles "
          f"({molen.speedup_over(software):.1f}x vs software)")
    print(f"  RISPP + HEF   : {rispp.total_mcycles:9.1f} Mcycles "
          f"({rispp.speedup_over(software):.1f}x vs software, "
          f"{rispp.speedup_over(molen):.2f}x vs Molen)")
    print(f"\n  atom loads: {rispp.loads_completed}, "
          f"evictions: {rispp.evictions}")


if __name__ == "__main__":
    main()
