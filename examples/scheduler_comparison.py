#!/usr/bin/env python3
"""Compare the four atom schedulers of Section 4.4 (mini Figure 7).

Sweeps FSFR, ASF, SJF and HEF (plus the Molen baseline) over a few
Atom-Container counts and prints the execution times and Table-2-style
speedups.  Use REPRO_FRAMES=140 for the full paper scale.
"""

import os

from repro.analysis import (
    ExperimentScale,
    format_fig7_table,
    format_table2,
    run_figure7,
)


def main() -> None:
    frames = int(os.environ.get("REPRO_FRAMES", "20"))
    scale = ExperimentScale(
        frames=frames, ac_counts=(5, 7, 10, 13, 17, 20, 24)
    )
    print(f"Sweeping schedulers over {scale.ac_counts} ACs "
          f"({frames} frames; set REPRO_FRAMES to change)...")
    result = run_figure7(scale=scale, progress=True)
    print()
    print(format_fig7_table(result))
    print()
    print(format_table2(result, include_paper=False))


if __name__ == "__main__":
    main()
