#!/usr/bin/env python3
"""Encode real (synthetic) video pixels and replay the SI trace.

The functional H.264-subset encoder processes a synthetic sequence —
full-pel SAD search, half-pel SATD refinement, motion compensation,
4x4 transforms, intra prediction and BS-4 deblocking — and records every
SI execution per macroblock.  The resulting trace then drives the RISPP
behavioural simulator, closing the loop from pixels to the run-time
scheduler.
"""

from repro import (
    EncoderConfig,
    H264SubsetEncoder,
    HEFScheduler,
    MolenSimulator,
    RisppSimulator,
    SyntheticVideo,
    build_atom_registry,
    build_si_library,
    simulate_software,
)


def main() -> None:
    video = SyntheticVideo(
        width=176, height=144, num_frames=6, seed=7, num_objects=3
    )
    encoder = H264SubsetEncoder(EncoderConfig(qp=28, search_range=8))
    print("Encoding 6 QCIF frames (functional kernels, numpy)...")
    result = encoder.encode(video.all_frames())

    print(f"  mean PSNR: {result.mean_psnr:.1f} dB")
    print(f"  intra MBs per frame: {result.intra_mbs_per_frame}")
    totals = result.workload.totals()
    print("  SI executions:", {k: v for k, v in sorted(totals.items())})

    registry = build_atom_registry()
    library = build_si_library(registry)
    num_acs = 10
    software = simulate_software(library, result.workload)
    molen = MolenSimulator(library, registry, num_acs).run(result.workload)
    rispp = RisppSimulator(
        library, registry, HEFScheduler(), num_acs
    ).run(result.workload)

    print(f"\nReplaying the encoder's trace at {num_acs} ACs:")
    print(f"  software   : {software.total_mcycles:8.2f} Mcycles")
    print(f"  Molen-like : {molen.total_mcycles:8.2f} Mcycles")
    print(f"  RISPP/HEF  : {rispp.total_mcycles:8.2f} Mcycles "
          f"({rispp.speedup_over(molen):.2f}x vs Molen)")


if __name__ == "__main__":
    main()
