#!/usr/bin/env python3
"""Run-time adaptation to unpredictable content (the paper's motivation).

A scene cut in the middle of the sequence invalidates everything the
online monitor learned about SI execution frequencies.  This example
shows the error-feedback forecaster re-converging and how the per-frame
execution time reacts — the behaviour that design-time-fixed systems
cannot deliver.
"""

from repro import (
    ExecutionMonitor,
    HEFScheduler,
    RisppSimulator,
    build_atom_registry,
    build_si_library,
)
from repro.workload.model import H264WorkloadModel


def main() -> None:
    model = H264WorkloadModel(
        num_frames=24, seed=99, scene_cut_frame=12,
        activity_amplitude=0.45,
    )
    workload = model.generate()
    registry = build_atom_registry()
    library = build_si_library(registry)

    monitor = ExecutionMonitor(alpha=0.5, profile=model.offline_profile())
    sim = RisppSimulator(
        library, registry, HEFScheduler(), num_acs=12, monitor=monitor
    )
    result = sim.run(workload)

    print("Per-frame execution time (scene cut after frame 11):")
    for index, cycles in enumerate(result.per_frame_cycles):
        marker = "  <- scene cut" if index == 12 else ""
        print(f"  frame {index:2d}: {cycles / 1e6:6.2f} Mcycles{marker}")

    print("\nMonitor prediction quality (mean relative error):")
    for hot_spot, si_name in (("ME", "SAD"), ("ME", "SATD"),
                              ("EE", "DCT"), ("LF", "LF_BS4")):
        stats = monitor.stats(hot_spot, si_name)
        print(f"  {hot_spot}/{si_name:<7s}: {stats.relative_error:6.1%} "
              f"over {stats.num_updates} updates")
    print(f"\nTotal: {result.total_mcycles:.1f} Mcycles, "
          f"{result.loads_completed} atom loads")


if __name__ == "__main__":
    main()
