"""The ``python -m repro lint`` command-line surface.

Covers the exit-code contract (0 clean / 1 findings / 2 usage error),
all three report formats (text / JSON / SARIF), byte-stability of the
reports, the result cache and ``--changed-only`` flags, rule selection,
the dispatch from the main repro CLI, and — the PR's headline
regression test — that the *real* source tree is clean under every
rule.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import REPORT_VERSION, main as lint_main
from repro.lint.sarif import SARIF_SCHEMA, SARIF_VERSION

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def make_bad_tree(tmp_path):
    """A source root with one RL001 violation under ``repro/``."""
    root = tmp_path / "badsrc"
    (root / "repro" / "sim").mkdir(parents=True)
    (root / "repro" / "sim" / "engine.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n"
    )
    return root


def test_real_source_tree_is_clean(capsys):
    assert lint_main([]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out
    assert "11 rules" in out


def test_repro_cli_dispatches_lint_subcommand(capsys):
    assert repro_main(["lint", "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == REPORT_VERSION
    assert report["count"] == 0
    assert report["findings"] == []


def test_findings_mean_exit_one_text(tmp_path, capsys):
    root = make_bad_tree(tmp_path)
    assert lint_main(["--root", str(root), "--select", "RL001"]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out
    assert "repro/sim/engine.py:1" in out


def test_findings_mean_exit_one_json(tmp_path, capsys):
    root = make_bad_tree(tmp_path)
    code = lint_main(
        ["--root", str(root), "--select", "RL001", "--format", "json"]
    )
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["count"] == 1
    (finding,) = report["findings"]
    assert finding["rule"] == "RL001"
    assert finding["path"] == "repro/sim/engine.py"
    assert finding["line"] == 1


def test_select_can_mask_the_violation(tmp_path):
    root = make_bad_tree(tmp_path)
    assert lint_main(["--root", str(root), "--select", "RL005"]) == 0


def test_unknown_rule_is_usage_error(capsys):
    try:
        code = lint_main(["--select", "RL999"])
    except SystemExit as exc:  # argparse type errors exit(2)
        code = exc.code
    assert code == 2


def test_missing_root_is_usage_error(tmp_path, capsys):
    assert lint_main(["--root", str(tmp_path / "nowhere")]) == 2
    assert "no such source root" in capsys.readouterr().err


def test_malformed_pyproject_is_usage_error(tmp_path, capsys):
    pytest.importorskip("tomllib")
    bad = tmp_path / "pyproject.toml"
    bad.write_text("[tool.repro-lint.RL999]\nenabled = false\n")
    code = lint_main(["--pyproject", str(bad)])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_pyproject_can_disable_a_rule(tmp_path):
    pytest.importorskip("tomllib")
    root = make_bad_tree(tmp_path)
    cfg = tmp_path / "pyproject.toml"
    cfg.write_text("[tool.repro-lint.RL001]\nenabled = false\n")
    args = ["--root", str(root), "--pyproject", str(cfg), "--select", "RL001"]
    assert lint_main(args) == 0


def test_sarif_format(tmp_path, capsys):
    root = make_bad_tree(tmp_path)
    code = lint_main(
        ["--root", str(root), "--select", "RL001",
         "--format", "sarif", "--no-cache"]
    )
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == SARIF_VERSION
    assert report["$schema"] == SARIF_SCHEMA
    (run,) = report["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"RL001", "RL008", "RL009", "RL010", "RL011"} <= rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "RL001"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "badsrc/repro/sim/engine.py"
    # SARIF columns are 1-based; findings carry 0-based ones.
    assert location["region"] == {"startLine": 1, "startColumn": 1}


def test_cache_warm_run_matches_cold_and_uncached(tmp_path, capsys):
    root = make_bad_tree(tmp_path)
    args = ["--root", str(root), "--select", "RL001"]
    assert lint_main(args) == 1
    cold = capsys.readouterr().out
    cache_dir = tmp_path / "artifacts" / ".lintcache"
    assert cache_dir.is_dir() and any(cache_dir.iterdir())
    assert lint_main(args) == 1
    assert capsys.readouterr().out == cold  # warm hit, same bytes
    assert lint_main(args + ["--no-cache"]) == 1
    assert capsys.readouterr().out == cold  # cache never changes output


def test_no_cache_writes_nothing(tmp_path):
    root = make_bad_tree(tmp_path)
    args = ["--root", str(root), "--select", "RL001", "--no-cache"]
    assert lint_main(args) == 1
    assert not (tmp_path / "artifacts" / ".lintcache").exists()


def test_text_report_shape_is_stable(tmp_path, capsys):
    root = make_bad_tree(tmp_path)
    args = ["--root", str(root), "--select", "RL001", "--no-cache"]
    assert lint_main(args) == 1
    out = capsys.readouterr().out
    lines = out.splitlines()
    assert lines[0].startswith("repro/sim/engine.py:1:0: RL001 ")
    assert lines[-1] == f"repro lint: 1 finding (1 rules, root {root})"
    assert lint_main(args) == 1
    assert capsys.readouterr().out == out


def test_json_report_is_byte_stable(tmp_path, capsys):
    root = make_bad_tree(tmp_path)
    args = [
        "--root", str(root), "--select", "RL001",
        "--format", "json", "--no-cache",
    ]
    lint_main(args)
    first = capsys.readouterr().out
    lint_main(args)
    assert capsys.readouterr().out == first
    payload = json.loads(first)
    assert list(payload) == ["count", "findings", "root", "version"]
    assert first == json.dumps(payload, indent=1, sort_keys=True) + "\n"


def _git(repo, *argv):
    subprocess.run(
        ["git", *argv], cwd=repo, check=True, capture_output=True
    )


def test_changed_only_filters_to_changed_files(tmp_path, capsys):
    root = tmp_path / "badsrc"
    sim = root / "repro" / "sim"
    sim.mkdir(parents=True)
    (sim / "engine.py").write_text("import time\n")
    (sim / "other.py").write_text("import datetime\n")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "config", "user.email", "lint@test")
    _git(tmp_path, "config", "user.name", "lint")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "base")
    (sim / "engine.py").write_text("import time\nX = 1\n")
    code = lint_main(
        ["--root", str(root), "--select", "RL001", "--changed-only",
         "--base", "HEAD", "--format", "json", "--no-cache"]
    )
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    # other.py's violation predates the base ref: filtered out.
    assert {f["path"] for f in report["findings"]} == {
        "repro/sim/engine.py"
    }


def test_changed_only_outside_git_is_usage_error(tmp_path, capsys):
    root = make_bad_tree(tmp_path)
    code = lint_main(
        ["--root", str(root), "--changed-only", "--no-cache"]
    )
    assert code == 2
    assert "git diff" in capsys.readouterr().err


def test_write_fingerprint_round_trips(tmp_path, capsys):
    import shutil

    root = tmp_path / "src"
    obs = root / "repro" / "obs"
    obs.mkdir(parents=True)
    for name in ("events.py", "export.py", "replay.py"):
        shutil.copy(REPO_SRC / "repro" / "obs" / name, obs / name)
    assert lint_main(["--root", str(root), "--write-fingerprint"]) == 0
    assert "wrote event-schema fingerprint" in capsys.readouterr().out
    committed = REPO_SRC / "repro" / "obs" / "event_schema.json"
    assert (obs / "event_schema.json").read_text() == committed.read_text()
