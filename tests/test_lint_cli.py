"""The ``python -m repro lint`` command-line surface.

Covers the exit-code contract (0 clean / 1 findings / 2 usage error),
both report formats, rule selection, the dispatch from the main repro
CLI, and — the PR's headline regression test — that the *real* source
tree is clean under every rule.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import REPORT_VERSION, main as lint_main

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def make_bad_tree(tmp_path):
    """A source root with one RL001 violation under ``repro/``."""
    root = tmp_path / "badsrc"
    (root / "repro" / "sim").mkdir(parents=True)
    (root / "repro" / "sim" / "engine.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n"
    )
    return root


def test_real_source_tree_is_clean(capsys):
    assert lint_main([]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out
    assert "7 rules" in out


def test_repro_cli_dispatches_lint_subcommand(capsys):
    assert repro_main(["lint", "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == REPORT_VERSION
    assert report["count"] == 0
    assert report["findings"] == []


def test_findings_mean_exit_one_text(tmp_path, capsys):
    root = make_bad_tree(tmp_path)
    assert lint_main(["--root", str(root), "--select", "RL001"]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out
    assert "repro/sim/engine.py:1" in out


def test_findings_mean_exit_one_json(tmp_path, capsys):
    root = make_bad_tree(tmp_path)
    code = lint_main(
        ["--root", str(root), "--select", "RL001", "--format", "json"]
    )
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["count"] == 1
    (finding,) = report["findings"]
    assert finding["rule"] == "RL001"
    assert finding["path"] == "repro/sim/engine.py"
    assert finding["line"] == 1


def test_select_can_mask_the_violation(tmp_path):
    root = make_bad_tree(tmp_path)
    assert lint_main(["--root", str(root), "--select", "RL005"]) == 0


def test_unknown_rule_is_usage_error(capsys):
    try:
        code = lint_main(["--select", "RL999"])
    except SystemExit as exc:  # argparse type errors exit(2)
        code = exc.code
    assert code == 2


def test_missing_root_is_usage_error(tmp_path, capsys):
    assert lint_main(["--root", str(tmp_path / "nowhere")]) == 2
    assert "no such source root" in capsys.readouterr().err


def test_malformed_pyproject_is_usage_error(tmp_path, capsys):
    pytest.importorskip("tomllib")
    bad = tmp_path / "pyproject.toml"
    bad.write_text("[tool.repro-lint.RL999]\nenabled = false\n")
    code = lint_main(["--pyproject", str(bad)])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_pyproject_can_disable_a_rule(tmp_path):
    pytest.importorskip("tomllib")
    root = make_bad_tree(tmp_path)
    cfg = tmp_path / "pyproject.toml"
    cfg.write_text("[tool.repro-lint.RL001]\nenabled = false\n")
    args = ["--root", str(root), "--pyproject", str(cfg), "--select", "RL001"]
    assert lint_main(args) == 0


def test_write_fingerprint_round_trips(tmp_path, capsys):
    import shutil

    root = tmp_path / "src"
    obs = root / "repro" / "obs"
    obs.mkdir(parents=True)
    for name in ("events.py", "export.py", "replay.py"):
        shutil.copy(REPO_SRC / "repro" / "obs" / name, obs / name)
    assert lint_main(["--root", str(root), "--write-fingerprint"]) == 0
    assert "wrote event-schema fingerprint" in capsys.readouterr().out
    committed = REPO_SRC / "repro" / "obs" / "event_schema.json"
    assert (obs / "event_schema.json").read_text() == committed.read_text()
