"""Golden regressions re-run under the vector engine.

``tests/test_golden_fig7.py`` and ``tests/test_obs_schema.py`` pin the
reference engine's behaviour against committed goldens.  This module
re-drives the same pinned scenarios through ``engine="vector"`` (the
untraced fast path) and asserts they land on the *same* goldens:

* the live golden sweep's exact ``total_cycles`` per cell,
* the run behind the committed obs golden event log (untraced — a
  tracer would force the reference loop, which is its own test in
  ``test_vector_differential.py``), cross-checked against the event
  counts stored in the golden log itself,
* the serialised Figure 7 artifact payload, byte-for-byte identical
  between engines (and, behind ``REPRO_PAPER_SCALE=1``, byte-for-byte
  equal to the committed ``artifacts/full_sweep_results.json``),
* the ``repro sweep --engine vector`` CLI surface, identical to the
  reference run up to wall-clock timings.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
from pathlib import Path

import pytest

from repro.analysis.experiments import (
    ExperimentScale,
    render_fig7_artifact,
    run_figure7,
)
from repro.cli import main
from repro.core.schedulers import get_scheduler
from repro.exec import run_sweep
from repro.obs import RecordingTracer
from repro.sim.rispp import RisppSimulator
from repro.workload.model import generate_workload

from tests.test_golden_fig7 import _GOLDEN_CYCLES, _GOLDEN_SPEC

ARTIFACT_JSON = (
    Path(__file__).resolve().parent.parent
    / "artifacts"
    / "full_sweep_results.json"
)
GOLDEN_LOG = Path(__file__).parent / "data" / "golden_event_log.json"


def test_live_goldens_under_vector_engine():
    """The pinned sweep's exact cycle counts, via the vector engine."""
    spec = dataclasses.replace(_GOLDEN_SPEC, engine="vector")
    report = run_sweep(spec, jobs=1)
    actual = {o.cell.label: o.result.total_cycles for o in report}
    assert actual == _GOLDEN_CYCLES, (
        "vector engine moved the live goldens — it diverged from the "
        "reference engine's pinned behaviour"
    )


def test_obs_golden_run_untraced_vector(h264_library, h264_registry):
    """The golden event log's run, re-simulated without a tracer on the
    vector engine, must agree with what the committed log records."""
    workload = generate_workload(num_frames=1, seed=2008)

    vec = RisppSimulator(
        h264_library, h264_registry, get_scheduler("HEF"), 6,
        engine="vector",
    ).run(workload)

    tracer = RecordingTracer()
    traced = RisppSimulator(
        h264_library, h264_registry, get_scheduler("HEF"), 6,
        tracer=tracer, engine="reference",
    ).run(workload)
    assert vec == traced

    # Cross-check against the committed log: the vector result's load
    # and eviction accounting must equal the golden event counts.
    events = json.loads(GOLDEN_LOG.read_text())["events"]
    kinds = {}
    for event in events:
        kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    assert vec.loads_started == kinds["load_start"]
    assert vec.loads_completed == kinds["load_complete"]
    assert vec.evictions == kinds["eviction"]


def test_fig7_artifact_bytes_identical_across_engines():
    """Both engines serialise the same Figure 7 artifact bytes.

    A reduced scale keeps this in the tier-1 budget; the committed
    paper-scale artifact is pinned byte-for-byte behind
    ``REPRO_PAPER_SCALE=1`` below.
    """
    scale = ExperimentScale(frames=4, ac_counts=(5, 8, 12))
    rendered = {
        engine: render_fig7_artifact(
            run_figure7(scale, jobs=1, engine=engine)
        )
        for engine in ("reference", "vector")
    }
    assert rendered["reference"] == rendered["vector"]


@pytest.mark.skipif(
    os.environ.get("REPRO_PAPER_SCALE") != "1",
    reason="paper-scale sweep (140 frames); set REPRO_PAPER_SCALE=1",
)
def test_committed_artifact_reproduced_by_vector_engine():
    """``artifacts/full_sweep_results.json``, byte-for-byte, from the
    vector engine at the full 140-frame paper scale."""
    result = run_figure7(
        ExperimentScale(frames=140), engine="vector"
    )
    assert render_fig7_artifact(result) == ARTIFACT_JSON.read_text()


_WALL_RE = re.compile(r"\s+\d+\.\d+m?s\b")


def _sweep_stdout(capsys, engine):
    code = main([
        "sweep", "--scheduler", "HEF", "--frames", "2",
        "--ac-list", "6,10", "--jobs", "1", "--engine", engine,
    ])
    assert code == 0
    out = capsys.readouterr().out
    # Mask wall-clock timings; everything else must match exactly.
    return _WALL_RE.sub(" <wall>", out)


def test_cli_sweep_identical_across_engines(capsys):
    ref = _sweep_stdout(capsys, "reference")
    vec = _sweep_stdout(capsys, "vector")
    assert vec == ref, "repro sweep output diverged between engines"
