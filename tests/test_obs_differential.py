"""Differential replay: the naive per-iteration interpreter must agree
with the analytic engine on exact cycle counts.

The engine advances span by span with a vectorised cumulative sum; the
replay in :mod:`repro.obs.replay` walks iteration by iteration in plain
integer arithmetic using only the recorded event log.  Any disagreement
— on a single cycle — means either the span math (including the
straddling-iteration rule) or the event emission is broken.
"""

import math

import numpy as np
import pytest

from repro import (
    AtomSpace,
    AtomRegistry,
    HotSpotTrace,
    MoleculeImpl,
    RecordingTracer,
    SILibrary,
    SpecialInstruction,
    Workload,
    generate_workload,
    replay_total_cycles,
)
from repro.core.schedulers import PAPER_SCHEDULERS, get_scheduler
from repro.errors import ObservabilityError
from repro.obs.events import LoadComplete, SIUpgrade
from repro.sim.molen import MolenSimulator
from repro.sim.rispp import RisppSimulator


GRID_WORKLOAD = dict(num_frames=2, seed=2008)
AC_COUNTS = (4, 10)


@pytest.fixture(scope="module")
def grid_workload():
    return generate_workload(**GRID_WORKLOAD)


@pytest.mark.parametrize("scheduler", PAPER_SCHEDULERS)
@pytest.mark.parametrize("num_acs", AC_COUNTS)
def test_replay_matches_engine_exactly(
    h264_library, h264_registry, grid_workload, scheduler, num_acs
):
    tracer = RecordingTracer()
    sim = RisppSimulator(
        h264_library,
        h264_registry,
        get_scheduler(scheduler),
        num_acs,
        tracer=tracer,
    )
    result = sim.run(grid_workload)
    assert replay_total_cycles(list(tracer), grid_workload) == (
        result.total_cycles
    )


def test_replay_matches_molen(h264_library, h264_registry, grid_workload):
    tracer = RecordingTracer()
    sim = MolenSimulator(h264_library, h264_registry, 10, tracer=tracer)
    result = sim.run(grid_workload)
    assert replay_total_cycles(list(tracer), grid_workload) == (
        result.total_cycles
    )


def test_replay_rejects_wrong_workload(
    h264_library, h264_registry, grid_workload
):
    tracer = RecordingTracer()
    sim = RisppSimulator(
        h264_library, h264_registry, get_scheduler("HEF"), 10, tracer=tracer
    )
    sim.run(grid_workload)
    other = generate_workload(num_frames=1, seed=2008)
    with pytest.raises(ObservabilityError):
        replay_total_cycles(list(tracer), other)


# -- the drain/straddle edge of the span arithmetic ---------------------------


def _single_atom_platform():
    """One SI, one single-atom molecule: the smallest upgrade scenario."""
    space = AtomSpace(["A"])
    si = SpecialInstruction(
        "SI1",
        space,
        1000,
        [MoleculeImpl("SI1", "m1", space.molecule({"A": 1}), 400)],
    )
    library = SILibrary(space, [si])
    registry = AtomRegistry.uniform(["A"])
    return library, registry


def _run_single_atom(n_iterations):
    library, registry = _single_atom_platform()
    counts = np.ones((n_iterations, 1), dtype=np.int64)
    workload = Workload(
        "straddle", [HotSpotTrace("HS", ("SI1",), counts)]
    )
    tracer = RecordingTracer()
    sim = RisppSimulator(
        library, registry, get_scheduler("HEF"), 1, tracer=tracer
    )
    result = sim.run(workload)
    events = list(tracer)
    upgrades = [e for e in events if isinstance(e, SIUpgrade)]
    completes = [e for e in events if isinstance(e, LoadComplete)]
    return result, upgrades, completes, workload, events


def test_straddling_iteration_finishes_at_old_latency():
    """General case: hand-computed totals with the straddle rule.

    ``k = ceil(budget / L0)`` iterations run at the software latency —
    the ones strictly before the atom completes *plus* the one in flight
    when it lands — and the rest at the hardware latency.
    """
    entry = 200  # BaseProcessor default hot-spot entry overhead
    n = 200
    result, upgrades, completes, workload, events = _run_single_atom(n)
    assert len(completes) == 1
    l0 = upgrades[0].latency  # software (trap) latency
    l1 = upgrades[1].latency  # hardware latency after the upgrade
    assert l1 < l0
    budget = completes[0].cycle - entry
    k = math.ceil(budget / l0)
    assert 0 < k < n, "choose n so the completion lands mid-trace"
    expected = entry + k * l0 + (n - k) * l1
    assert result.total_cycles == expected
    # The upgrade event lands at the end of the straddling iteration,
    # not at the raw completion cycle.
    assert upgrades[1].cycle == entry + k * l0
    assert replay_total_cycles(events, workload) == expected


def test_final_iteration_straddling_completion_keeps_old_latency():
    """Regression: a trace that ends *while* the last atom is still
    loading (or just completed mid-iteration) must finish entirely at
    the old latencies — the drain must not retro-apply the upgrade."""
    entry = 200
    # First learn where the completion lands, then shrink the trace so
    # the completion falls inside (or after) its final iteration.
    probe, upgrades, completes, _, _ = _run_single_atom(200)
    l0 = upgrades[0].latency
    budget = completes[0].cycle - entry
    k = math.ceil(budget / l0)
    for n in (k, k - 1):
        result, _, _, workload, events = _run_single_atom(n)
        assert result.total_cycles == entry + n * l0
        assert replay_total_cycles(events, workload) == entry + n * l0
