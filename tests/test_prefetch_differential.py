"""Differential tests: PREFETCH against the HEF reference it extends.

Two families:

* **Disabled speculation is a no-op.**  With ``confidence=0.0`` (the
  disable sentinel) or ``budget=0`` the PREFETCH scheduler must
  reproduce HEF *field for field* — same cycles, same load/eviction
  counts, same per-frame profile — on clean and faulty fabrics alike.
* **Enabled speculation is bounded.**  The misprediction penalty is
  architecturally capped: a speculative load occupies the otherwise-idle
  reconfiguration bus and can only evict stale atoms, so

      prefetch_total <= hef_total + prefetch_wasted_bus_cycles

  must hold on *every* workload, including the adversarial misprediction
  family built to break the predictor.  Alongside the bound we pin the
  exact accounting identities the counters promise.
"""

import pytest

from repro import (
    HEFScheduler,
    RisppSimulator,
    generate_workload,
)
from repro.core.schedulers import PrefetchScheduler
from repro.fabric.faults import BernoulliLoadFaults, RetryPolicy
from repro.workload import generate_adversarial_workload

AC_COUNTS = [4, 10]


@pytest.fixture(scope="module")
def platform(h264_library, h264_registry):
    return h264_library, h264_registry


def run(platform, scheduler, workload, num_acs, fault_rate=0.0):
    library, registry = platform
    kwargs = {}
    if fault_rate:
        kwargs["fault_model"] = BernoulliLoadFaults(fault_rate, seed=77)
        kwargs["retry_policy"] = RetryPolicy(max_retries=2,
                                             backoff_cycles=200)
    sim = RisppSimulator(library, registry, scheduler, num_acs, **kwargs)
    return sim.run(workload)


def comparable_fields(result):
    """Everything but the scheduler's name (which legitimately differs)."""
    fields = result.to_json_dict()
    fields.pop("scheduler_name")
    return fields


@pytest.mark.parametrize("num_acs", AC_COUNTS)
@pytest.mark.parametrize("fault_rate", [0.0, 0.05],
                         ids=["clean", "faulty"])
class TestDisabledSpeculationIsHEF:
    def test_zero_confidence_sentinel(
        self, platform, small_workload, num_acs, fault_rate
    ):
        hef = run(platform, HEFScheduler(), small_workload, num_acs,
                  fault_rate)
        pre = run(
            platform,
            PrefetchScheduler(confidence=0.0),
            small_workload,
            num_acs,
            fault_rate,
        )
        assert pre.prefetch_issued == 0
        assert comparable_fields(pre) == comparable_fields(hef)

    def test_zero_budget(
        self, platform, small_workload, num_acs, fault_rate
    ):
        hef = run(platform, HEFScheduler(), small_workload, num_acs,
                  fault_rate)
        pre = run(
            platform,
            PrefetchScheduler(confidence=0.6, budget=0),
            small_workload,
            num_acs,
            fault_rate,
        )
        assert pre.prefetch_issued == 0
        assert comparable_fields(pre) == comparable_fields(hef)


def assert_speculation_bounded(hef, pre):
    """The misprediction bound plus the counter identities."""
    # Never worse than HEF by more than the bus cycles speculation
    # burned (and those only ever fill otherwise-idle windows).
    assert pre.total_cycles <= (
        hef.total_cycles + pre.prefetch_wasted_bus_cycles
    )
    # Every issued speculative load settles exactly once.
    assert pre.prefetch_issued == pre.prefetch_hits + pre.prefetch_wasted
    assert pre.prefetch_hits >= 0 and pre.prefetch_wasted >= 0
    # Wasted bus cycles only come from wasted loads.
    if pre.prefetch_wasted == 0:
        assert pre.prefetch_wasted_bus_cycles == 0
    # Speculative loads flow through the same port counters: the
    # PREFETCH run can only ever *add* load traffic relative to HEF.
    assert pre.loads_started >= hef.loads_started
    assert pre.evictions >= hef.evictions
    # HEF itself must never report speculation.
    assert hef.prefetch_issued == 0
    assert hef.prefetch_wasted_bus_cycles == 0


class TestEnabledSpeculationBound:
    @pytest.mark.parametrize("num_acs", [4, 6, 10, 16])
    def test_h264_grid(self, platform, small_workload, num_acs):
        hef = run(platform, HEFScheduler(), small_workload, num_acs)
        pre = run(
            platform,
            PrefetchScheduler(confidence=0.3, budget=4),
            small_workload,
            num_acs,
        )
        assert_speculation_bounded(hef, pre)

    @pytest.mark.parametrize("flip_rate", [0.25, 0.5])
    def test_adversarial_mispredictions(self, platform, flip_rate):
        workload = generate_adversarial_workload(
            num_phases=18, seed=2008, flip_rate=flip_rate
        )
        hef = run(platform, HEFScheduler(), workload, 16)
        pre = run(
            platform,
            PrefetchScheduler(confidence=0.3, budget=4),
            workload,
            16,
        )
        assert_speculation_bounded(hef, pre)

    def test_adversarial_faulty_fabric(self, platform):
        # Faults on speculative loads are never retried; the bound and
        # the settlement identity must survive fault injection.
        workload = generate_adversarial_workload(
            num_phases=12, seed=5, flip_rate=0.25
        )
        hef = run(platform, HEFScheduler(), workload, 16, fault_rate=0.05)
        pre = run(
            platform,
            PrefetchScheduler(confidence=0.3, budget=4),
            workload,
            16,
            fault_rate=0.05,
        )
        assert pre.prefetch_issued == pre.prefetch_hits + pre.prefetch_wasted

    def test_speculation_actually_happens_somewhere(self, platform):
        # Guard against the whole family passing vacuously: at 16 ACs on
        # the periodic h264 workload the predictor locks on after one
        # frame and speculative loads must reach the bus and hit.
        workload = generate_workload(num_frames=4, seed=11)
        pre = run(
            platform,
            PrefetchScheduler(confidence=0.3, budget=4),
            workload,
            16,
        )
        assert pre.prefetch_issued > 0
        assert pre.prefetch_hits > 0
