"""Edge-case tests for the execution engine and result objects."""

import numpy as np
import pytest

from repro import (
    BaseProcessor,
    HEFScheduler,
    HotSpotTrace,
    RisppSimulator,
    SimulationError,
    Workload,
)


@pytest.fixture
def platform(toy_library, toy_registry):
    return toy_library, toy_registry


def make_sim(platform, num_acs=4, **kwargs):
    library, registry = platform
    return RisppSimulator(
        library, registry, HEFScheduler(), num_acs, **kwargs
    )


def trace(counts, names=("SI1", "SI2"), overhead=0, frame=0):
    return HotSpotTrace(
        hot_spot="HS",
        si_names=names,
        counts=np.asarray(counts, dtype=np.int64),
        overhead_per_iteration=overhead,
        frame_index=frame,
    )


class TestEngineEdgeCases:
    def test_empty_workload(self, platform):
        result = make_sim(platform).run(Workload("empty"))
        assert result.total_cycles == 0
        assert result.per_frame_cycles == []

    def test_zero_iteration_trace(self, platform):
        workload = Workload("z", [trace(np.zeros((0, 2)))])
        result = make_sim(platform).run(workload)
        # Only the hot-spot entry overhead is charged.
        assert result.total_cycles == BaseProcessor().hot_spot_entry_overhead

    def test_zero_count_iterations_cost_overhead_only(self, platform):
        library, registry = platform
        proc = BaseProcessor(trap_overhead=0, hot_spot_entry_overhead=0)
        workload = Workload("o", [trace(np.zeros((10, 2)), overhead=7)])
        sim = RisppSimulator(
            library, registry, HEFScheduler(), 0, processor=proc
        )
        result = sim.run(workload)
        assert result.total_cycles == 70

    def test_event_boundary_semantics(self, platform):
        """An iteration straddling a completion finishes at the old
        latency; the very next iteration uses the upgrade."""
        library, registry = platform
        proc = BaseProcessor(trap_overhead=0, hot_spot_entry_overhead=0)
        counts = np.zeros((1000, 2), dtype=np.int64)
        counts[:, 0] = 1
        workload = Workload("b", [trace(counts)])
        sim = RisppSimulator(
            library, registry, HEFScheduler(), 1, processor=proc,
            record_segments=True,
        )
        result = sim.run(workload)
        load_cycles = registry.reconfig_cycles("A")
        boundary_segments = [
            s for s in result.segments if s.t0 <= load_cycles <= s.t1
        ]
        assert boundary_segments
        # The segment ending at/after the completion still used the old
        # (software) latency of SI1 = 1000.
        first = min(result.segments, key=lambda s: s.t0)
        assert first.latency_of("SI1") == 1000

    def test_mismatched_spaces_rejected(self, toy_library):
        from repro import AtomRegistry

        other_registry = AtomRegistry.uniform(["X", "Y"])
        with pytest.raises(SimulationError):
            RisppSimulator(
                toy_library, other_registry, HEFScheduler(), 4
            )

    def test_workload_with_unknown_si_fails_cleanly(self, platform):
        from repro import UnknownSpecialInstructionError

        workload = Workload(
            "u", [trace(np.ones((2, 2)), names=("SI1", "NOPE"))]
        )
        with pytest.raises(UnknownSpecialInstructionError):
            make_sim(platform).run(workload)


class TestResultObject:
    @pytest.fixture
    def result(self, platform):
        counts = np.ones((50, 2), dtype=np.int64)
        workload = Workload(
            "r",
            [trace(counts, frame=0), trace(counts, frame=1)],
        )
        return make_sim(platform, record_segments=True).run(workload)

    def test_speedup_over_self_is_one(self, result):
        assert result.speedup_over(result) == 1.0

    def test_total_mcycles(self, result):
        assert result.total_mcycles == result.total_cycles / 1e6

    def test_executions_per_window(self, result):
        series = result.executions_per_window("SI1", window=100_000)
        assert series.sum() == pytest.approx(100.0)  # 2 traces x 50

    def test_summary_mentions_scheduler(self, result):
        assert "HEF" in result.summary()
        assert "ACs" in result.summary()

    def test_hot_spot_cycles_sum(self, result):
        assert sum(result.hot_spot_cycles.values()) == result.total_cycles

    def test_segment_accessors(self, result):
        segment = result.segments[0]
        assert segment.duration == segment.t1 - segment.t0
        assert segment.executions_of("SI1") >= 0
        assert segment.latency_of("SI1") > 0


class TestResultSerialization:
    @pytest.fixture
    def result(self, platform):
        counts = np.ones((50, 2), dtype=np.int64)
        workload = Workload(
            "r",
            [trace(counts, frame=0), trace(counts, frame=1)],
        )
        return make_sim(platform, record_segments=True).run(workload)

    def test_round_trip_is_lossless(self, result):
        from repro import SimulationResult

        rebuilt = SimulationResult.from_json_dict(result.to_json_dict())
        assert rebuilt == result
        assert rebuilt.segments == result.segments
        assert rebuilt.latency_events == result.latency_events

    def test_round_trip_through_json_text(self, result):
        """Through an actual JSON encode/parse cycle, not just dicts."""
        import json

        from repro import SimulationResult

        text = json.dumps(result.to_json_dict())
        rebuilt = SimulationResult.from_json_dict(json.loads(text))
        assert rebuilt == result
        assert rebuilt.to_json_dict() == result.to_json_dict()

    def test_payload_is_plain_json_types(self, result):
        def check(value):
            if isinstance(value, dict):
                for k, v in value.items():
                    assert isinstance(k, str)
                    check(v)
            elif isinstance(value, list):
                for v in value:
                    check(v)
            else:
                assert value is None or isinstance(
                    value, (str, int, float, bool)
                )
                # No numpy scalars sneaking through.
                assert not isinstance(value, np.generic)

        check(result.to_json_dict())

    def test_round_trip_without_segments(self, platform):
        from repro import SimulationResult

        counts = np.ones((5, 2), dtype=np.int64)
        workload = Workload("s", [trace(counts)])
        result = make_sim(platform).run(workload)
        assert result.segments is None
        rebuilt = SimulationResult.from_json_dict(result.to_json_dict())
        assert rebuilt == result
        assert rebuilt.segments is None
        assert rebuilt.latency_events is None
