"""Per-module lint rules (RL001/RL002/RL003/RL005/RL006/RL007) against
bad fixtures.

Each fixture in ``tests/lint_fixtures/`` tags its deliberately bad
lines with ``# expect: <RULE> [<RULE>...]`` trailing comments; the tests
run :func:`repro.lint.analyze_source` with the fixture *masquerading*
under an in-scope relpath and require the findings to match the tags
exactly — same rule IDs, same lines, nothing extra.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.lint import LintConfig, analyze_source
from repro.lint.analyzer import PARSE_ERROR_ID

FIXTURES = Path(__file__).parent / "lint_fixtures"
_EXPECT = re.compile(r"#\s*expect:\s*([A-Z0-9 ]+?)\s*$")


def expected_findings(source):
    expected = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXPECT.search(line)
        if match:
            for rule_id in match.group(1).split():
                expected.append((lineno, rule_id))
    return sorted(expected)


def run_fixture(name, relpath, **kwargs):
    source = (FIXTURES / name).read_text()
    return source, analyze_source(source, relpath, **kwargs)


def assert_matches_tags(source, findings):
    got = sorted((f.line, f.rule_id) for f in findings)
    want = expected_findings(source)
    assert want, "fixture has no '# expect:' tags — broken test setup"
    assert got == want


class TestRL001Determinism:
    def test_catches_clock_and_entropy(self):
        source, findings = run_fixture(
            "rl001_determinism.py", "repro/sim/fixture.py"
        )
        assert_matches_tags(source, findings)

    def test_allowlisted_module_is_exempt(self):
        _, findings = run_fixture(
            "rl001_determinism.py", "repro/obs/metrics.py"
        )
        assert [f for f in findings if f.rule_id == "RL001"] == []

    def test_out_of_scope_path_is_exempt(self):
        _, findings = run_fixture("rl001_determinism.py", "tools/gen.py")
        assert findings == []

    def test_seeded_random_is_clean(self):
        findings = analyze_source(
            "import random\n"
            "def roll(seed):\n"
            "    return random.Random(seed).randrange(6)\n",
            "repro/sim/clean.py",
        )
        assert findings == []


class TestRL002TracerGuard:
    def test_catches_unguarded_instrumentation(self):
        source, findings = run_fixture(
            "rl002_tracer.py", "repro/sim/fixture.py"
        )
        assert_matches_tags(source, findings)

    def test_factory_exemption_follows_config(self):
        source = (
            "from repro.obs.events import LoadStart\n"
            "def _decision_event(cycle):\n"
            "    event = LoadStart(cycle=cycle)\n"
            "    return event\n"
        )
        assert analyze_source(source, "repro/sim/mod.py") == []
        config = LintConfig({"RL002": {"factories": []}})
        findings = analyze_source(source, "repro/sim/mod.py", config)
        assert [(f.rule_id, f.line) for f in findings] == [("RL002", 3)]

    def test_returned_construction_is_callers_problem(self):
        findings = analyze_source(
            "from repro.obs.events import LoadStart\n"
            "def make(cycle):\n"
            "    return LoadStart(cycle=cycle)\n",
            "repro/sim/mod.py",
        )
        assert findings == []


class TestRL003Hygiene:
    def test_catches_mutable_defaults_and_frozen_mutation(self):
        source, findings = run_fixture(
            "rl003_hygiene.py", "repro/core/fixture.py"
        )
        assert_matches_tags(source, findings)

    def test_post_init_setattr_is_allowed(self):
        findings = analyze_source(
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Box:\n"
            "    value: int\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'value', 1)\n",
            "repro/core/mod.py",
        )
        assert findings == []


class TestRL005DivisionFree:
    def test_catches_division_in_scheduler_code(self):
        source, findings = run_fixture(
            "rl005_division.py", "repro/core/schedulers/fixture.py"
        )
        assert_matches_tags(source, findings)

    def test_division_outside_schedulers_is_fine(self):
        _, findings = run_fixture("rl005_division.py", "repro/hw/fsm.py")
        assert findings == []

    def test_vector_engine_is_in_scope(self):
        # The vector fast path mirrors the schedulers' benefit logic,
        # so the division ban follows it there.
        source, findings = run_fixture(
            "rl005_division.py", "repro/sim/vector.py"
        )
        assert_matches_tags(source, findings)

    def test_real_vector_tree_is_rl005_clean(self):
        from pathlib import Path

        import repro

        src = Path(repro.__file__).resolve().parent
        scanned = []
        for path in sorted(src.rglob("*.py")):
            relpath = "repro/" + path.relative_to(src).as_posix()
            if not (
                relpath.startswith("repro/sim/vector")
                or relpath.startswith("repro/core/schedulers/")
            ):
                continue
            scanned.append(relpath)
            findings = analyze_source(
                path.read_text(encoding="utf-8"),
                relpath,
                select=["RL005"],
            )
            assert findings == [], f"RL005 findings in {relpath}"
        assert "repro/sim/vector.py" in scanned


class TestRL006SwallowedExceptions:
    def test_catches_bare_and_silent_handlers(self):
        source, findings = run_fixture(
            "rl006_swallow.py", "repro/exec/fixture.py"
        )
        assert_matches_tags(source, findings)

    def test_out_of_scope_path_is_exempt(self):
        _, findings = run_fixture("rl006_swallow.py", "tools/gen.py")
        assert findings == []

    def test_handler_with_recovery_is_clean(self):
        findings = analyze_source(
            "def load(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except OSError as exc:\n"
            "        raise RuntimeError(str(exc)) from exc\n",
            "repro/exec/clean.py",
        )
        assert findings == []

    def test_real_tree_is_rl006_clean(self):
        # The one historical offender (ResultCache.put's temp-file
        # cleanup) was rewritten with contextlib.suppress; the whole
        # src tree must stay clean from here on.
        from pathlib import Path

        import repro

        src = Path(repro.__file__).resolve().parent
        for path in sorted(src.rglob("*.py")):
            relpath = "repro/" + path.relative_to(src).as_posix()
            findings = analyze_source(
                path.read_text(encoding="utf-8"),
                relpath,
                select=["RL006"],
            )
            assert findings == [], f"RL006 findings in {relpath}"


class TestRL007WallClockSeam:
    def test_catches_wall_clock_outside_seams(self):
        # Select RL007 alone: the fixture's time/datetime imports also
        # trip RL001 under a repro/* path, which is RL001's own test.
        source, findings = run_fixture(
            "rl007_wallclock.py",
            "repro/service/fixture.py",
            select=["RL007"],
        )
        assert_matches_tags(source, findings)

    def test_supervisor_module_is_in_scope(self):
        _, findings = run_fixture(
            "rl007_wallclock.py",
            "repro/exec/supervise.py",
            select=["RL007"],
        )
        assert [f.rule_id for f in findings] == ["RL007"] * 5

    def test_out_of_scope_path_is_exempt(self):
        _, findings = run_fixture(
            "rl007_wallclock.py", "repro/sim/rispp.py", select=["RL007"]
        )
        assert findings == []

    def test_seam_list_follows_config(self):
        source = (
            "import time\n"
            "def read_clock():\n"
            "    return time.monotonic()\n"
        )
        config = LintConfig(
            {"RL007": {"seams": ["read_clock"]}}
        )
        assert analyze_source(
            source, "repro/service/mod.py", config, select=["RL007"]
        ) == []
        findings = analyze_source(
            source, "repro/service/mod.py", select=["RL007"]
        )
        assert [(f.rule_id, f.line) for f in findings] == [("RL007", 3)]

    def test_real_service_tree_is_rl007_clean(self):
        from pathlib import Path

        import repro

        src = Path(repro.__file__).resolve().parent
        for path in sorted(src.rglob("*.py")):
            relpath = "repro/" + path.relative_to(src).as_posix()
            findings = analyze_source(
                path.read_text(encoding="utf-8"),
                relpath,
                select=["RL007"],
            )
            assert findings == [], f"RL007 findings in {relpath}"


def test_select_filters_rules():
    _, findings = run_fixture(
        "rl001_determinism.py", "repro/sim/fixture.py", select=["RL005"]
    )
    assert findings == []


def test_unparsable_module_reports_rl000():
    findings = analyze_source("def broken(:\n", "repro/sim/bad.py")
    assert len(findings) == 1
    assert findings[0].rule_id == PARSE_ERROR_ID
    assert "cannot parse" in findings[0].message
