"""Tests for the pipeline latency model (used by toy libraries)."""

import pytest

from repro import InvalidMoleculeError
from repro.core.latency import AtomRole, PipelineLatencyModel


@pytest.fixture
def model():
    return PipelineLatencyModel(
        roles=[
            AtomRole("A", passes=16, cycles_per_pass=2),
            AtomRole("B", passes=8, cycles_per_pass=3),
        ],
        setup_cycles=4,
        drain_cycles=2,
    )


class TestAtomRole:
    def test_stage_cycles(self):
        role = AtomRole("A", passes=16, cycles_per_pass=2)
        assert role.stage_cycles(1) == 32
        assert role.stage_cycles(2) == 16
        assert role.stage_cycles(3) == 12  # ceil(16/3)=6 passes

    def test_zero_instances_rejected(self):
        role = AtomRole("A", passes=4, cycles_per_pass=1)
        with pytest.raises(InvalidMoleculeError):
            role.stage_cycles(0)

    def test_validation(self):
        with pytest.raises(InvalidMoleculeError):
            AtomRole("A", passes=0, cycles_per_pass=1)
        with pytest.raises(InvalidMoleculeError):
            AtomRole("A", passes=1, cycles_per_pass=0)


class TestPipelineModel:
    def test_bottleneck_dominates(self, model):
        # A: 32 cycles, B: 24 cycles -> 4 + 32 + 2 = 38.
        assert model.latency_of_counts({"A": 1, "B": 1}) == 38

    def test_replication_shifts_bottleneck(self, model):
        # A with 2 instances: 16; B becomes the bottleneck at 24.
        assert model.latency_of_counts({"A": 2, "B": 1}) == 30

    def test_more_atoms_never_slower(self, model):
        base = model.latency_of_counts({"A": 1, "B": 1})
        for a in (1, 2, 4):
            for b in (1, 2, 4):
                assert model.latency_of_counts({"A": a, "B": b}) <= base

    def test_missing_role_rejected(self, model):
        with pytest.raises(InvalidMoleculeError):
            model.latency_of_counts({"A": 1})

    def test_latency_of_molecule(self, model, space):
        molecule = space.molecule({"A": 2, "B": 2})
        assert model.latency_of(molecule) == model.latency_of_counts(
            {"A": 2, "B": 2}
        )

    def test_minimal_counts(self, model):
        assert model.minimal_counts() == {"A": 1, "B": 1}

    def test_atom_types_in_pipeline_order(self, model):
        assert model.atom_types == ("A", "B")

    def test_duplicate_role_rejected(self):
        with pytest.raises(InvalidMoleculeError):
            PipelineLatencyModel(
                [
                    AtomRole("A", 1, 1),
                    AtomRole("A", 2, 2),
                ]
            )

    def test_empty_roles_rejected(self):
        with pytest.raises(InvalidMoleculeError):
            PipelineLatencyModel([])
