"""RL006 fixture — bare excepts and silently swallowed exceptions.

Lines tagged ``# expect: RL006`` must be flagged when the file
masquerades as a module under ``repro/``; handlers that log, re-raise,
recover, or use ``contextlib.suppress`` must stay silent.
"""

import contextlib


def bare_except(risky):
    try:
        return risky()
    except:  # expect: RL006
        return None


def swallowed_pass(risky):
    try:
        return risky()
    except ValueError:  # expect: RL006
        pass


def swallowed_ellipsis(risky):
    try:
        return risky()
    except (OSError, KeyError):  # expect: RL006
        ...


def swallowed_docstring_only(risky):
    try:
        return risky()
    except RuntimeError:  # expect: RL006
        """Nothing to see here."""


def handled_with_fallback(risky):
    try:
        return risky()
    except ValueError:
        return 0


def reraised(risky):
    try:
        return risky()
    except OSError as exc:
        raise RuntimeError("wrapped") from exc


def explicit_suppress(cleanup):
    with contextlib.suppress(OSError):
        cleanup()


def explicit_base_exception(risky):
    try:
        return risky()
    except BaseException:
        raise
