"""RL005 fixture — float division in scheduler benefit logic.

Lines tagged ``# expect: RL005`` must be flagged when the file
masquerades as a module under ``repro/core/schedulers/``; the
cross-multiplied comparison must stay silent.
"""


def benefit_ratio(gain, cost):
    return gain / cost  # expect: RL005


def normalise(total, count):
    total /= count  # expect: RL005
    return total


def compare_cross_multiplied(gain_a, cost_a, gain_b, cost_b):
    return gain_a * cost_b > gain_b * cost_a
