"""Dead-code fixture package root."""
