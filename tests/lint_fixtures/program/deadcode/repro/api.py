"""One live export, one dead one, and a drifting ``__all__``."""

__all__ = ["used_helper", "gone_helper", "used_helper"]  # expect: RL011 RL011


def used_helper():
    return 1


def dead_helper():  # expect: RL011
    return 2


def _private_helper():
    return 3
