"""The only consumer: keeps ``used_helper`` alive, nothing else."""

from .api import used_helper


def _entry():
    return used_helper()
