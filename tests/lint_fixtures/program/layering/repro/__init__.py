"""Layering fixture package root."""
