"""Fixture exec package."""
