"""Upper fixture layer: may import core, never the reverse."""

from ..core.api import step


class Runner:
    pass


def run(state: int) -> int:
    return step(state)
