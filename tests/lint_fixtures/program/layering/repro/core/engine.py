"""A core module reaching *up* into the exec layer — the violation."""

from ..exec.runner import run  # expect: RL008
from .api import step


def tick(state: int) -> int:
    return run(step(state))
