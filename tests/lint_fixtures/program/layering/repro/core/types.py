"""Annotation-only upward coupling is exempt (TYPE_CHECKING)."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..exec.runner import Runner


def describe(runner: "Runner") -> str:
    return repr(runner)
