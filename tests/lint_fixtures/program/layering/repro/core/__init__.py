"""Fixture core package."""
