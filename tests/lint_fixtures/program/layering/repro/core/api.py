"""Lowest fixture layer: a plain function the upper layer may use."""


def step(state: int) -> int:
    return state + 1
