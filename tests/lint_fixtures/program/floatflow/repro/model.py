"""Cross-module float source: the float literal lives *here*."""


def scale_factor(value):
    return value * 1.5


def whole_steps(value):
    return value // 4
