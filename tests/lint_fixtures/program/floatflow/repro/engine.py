"""Integer-exact zone: cycle counters and deadline arithmetic."""

from .model import scale_factor, whole_steps


def advance(budget):
    cycle_budget = scale_factor(budget)  # expect: RL010
    return int(cycle_budget)


def advance_exact(budget):
    cycle_budget = whole_steps(budget)
    return cycle_budget


def deadline_margin(total, parts):
    return total / parts  # expect: RL010


def deadline_margin_exact(total, parts):
    return total // parts
