"""Float-flow fixture package root."""
