"""Taint fixture package root."""
