"""Cross-module taint source: the set iteration happens *here*."""


def unstable_names(table):
    names = set(table)
    return list(names)


def stable_names(table):
    return sorted(set(table))
