"""Determinism sinks one module away from the taint source."""

from .pool import stable_names, unstable_names


def canonical_json(payload):
    return repr(payload)


def write_entry(table):
    names = unstable_names(table)
    return canonical_json(names)  # expect: RL009


def write_sorted_entry(table):
    names = stable_names(table)
    return canonical_json(names)


def write_locally_sorted(table):
    names = sorted(unstable_names(table))
    return canonical_json(names)
