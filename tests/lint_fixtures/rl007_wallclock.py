"""RL007 fixture — wall-clock reads in 'service/supervisor' code.

Deliberately bad: every line tagged ``# expect: RL007`` must be flagged
when this file masquerades as an in-scope module (see
``tests/test_lint_rules.py``).  Excluded from ruff/pytest collection.
"""

import time
from datetime import datetime
from time import monotonic, time as now_fn


def arrival_tick():
    stamp = time.time()  # expect: RL007
    mono = time.monotonic()  # expect: RL007
    local = monotonic()  # expect: RL007
    aliased = now_fn()  # expect: RL007
    wall = datetime.now()  # expect: RL007
    return stamp, mono, local, aliased, wall


def _wall_clock():
    # The sanctioned seam: the one place allowed to read the wall clock.
    return time.monotonic()


def timed_section():
    # perf_counter is a duration probe, not a clock source — not banned.
    begin = time.perf_counter()
    zoned = datetime.now(tz=None)  # argful form is explicit, allowed
    return begin, zoned
