"""RL002 fixture — unguarded tracer emits and event constructions.

Lines tagged ``# expect: RL002`` (one tag per expected finding) must be
flagged when the file masquerades as e.g. ``repro/sim/fixture.py``.
The guarded emits, the negated-guard ``else`` branch, and the
``_decision_event`` factory must all stay silent.
"""

import repro.obs.events as events
from repro.obs.events import LoadStart


def _decision_event(cycle):
    event = LoadStart(cycle=cycle)
    return event


class Engine:
    def __init__(self, tracer):
        self.tracer = tracer

    def step(self, cycle):
        self.tracer.emit(LoadStart(cycle=cycle))  # expect: RL002 RL002
        stray = events.LoadComplete(cycle=cycle)  # expect: RL002
        if self.tracer.enabled:
            self.tracer.emit(LoadStart(cycle=cycle))
        if not self.tracer.enabled:
            pass
        else:
            self.tracer.emit(LoadStart(cycle=cycle))
        return _decision_event(cycle), stray
