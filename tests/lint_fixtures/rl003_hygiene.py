"""RL003 fixture — mutable defaults and frozen-dataclass mutation.

Lines tagged ``# expect: RL003`` must be flagged; the ``__post_init__``
``object.__setattr__`` and the None-default idiom must stay silent.
"""

from dataclasses import dataclass


def collect(items=[]):  # expect: RL003
    return items


def gather(extra=dict()):  # expect: RL003
    return extra


def safe(items=None):
    return items if items is not None else []


@dataclass(frozen=True)
class Box:
    value: int

    def __post_init__(self):
        object.__setattr__(self, "value", abs(self.value))

    def grow(self):
        self.value = self.value + 1  # expect: RL003
        object.__setattr__(self, "value", 0)  # expect: RL003
