"""RL001 fixture — wall clock and entropy in 'simulation' code.

Deliberately bad: every line tagged ``# expect: RL001`` must be flagged
when this file masquerades as an in-scope module (see
``tests/test_lint_rules.py``).  Excluded from ruff/pytest collection.
"""

import os
import random
import time  # expect: RL001

from random import Random
from random import randint  # expect: RL001


def jitter(seed):
    rng = random.Random()  # expect: RL001
    good = random.Random(seed)
    noise = random.random()  # expect: RL001
    entropy = os.urandom(4)  # expect: RL001
    return rng, good, noise, entropy, randint(0, 1)


def fresh():
    return Random()  # expect: RL001


def seeded(seed):
    return Random(seed), time.monotonic
