"""Unit tests for Special Instructions and the SI library."""

import pytest

from repro import (
    InvalidMoleculeError,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
    UnknownSpecialInstructionError,
)
from tests.conftest import make_toy_si


class TestMoleculeImpl:
    def test_software_flag(self, space):
        sw = MoleculeImpl("SI", "software", space.zero(), 100)
        assert sw.is_software
        hw = MoleculeImpl("SI", "m", space.molecule({"A": 1}), 50)
        assert not hw.is_software

    def test_determinant(self, space):
        impl = MoleculeImpl("SI", "m", space.molecule({"A": 2, "B": 1}), 50)
        assert impl.determinant == 3

    def test_paper_pseudocode_aliases(self, space):
        impl = MoleculeImpl("SI", "m", space.molecule({"A": 1}), 50)
        assert impl.get_si() == "SI"
        assert impl.get_latency() == 50

    def test_nonpositive_latency_rejected(self, space):
        with pytest.raises(InvalidMoleculeError):
            MoleculeImpl("SI", "m", space.molecule({"A": 1}), 0)


class TestSpecialInstruction:
    def test_table_counts(self, toy_si):
        assert toy_si.num_atom_types == 2  # A and B
        assert toy_si.num_molecules == 4

    def test_molecules_sorted_by_determinant(self, toy_si):
        determinants = [m.determinant for m in toy_si.molecules]
        assert determinants == sorted(determinants)

    def test_software_always_available(self, space, toy_si):
        impl = toy_si.fastest_available(space.zero())
        assert impl.is_software
        assert impl.latency == toy_si.software_latency

    def test_fastest_available_picks_best_covered(self, space, toy_si):
        available = space.molecule({"A": 2, "B": 2})
        assert toy_si.fastest_available(available).name == "m2"

    def test_fastest_available_full(self, space, toy_si):
        available = space.molecule({"A": 4, "B": 4, "C": 1})
        assert toy_si.fastest_available(available).name == "m3"

    def test_nonpareto_not_picked_when_better_available(self, space, toy_si):
        # m4=(1,3) lat 150 vs m2=(2,2) lat 120: with both covered, m2 wins.
        available = space.molecule({"A": 2, "B": 3})
        assert toy_si.fastest_available(available).name == "m2"

    def test_nonpareto_useful_when_only_it_covered(self, space, toy_si):
        available = space.molecule({"A": 1, "B": 3})
        assert toy_si.fastest_available(available).name == "m4"

    def test_available_latency(self, space, toy_si):
        assert toy_si.available_latency(space.zero()) == 1000
        assert toy_si.available_latency(space.molecule({"A": 1})) == 400

    def test_fastest_property(self, toy_si):
        assert toy_si.fastest.name == "m3"

    def test_implementations_include_software(self, toy_si):
        impls = toy_si.implementations
        assert impls[0].is_software
        assert len(impls) == 5

    def test_molecule_lookup(self, toy_si):
        assert toy_si.molecule("m2").latency == 120
        assert toy_si.molecule("software").is_software

    def test_molecule_lookup_unknown(self, toy_si):
        with pytest.raises(UnknownSpecialInstructionError):
            toy_si.molecule("nope")

    def test_duplicate_vector_rejected(self, space):
        with pytest.raises(InvalidMoleculeError):
            SpecialInstruction(
                "SI",
                space,
                100,
                [
                    MoleculeImpl("SI", "a", space.molecule({"A": 1}), 50),
                    MoleculeImpl("SI", "b", space.molecule({"A": 1}), 40),
                ],
            )

    def test_duplicate_name_rejected(self, space):
        with pytest.raises(InvalidMoleculeError):
            SpecialInstruction(
                "SI",
                space,
                100,
                [
                    MoleculeImpl("SI", "a", space.molecule({"A": 1}), 50),
                    MoleculeImpl("SI", "a", space.molecule({"B": 1}), 40),
                ],
            )

    def test_hardware_slower_than_software_rejected(self, space):
        with pytest.raises(InvalidMoleculeError):
            SpecialInstruction(
                "SI",
                space,
                100,
                [MoleculeImpl("SI", "a", space.molecule({"A": 1}), 200)],
            )

    def test_zero_molecule_rejected_as_hardware(self, space):
        with pytest.raises(InvalidMoleculeError):
            SpecialInstruction(
                "SI",
                space,
                100,
                [MoleculeImpl("SI", "a", space.zero(), 50)],
            )

    def test_wrong_si_name_rejected(self, space):
        with pytest.raises(InvalidMoleculeError):
            SpecialInstruction(
                "SI",
                space,
                100,
                [MoleculeImpl("OTHER", "a", space.molecule({"A": 1}), 50)],
            )

    def test_no_molecules_rejected(self, space):
        with pytest.raises(InvalidMoleculeError):
            SpecialInstruction("SI", space, 100, [])


class TestSILibrary:
    def test_len_and_contains(self, toy_library):
        assert len(toy_library) == 2
        assert "SI1" in toy_library
        assert "nope" not in toy_library

    def test_get_unknown_raises(self, toy_library):
        with pytest.raises(UnknownSpecialInstructionError):
            toy_library.get("nope")

    def test_subset_order(self, toy_library):
        sis = toy_library.subset(["SI2", "SI1"])
        assert [s.name for s in sis] == ["SI2", "SI1"]

    def test_inventory(self, toy_library):
        rows = dict(
            (name, (types, mols))
            for name, types, mols in toy_library.inventory()
        )
        assert rows["SI1"] == (2, 4)
        assert rows["SI2"] == (2, 3)

    def test_duplicate_si_rejected(self, space):
        si = make_toy_si(space)
        with pytest.raises(InvalidMoleculeError):
            SILibrary(space, [si, make_toy_si(space)])

    def test_empty_library_rejected(self, space):
        with pytest.raises(InvalidMoleculeError):
            SILibrary(space, [])

    def test_cross_space_si_rejected(self, space):
        from repro import AtomSpace, MoleculeImpl, SpecialInstruction

        other = AtomSpace(["X", "Y", "Z"])
        si_other = SpecialInstruction(
            "SIX",
            other,
            100,
            [MoleculeImpl("SIX", "m", other.molecule({"X": 1}), 50)],
        )
        with pytest.raises(InvalidMoleculeError):
            SILibrary(space, [si_other])
