"""Public API surface the repository promises but nothing else exercised.

RL011 (dead-exports) demands every public symbol be referenced from
somewhere real; these tests are that reference *and* pin the symbols'
contracts — the paper's calibration constants keep their DATE'08
values, the stats/journal/timer classes stay constructible, and the
``repro serve`` entry point keeps producing a deterministic digest.
"""

from __future__ import annotations

from repro.calibration import (
    CLOCK_MHZ,
    PAPER_FIG7_SCHEDULERS,
    RECONFIG_BANDWIDTH_MBPS,
    RECONFIG_TIME_US,
    bitstream_bytes_to_cycles,
)
from repro.core.monitor import ExecutionMonitor, MonitorStats
from repro.core.schedulers.base import SchedulerState
from repro.core.scoring import VectorSchedulerState
from repro.exec.chaos import CHAOS_ENV_VAR, CHAOS_MODES, chaos_from_env
from repro.fabric.atom import (
    AVERAGE_RECONFIG_CYCLES,
    RECONFIG_CYCLES_PER_ATOM,
)
from repro.h264.silibrary import ATOM_DCACC, PAPER_SI_LABELS, build_si_library
from repro.obs.metrics import HistogramTimer, MetricsRegistry


class TestPaperConstants:
    def test_clock_and_port_calibration_match_the_paper(self):
        # Section 5: 100 MHz prototype, 66 MB/s SelectMap port.
        assert CLOCK_MHZ == 100.0
        assert RECONFIG_BANDWIDTH_MBPS == 66.0
        assert RECONFIG_TIME_US == 874.03

    def test_reconfig_cycles_follow_from_the_calibration(self):
        assert AVERAGE_RECONFIG_CYCLES == RECONFIG_CYCLES_PER_ATOM
        # 874.03 us at 100 MHz is 87403 cycles; the derived per-atom
        # constant must stay on that order of magnitude.
        assert 80_000 <= AVERAGE_RECONFIG_CYCLES <= 95_000

    def test_fig7_scheduler_roster_is_the_papers(self):
        assert PAPER_FIG7_SCHEDULERS == ("ASF", "FSFR", "SJF", "HEF")

    def test_bitstream_conversion_uses_the_paper_port(self):
        cycles = bitstream_bytes_to_cycles(60_488)
        assert cycles > 0
        assert isinstance(cycles, int)

    def test_table1_atoms_and_labels(self):
        assert ATOM_DCACC == "DCACC"
        library = build_si_library()
        # Every pretty label belongs to a real SI of the library.
        names = {si.name for si in library}
        assert set(PAPER_SI_LABELS) <= names
        assert PAPER_SI_LABELS["DCT"] == "(I)DCT"


class TestMonitorStats:
    def test_stats_object_defaults_and_type(self):
        monitor = ExecutionMonitor()
        stats = monitor.stats("hs", "SAD")
        assert isinstance(stats, MonitorStats)
        assert stats.num_updates == 0


class TestVectorSchedulerState:
    def test_is_a_scheduler_state(self):
        assert issubclass(VectorSchedulerState, SchedulerState)


class TestChaosEnvSeam:
    def test_env_var_round_trip(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "*:hang")
        spec = chaos_from_env()
        assert spec.entries  # one catch-all rule parsed from the env

    def test_empty_env_is_no_chaos(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        assert not chaos_from_env()

    def test_documented_modes_are_the_parseable_ones(self, monkeypatch):
        assert CHAOS_MODES == ("hang", "crash", "raise")
        for mode in CHAOS_MODES:
            monkeypatch.setenv(CHAOS_ENV_VAR, f"*:{mode}")
            assert chaos_from_env().entries


class TestHistogramTimer:
    def test_timer_returns_the_public_context_manager(self):
        registry = MetricsRegistry()
        timer = registry.timer("span")
        assert isinstance(timer, HistogramTimer)
        with timer:
            pass
        assert registry.histogram("span").count == 1


class TestServeEntryPoint:
    def test_digest_only_smoke_run(self, capsys):
        from repro.cli import serve_main

        code = serve_main(
            [
                "--tenants", "2",
                "--duration", "300",
                "--digest-only",
                "--no-cache",
            ]
        )
        assert code == 0
        digest = capsys.readouterr().out.strip()
        assert len(digest) == 64
        int(digest, 16)  # a hex SHA-256
