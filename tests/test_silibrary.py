"""Tests for the calibrated H.264 SI library (Table 1)."""

import pytest

from repro import sup
from repro.calibration import (
    AVG_ATOM_SLICES,
    AC_SLICES,
    RECONFIG_CYCLES_PER_ATOM,
)
from repro.h264.silibrary import (
    HOT_SPOT_ORDER,
    HOT_SPOT_SIS,
    SOFTWARE_LATENCIES,
    paper_si_label,
)

#: The exact Table 1 rows: SI -> (atom types, molecules).
TABLE1 = {
    "SAD": (1, 3),
    "SATD": (4, 20),
    "DCT": (3, 12),
    "HT2x2": (1, 2),
    "HT4x4": (2, 7),
    "MC": (3, 11),
    "IPredHDC": (2, 4),
    "IPredVDC": (1, 3),
    "LF_BS4": (2, 5),
}


class TestTable1:
    def test_all_nine_sis_present(self, h264_library):
        assert set(h264_library.si_names) == set(TABLE1)

    @pytest.mark.parametrize("si_name", sorted(TABLE1))
    def test_atom_type_count_matches_paper(self, h264_library, si_name):
        si = h264_library.get(si_name)
        assert si.num_atom_types == TABLE1[si_name][0]

    @pytest.mark.parametrize("si_name", sorted(TABLE1))
    def test_molecule_count_matches_paper(self, h264_library, si_name):
        si = h264_library.get(si_name)
        assert si.num_molecules == TABLE1[si_name][1]

    def test_paper_labels(self):
        assert paper_si_label("DCT") == "(I)DCT"
        assert paper_si_label("MC") == "MC 4"
        assert paper_si_label("SAD") == "SAD"


class TestHotSpots:
    def test_hot_spot_order(self):
        assert HOT_SPOT_ORDER == ("ME", "EE", "LF")

    def test_hot_spots_partition_the_sis(self):
        assigned = [si for sis in HOT_SPOT_SIS.values() for si in sis]
        assert sorted(assigned) == sorted(TABLE1)

    def test_hot_spots_are_atom_disjoint(self, h264_library):
        """ME, EE and LF use disjoint atom sets, so every hot-spot entry
        reconfigures — the churn regime of the paper's Figure 8."""
        atom_sets = {}
        for hot_spot, sis in HOT_SPOT_SIS.items():
            atoms = set()
            for si_name in sis:
                atoms.update(h264_library.get(si_name).atom_types)
            atom_sets[hot_spot] = atoms
        assert not atom_sets["ME"] & atom_sets["EE"]
        assert not atom_sets["EE"] & atom_sets["LF"]
        assert not atom_sets["ME"] & atom_sets["LF"]

    def test_ee_shares_atoms_internally(self, h264_library):
        """Within EE, sharing makes scheduling non-trivial (CLIP3 serves
        MC and IPredHDC; DCHAD both Hadamard SIs)."""
        mc = set(h264_library.get("MC").atom_types)
        hdc = set(h264_library.get("IPredHDC").atom_types)
        ht2 = set(h264_library.get("HT2x2").atom_types)
        ht4 = set(h264_library.get("HT4x4").atom_types)
        assert mc & hdc
        assert ht2 & ht4


class TestLatencyLadders:
    @pytest.mark.parametrize("si_name", sorted(TABLE1))
    def test_every_molecule_faster_than_software(
        self, h264_library, si_name
    ):
        si = h264_library.get(si_name)
        for impl in si.molecules:
            assert impl.latency < SOFTWARE_LATENCIES[si_name]

    @pytest.mark.parametrize("si_name", sorted(TABLE1))
    def test_biggest_molecule_is_fastest(self, h264_library, si_name):
        si = h264_library.get(si_name)
        biggest = max(si.molecules, key=lambda m: m.determinant)
        assert si.fastest.latency == biggest.latency

    def test_first_rung_speedup_band(self, h264_library):
        """Smallest molecule gains roughly 3-15x over software."""
        for si in h264_library:
            smallest = min(
                si.molecules, key=lambda m: (m.determinant, m.latency)
            )
            ratio = si.software_latency / smallest.latency
            assert 2.0 < ratio < 20.0, si.name

    def test_top_rung_speedup_band(self, h264_library):
        """Largest molecule gains roughly 10-60x over software."""
        for si in h264_library:
            ratio = si.software_latency / si.fastest.latency
            assert 9.0 < ratio < 90.0, si.name

    def test_library_contains_nonpareto_molecules(self, h264_library):
        """At least one SI has an m4-style molecule: larger determinant
        but slower than some other molecule (the eq.-4 cleaning case)."""
        found = False
        for si in h264_library:
            for a in si.molecules:
                for b in si.molecules:
                    if (
                        a.determinant > b.determinant
                        and a.latency > b.latency
                        and not b.atoms <= a.atoms
                    ):
                        found = True
        assert found


class TestPhysicalCalibration:
    def test_average_atom_slices(self, h264_registry):
        slices = [t.slices for t in h264_registry]
        assert sum(slices) / len(slices) == pytest.approx(
            AVG_ATOM_SLICES
        )

    def test_every_atom_fits_one_ac(self, h264_registry):
        assert all(t.slices <= AC_SLICES for t in h264_registry)

    def test_average_reconfig_time_near_paper(self, h264_registry):
        avg = h264_registry.average_reconfig_cycles()
        assert abs(avg - RECONFIG_CYCLES_PER_ATOM) < (
            0.02 * RECONFIG_CYCLES_PER_ATOM
        )

    def test_supremum_of_everything_exceeds_max_acs(self, h264_library):
        """The total atom demand exceeds 24 ACs, so the fabric keeps
        rotating (the R in RISPP)."""
        everything = sup(
            [impl.atoms for si in h264_library for impl in si.molecules],
            h264_library.space,
        )
        assert everything.determinant > 24
