"""Correctness of the content-addressed result cache.

Pins three guarantees: keys are stable across processes (no dependence
on ``PYTHONHASHSEED`` or dict ordering), a code-version salt change
invalidates every artifact, and corrupted/truncated artifacts degrade
to cache misses instead of crashes.
"""

import json
import subprocess
import sys

import pytest

from repro.exec import (
    CODE_VERSION_SALT,
    ResultCache,
    SweepCell,
    WorkloadSpec,
    cell_key,
    execute_cell,
    run_sweep,
)


@pytest.fixture()
def cell():
    return SweepCell(
        system="RISPP",
        scheduler="HEF",
        num_acs=6,
        workload=WorkloadSpec(frames=2, seed=2008),
    )


@pytest.fixture()
def payload(cell):
    return execute_cell(cell).to_json_dict()


class TestKeyStability:
    def test_key_is_sha256_hex(self, cell):
        key = cell_key(cell)
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    def test_key_stable_within_process(self, cell):
        assert cell_key(cell) == cell_key(cell)

    def test_key_stable_across_processes(self, cell, monkeypatch):
        """Fresh interpreters with randomized string hashing agree."""
        program = (
            "from repro.exec import SweepCell, WorkloadSpec, cell_key;"
            "cell = SweepCell(system='RISPP', scheduler='HEF', num_acs=6,"
            " workload=WorkloadSpec(frames=2, seed=2008));"
            "print(cell_key(cell))"
        )
        import pathlib

        import repro

        src_dir = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        keys = set()
        for hash_seed in ("1", "2", "random"):
            proc = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                env={
                    "PYTHONPATH": src_dir,
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": "/usr/bin:/bin",
                },
                check=True,
            )
            keys.add(proc.stdout.strip())
        assert keys == {cell_key(cell)}

    def test_salt_changes_key(self, cell):
        assert cell_key(cell, salt="other-salt") != cell_key(cell)


class TestRoundTrip:
    def test_put_then_get(self, tmp_path, cell, payload):
        cache = ResultCache(tmp_path)
        assert cache.get(cell) is None
        cache.put(cell, payload)
        assert cache.get(cell) == payload
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.stores == 1

    def test_get_via_second_cache_instance(self, tmp_path, cell, payload):
        ResultCache(tmp_path).put(cell, payload)
        assert ResultCache(tmp_path).get(cell) == payload

    def test_len_and_clear(self, tmp_path, cell, payload):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(cell, payload)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.get(cell) is None


class TestSaltInvalidation:
    def test_salt_bump_orphans_artifacts(self, tmp_path, cell, payload):
        old = ResultCache(tmp_path, salt=CODE_VERSION_SALT)
        old.put(cell, payload)
        bumped = ResultCache(tmp_path, salt=CODE_VERSION_SALT + ".1")
        assert bumped.get(cell) is None

    def test_same_key_different_salt_artifact_is_a_miss(
        self, tmp_path, cell, payload
    ):
        """Even a key collision cannot serve a stale-salt artifact:
        the embedded salt is checked on read."""
        cache = ResultCache(tmp_path, salt="A")
        cache.put(cell, payload)
        path = cache.path_for(cell)
        artifact = json.loads(path.read_text())
        artifact["salt"] = "B"
        path.write_text(json.dumps(artifact))
        assert cache.get(cell) is None


class TestCorruptArtifacts:
    def _stored(self, tmp_path, cell, payload):
        cache = ResultCache(tmp_path)
        cache.put(cell, payload)
        return cache, cache.path_for(cell)

    def test_truncated_artifact_is_a_miss(self, tmp_path, cell, payload):
        cache, path = self._stored(tmp_path, cell, payload)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert cache.get(cell) is None

    def test_empty_artifact_is_a_miss(self, tmp_path, cell, payload):
        cache, path = self._stored(tmp_path, cell, payload)
        path.write_text("")
        assert cache.get(cell) is None

    def test_garbage_artifact_is_a_miss(self, tmp_path, cell, payload):
        cache, path = self._stored(tmp_path, cell, payload)
        path.write_text("{not json at all")
        assert cache.get(cell) is None

    def test_wrong_shape_artifact_is_a_miss(self, tmp_path, cell, payload):
        cache, path = self._stored(tmp_path, cell, payload)
        path.write_text(json.dumps([1, 2, 3]))
        assert cache.get(cell) is None

    def test_cell_mismatch_is_a_miss(self, tmp_path, cell, payload):
        cache, path = self._stored(tmp_path, cell, payload)
        artifact = json.loads(path.read_text())
        artifact["cell"]["num_acs"] = 99
        path.write_text(json.dumps(artifact))
        assert cache.get(cell) is None

    def test_missing_result_is_a_miss(self, tmp_path, cell, payload):
        cache, path = self._stored(tmp_path, cell, payload)
        artifact = json.loads(path.read_text())
        artifact["result"] = None
        path.write_text(json.dumps(artifact))
        assert cache.get(cell) is None

    def test_corrupt_artifact_heals_through_the_runner(
        self, tmp_path, cell, payload
    ):
        """A sweep over a corrupted cache re-runs the cell and rewrites
        a valid artifact — no crash, no stale data."""
        cache, path = self._stored(tmp_path, cell, payload)
        path.write_text("garbage")
        report = run_sweep([cell], jobs=1, cache=cache)
        assert report.cache_hits == 0
        assert report.outcomes[0].result.to_json_dict() == payload
        # Healed: the next sweep hits.
        replay = run_sweep([cell], jobs=1, cache=cache)
        assert replay.cache_hits == 1
        assert replay.outcomes[0].result.to_json_dict() == payload
