"""Unit coverage of the observability building blocks.

The system-level behaviour is pinned elsewhere (differential replay,
golden schema, hypothesis invariants); this file covers the metric
primitives, exporter error paths, Chrome-trace validation and the sweep
engine's tracer hooks directly.
"""

import json

import pytest

from repro import (
    MetricsRegistry,
    RecordingTracer,
    SweepCell,
    WorkloadSpec,
    execute_cell,
    generate_workload,
    run_metrics,
    run_sweep,
    to_chrome_trace,
    to_summary_text,
    validate_chrome_trace,
)
from repro.core.schedulers import get_scheduler
from repro.errors import ObservabilityError
from repro.obs import export_events
from repro.obs.events import (
    LoadStart,
    SchedulerDecision,
    event_from_json_dict,
)
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.sim.rispp import RisppSimulator


# -- metric primitives -------------------------------------------------------


def test_counter_is_monotone():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ObservabilityError):
        counter.inc(-1)


def test_gauge_last_set_wins():
    gauge = Gauge("g")
    gauge.set(5)
    gauge.set(-2)
    assert gauge.value == -2.0


def test_histogram_aggregates():
    hist = Histogram("h")
    for value in (4.0, 1.0, 3.0, 2.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.total == 10.0
    assert hist.min == 1.0
    assert hist.max == 4.0
    assert hist.mean == 2.5
    assert hist.percentile(0.0) == 1.0
    assert hist.percentile(1.0) == 4.0
    with pytest.raises(ObservabilityError):
        hist.percentile(1.5)


def test_registry_name_type_conflict():
    registry = MetricsRegistry()
    registry.counter("x").inc()
    assert registry.counter("x").value == 1.0  # get-or-create returns same
    with pytest.raises(ObservabilityError):
        registry.gauge("x")
    assert registry.names() == ["x"]
    assert "x" in registry
    text = registry.format_text()
    assert "x: 1" in text
    assert registry.to_json_dict()["x"]["type"] == "counter"


# -- derived run metrics ------------------------------------------------------


@pytest.fixture(scope="module")
def recorded_run(h264_library, h264_registry):
    tracer = RecordingTracer()
    sim = RisppSimulator(
        h264_library, h264_registry, get_scheduler("HEF"), 8, tracer=tracer
    )
    metrics = MetricsRegistry()
    sim.metrics = metrics
    result = sim.run(generate_workload(num_frames=1, seed=2008))
    return list(tracer), result, metrics


def test_run_metrics_aggregates(recorded_run):
    events, result, _ = recorded_run
    registry = run_metrics(events, result.total_cycles)
    busy = registry.get("bus.busy_cycles").value
    assert 0 < busy < result.total_cycles
    fraction = registry.get("bus.busy_fraction").value
    assert fraction == pytest.approx(busy / result.total_cycles)
    assert registry.get("loads.completed").value == result.loads_completed
    assert registry.get("si.first_acceleration.mean").value > 0
    assert registry.get("hot_spots.switches").value == 3  # ME, EE, LF


def test_engine_metrics_match_event_derivation(recorded_run):
    events, result, engine_metrics = recorded_run
    derived = run_metrics(events, result.total_cycles)
    # The port commits a load's bus occupancy when it starts, so a load
    # still in flight at run end counts there but has no completion
    # event: the engine gauge may exceed the event-paired sum by at most
    # that one truncated load.
    engine_busy = engine_metrics.get("bus.busy_cycles").value
    derived_busy = derived.get("bus.busy_cycles").value
    assert derived_busy <= engine_busy <= derived_busy + 200_000
    assert engine_metrics.get("run.total_cycles").value == (
        result.total_cycles
    )
    timing = engine_metrics.get("scheduler.decision_seconds")
    assert timing.count == 3  # one decision per hot-spot entry
    assert timing.mean > 0


# -- exporters ----------------------------------------------------------------


def test_summary_text_mentions_key_milestones(recorded_run):
    events, _, _ = recorded_run
    text = to_summary_text(events)
    assert "run start" in text
    assert "hot spot" in text
    assert "load" in text


def test_export_events_rejects_unknown_format(recorded_run, tmp_path):
    events, _, _ = recorded_run
    with pytest.raises(ObservabilityError):
        export_events(events, tmp_path / "x.bin", "protobuf")


def test_export_events_all_formats(recorded_run, tmp_path):
    events, _, _ = recorded_run
    for fmt, probe in (
        ("json", "schema"),
        ("chrome", "traceEvents"),
        ("summary", "run start"),
    ):
        path = export_events(events, tmp_path / f"t.{fmt}", fmt)
        assert probe in path.read_text()


def test_chrome_trace_tracks(recorded_run):
    events, _, _ = recorded_run
    trace = to_chrome_trace(events)
    names = {
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert "scheduler" in names
    assert any(name.startswith("AC") for name in names)
    validate_chrome_trace(trace)


def test_chrome_validation_catches_unbalanced_slices(recorded_run):
    events, _, _ = recorded_run
    trace = to_chrome_trace(events)
    begin = next(
        e for e in trace["traceEvents"] if e["ph"] == "B"
    )
    trace["traceEvents"].remove(begin)
    with pytest.raises(ObservabilityError):
        validate_chrome_trace(trace)


def test_chrome_validation_catches_time_regression(recorded_run):
    events, _, _ = recorded_run
    trace = to_chrome_trace(events)
    slices = [e for e in trace["traceEvents"] if e["ph"] in "BE"]
    slices[-1]["ts"] = -1.0
    with pytest.raises(ObservabilityError):
        validate_chrome_trace(trace)


def test_event_json_requires_all_fields():
    with pytest.raises(ObservabilityError):
        event_from_json_dict({"kind": "load_start", "cycle": 3})


def test_decision_steps_survive_json(recorded_run):
    events, _, _ = recorded_run
    decision = next(e for e in events if isinstance(e, SchedulerDecision))
    assert decision.steps, "HEF decisions carry upgrade steps"
    round_tripped = event_from_json_dict(
        json.loads(json.dumps(decision.to_json_dict()))
    )
    assert round_tripped == decision
    step = round_tripped.steps[0]
    assert step.benefit_den >= 1
    assert step.latency_after <= step.latency_before


# -- sweep engine hooks -------------------------------------------------------


def _cell(num_acs, frames=1):
    return SweepCell(
        system="RISPP",
        scheduler="HEF",
        num_acs=num_acs,
        workload=WorkloadSpec(frames=frames, seed=2008),
    )


def test_execute_cell_with_tracer_matches_untraced():
    cell = _cell(6)
    tracer = RecordingTracer()
    traced = execute_cell(cell, tracer=tracer)
    plain = execute_cell(cell)
    assert traced.to_json_dict() == plain.to_json_dict()
    assert tracer.of_type(LoadStart)


def test_run_sweep_tracer_factory_traces_every_cell():
    cells = [_cell(4), _cell(6)]
    seen = {}
    report = run_sweep(
        cells,
        tracer_factory=lambda cell: RecordingTracer(),
        on_trace=lambda cell, tracer: seen.__setitem__(
            cell.label, len(tracer)
        ),
    )
    assert len(report) == 2
    assert set(seen) == {cell.label for cell in cells}
    assert all(count > 0 for count in seen.values())
    baseline = run_sweep(cells)
    assert [o.result.to_json_dict() for o in report] == [
        o.result.to_json_dict() for o in baseline
    ]


def test_sweep_report_metrics():
    cells = [_cell(4), _cell(6)]
    report = run_sweep(cells)
    registry = report.metrics()
    assert registry.get("cells.total").value == 2
    assert registry.get("cache.hits").value == 0
    assert registry.get("cache.misses").value == 2
    assert registry.get("cache.hit_rate").value == 0.0
    assert registry.get("cell.wall_seconds").count == 2
