"""The fault-tolerant sweep supervisor under injected chaos.

Every worker-level disaster the supervisor promises to survive is acted
out via the chaos harness (:mod:`repro.exec.chaos`): hard hangs are
killed at the per-cell deadline, dead workers are detected at pipe EOF,
deterministic exceptions are classified as poison — and in every case a
bounded number of retries either recovers the cell (bit-identically to
an unsupervised run) or quarantines it without aborting the rest of the
grid.
"""

import pytest

from repro.errors import SweepError
from repro.exec import (
    ChaosEntry,
    ChaosSpec,
    SupervisorPolicy,
    SweepSpec,
    WorkloadSpec,
    canonical_json,
    parse_chaos_spec,
    policy_from_env,
    run_supervised,
    run_sweep,
)
from repro.obs import MetricsRegistry, RecordingTracer
from repro.obs.events import CellQuarantined, CellRetry


def payload_bytes(outcome):
    return canonical_json(outcome.result.to_json_dict()).encode("ascii")


def small_spec(ac_counts=(2, 3, 4)):
    return SweepSpec(
        schedulers=("HEF",),
        ac_counts=ac_counts,
        workload=WorkloadSpec(frames=1, seed=2008),
    )


#: Fast retries for tests: no real backoff sleeping.
FAST = dict(backoff_seconds=0.01, backoff_factor=1.0, jitter=0.0)


class TestChaosModes:
    def test_hang_is_killed_and_quarantined_grid_survives(self):
        report = run_supervised(
            small_spec(),
            policy=SupervisorPolicy(timeout=1.0, max_attempts=2, **FAST),
            chaos=parse_chaos_spec("HEF@3AC*:hang"),
        )
        assert [q.label for q in report.quarantined] == ["HEF@3AC/1f"]
        assert report.quarantined[0].failure == "timeout"
        assert report.quarantined[0].attempts == 2
        # The other two cells completed despite the hang.
        assert [o.cell.label for o in report] == [
            "HEF@2AC/1f",
            "HEF@4AC/1f",
        ]
        assert not report.interrupted

    def test_crash_is_detected_and_quarantined(self):
        report = run_supervised(
            small_spec(ac_counts=(2, 3)),
            policy=SupervisorPolicy(max_attempts=2, **FAST),
            chaos=parse_chaos_spec("HEF@2AC*:crash"),
        )
        (quarantined,) = report.quarantined
        assert quarantined.failure == "crash"
        assert "exit code 70" in quarantined.message
        assert [o.cell.label for o in report] == ["HEF@3AC/1f"]

    def test_poison_is_classified_and_quarantined(self):
        report = run_supervised(
            small_spec(ac_counts=(2, 3)),
            policy=SupervisorPolicy(max_attempts=2, **FAST),
            chaos=parse_chaos_spec("HEF@2AC*:raise"),
        )
        (quarantined,) = report.quarantined
        assert quarantined.failure == "poison"
        assert "ChaosInjectedError" in quarantined.message

    def test_transient_failure_recovers_bit_identically(self):
        """A cell that crashes twice then succeeds matches a clean run."""
        spec = small_spec(ac_counts=(2,))
        clean = run_sweep(spec, jobs=1)
        report = run_supervised(
            spec,
            policy=SupervisorPolicy(max_attempts=3, **FAST),
            chaos=parse_chaos_spec("*:crash:2"),
        )
        assert report.quarantined == []
        assert report.retries == 2
        assert payload_bytes(report.outcomes[0]) == payload_bytes(
            clean.outcomes[0]
        )

    def test_supervised_clean_run_matches_plain_run(self):
        spec = small_spec()
        plain = run_sweep(spec, jobs=1)
        supervised = run_supervised(spec, jobs=2, policy=SupervisorPolicy())
        assert [payload_bytes(o) for o in supervised] == [
            payload_bytes(o) for o in plain
        ]


class TestObservability:
    def test_retry_and_quarantine_events_and_counters(self):
        tracer = RecordingTracer()
        metrics = MetricsRegistry()
        report = run_supervised(
            small_spec(ac_counts=(2, 3)),
            policy=SupervisorPolicy(max_attempts=2, **FAST),
            chaos=parse_chaos_spec("HEF@2AC*:raise"),
            tracer=tracer,
            metrics=metrics,
        )
        (retry,) = tracer.of_type(CellRetry)
        assert retry.label == "HEF@2AC/1f"
        assert retry.failure == "poison"
        (quarantine,) = tracer.of_type(CellQuarantined)
        assert quarantine.attempts == 2
        assert metrics.counter("supervisor.retries").value == 1
        assert metrics.counter("supervisor.quarantined").value == 1
        assert metrics.counter("supervisor.failures.poison").value == 2
        aggregates = report.metrics()
        assert aggregates.counter("supervisor.report.quarantined").value == 1
        assert aggregates.counter("supervisor.report.retries").value == 1

    def test_report_summary_mentions_failures(self):
        report = run_supervised(
            small_spec(ac_counts=(2,)),
            policy=SupervisorPolicy(max_attempts=1, **FAST),
            chaos=parse_chaos_spec("*:raise"),
        )
        summary = report.summary()
        assert "1 quarantined" in summary
        failures = report.failure_report()
        assert failures["completed"] == 0
        assert failures["quarantined"][0]["failure"] == "poison"


class TestPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(timeout=0.0),
            dict(timeout=-1.0),
            dict(max_attempts=0),
            dict(backoff_seconds=-0.1),
            dict(backoff_factor=0.5),
            dict(jitter=1.5),
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(SweepError):
            SupervisorPolicy(**kwargs)

    def test_retry_delays_are_seeded(self):
        import random

        policy = SupervisorPolicy(
            backoff_seconds=0.5, backoff_factor=2.0, jitter=0.5,
            retry_seed=42,
        )
        a = [policy.retry_delay(n, random.Random(42)) for n in (1, 2, 3)]
        b = [policy.retry_delay(n, random.Random(42)) for n in (1, 2, 3)]
        assert a == b

    def test_policy_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TIMEOUT", raising=False)
        monkeypatch.delenv("REPRO_MAX_ATTEMPTS", raising=False)
        assert policy_from_env() is None
        monkeypatch.setenv("REPRO_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "5")
        policy = policy_from_env()
        assert policy == SupervisorPolicy(timeout=2.5, max_attempts=5)
        monkeypatch.setenv("REPRO_TIMEOUT", "soon")
        with pytest.raises(SweepError):
            policy_from_env()


class TestChaosParsing:
    def test_parse_full_syntax(self):
        spec = parse_chaos_spec("HEF@4AC/*:crash:2, Molen@*:hang")
        assert spec.entries == (
            ChaosEntry(pattern="HEF@4AC/*", mode="crash", attempts=2),
            ChaosEntry(pattern="Molen@*", mode="hang", attempts=None),
        )

    def test_attempt_bound_limits_matches(self):
        from repro.exec import SweepCell

        entry = ChaosEntry(pattern="*", mode="raise", attempts=2)
        cell = SweepCell(
            system="Software", num_acs=0,
            workload=WorkloadSpec(frames=1, seed=1),
        )
        assert entry.matches(cell, 1)
        assert entry.matches(cell, 2)
        assert not entry.matches(cell, 3)

    @pytest.mark.parametrize(
        "text",
        ["bogus", "x:explode", ":hang", "a:crash:0"],
    )
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(SweepError):
            parse_chaos_spec(text)

    def test_empty_spec_is_falsy(self):
        assert not ChaosSpec()
        assert not parse_chaos_spec("  ,  ")
