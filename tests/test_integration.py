"""End-to-end integration tests across all subsystems."""

import pytest

from repro import (
    ASFScheduler,
    EncoderConfig,
    ExecutionMonitor,
    FSFRScheduler,
    H264SubsetEncoder,
    HEFScheduler,
    MolenSimulator,
    RisppSimulator,
    SJFScheduler,
    SyntheticVideo,
    generate_workload,
    simulate_software,
)


@pytest.fixture(scope="module")
def platform(h264_library, h264_registry):
    return h264_library, h264_registry


@pytest.fixture(scope="module")
def workload():
    return generate_workload(num_frames=5, seed=21)


@pytest.fixture(scope="module")
def all_results(platform, workload):
    library, registry = platform
    results = {}
    for cls in (ASFScheduler, FSFRScheduler, SJFScheduler, HEFScheduler):
        sim = RisppSimulator(
            library, registry, cls(), num_acs=13,
            validate_schedules=True,
        )
        results[cls.name] = sim.run(workload)
    results["Molen"] = MolenSimulator(library, registry, 13).run(workload)
    results["Software"] = simulate_software(library, workload)
    return results


class TestHeadlineClaims:
    def test_hef_best_scheduler(self, all_results):
        hef = all_results["HEF"].total_cycles
        for name in ("ASF", "FSFR", "SJF"):
            assert hef <= all_results[name].total_cycles * 1.01

    def test_hef_beats_molen(self, all_results):
        assert (
            all_results["HEF"].total_cycles
            < all_results["Molen"].total_cycles
        )

    def test_everything_beats_software(self, all_results):
        software = all_results["Software"].total_cycles
        for name, result in all_results.items():
            if name != "Software":
                assert result.total_cycles < software

    def test_all_systems_execute_identical_si_counts(self, all_results):
        reference = all_results["Software"].si_executions
        for result in all_results.values():
            assert result.si_executions == reference

    def test_consistent_frame_count(self, all_results, workload):
        for result in all_results.values():
            assert len(result.per_frame_cycles) == workload.num_frames

    def test_per_frame_cycles_sum_to_total(self, all_results):
        for result in all_results.values():
            assert sum(result.per_frame_cycles) == result.total_cycles


class TestSteadyState:
    def test_flat_content_reaches_periodic_steady_state(self, platform):
        """With content variation disabled every frame carries the same
        counts; once the monitor converged, frame times repeat exactly
        (the system is deterministic and memoryless beyond the monitor)."""
        library, registry = platform
        from repro.workload.model import H264WorkloadModel

        workload = H264WorkloadModel(
            num_frames=8, seed=1, activity_amplitude=0.0,
            scene_cut_frame=-1,
        ).generate()
        sim = RisppSimulator(library, registry, HEFScheduler(), num_acs=13)
        result = sim.run(workload)
        tail = result.per_frame_cycles[4:]
        # Residual variation comes only from the small random intra-MB
        # fraction; frame times settle into a narrow band.
        assert max(tail) - min(tail) < 0.02 * min(tail)


class TestEncoderToSimulatorPipeline:
    @pytest.fixture(scope="class")
    def encoded(self):
        video = SyntheticVideo(
            width=96, height=96, num_frames=4, seed=13, num_objects=2
        )
        return H264SubsetEncoder(EncoderConfig()).encode(
            video.all_frames()
        )

    def test_full_pipeline(self, platform, encoded):
        library, registry = platform
        sim = RisppSimulator(
            library, registry, HEFScheduler(), num_acs=10,
            validate_schedules=True,
        )
        result = sim.run(encoded.workload)
        software = simulate_software(library, encoded.workload)
        assert result.total_cycles < software.total_cycles
        assert result.si_executions == encoded.workload.totals()

    def test_encoder_and_model_have_same_structure(
        self, encoded, workload
    ):
        """The functional encoder and the statistical model emit
        interchangeable traces (same hot spots, same SI columns)."""
        enc_by_hs = {
            t.hot_spot: t.si_names for t in encoded.workload.traces[:3]
        }
        model_by_hs = {
            t.hot_spot: t.si_names for t in workload.traces[:3]
        }
        assert enc_by_hs == model_by_hs


class TestMonitorInTheLoop:
    def test_prediction_error_decreases(self, platform):
        library, registry = platform
        workload = generate_workload(num_frames=8, seed=3)
        monitor = ExecutionMonitor(alpha=0.5, default_estimate=100.0)
        sim = RisppSimulator(
            library, registry, HEFScheduler(), num_acs=10,
            monitor=monitor,
        )
        sim.run(workload)
        stats = monitor.stats("ME", "SAD")
        assert stats.num_updates == 8
        # After convergence the relative error is small (activity noise).
        assert stats.relative_error < 0.5

    def test_capacity_never_exceeded(self, platform):
        """The fabric never holds more atoms than ACs at any point."""
        library, registry = platform
        workload = generate_workload(num_frames=3, seed=4)
        for num_acs in (5, 9, 16):
            sim = RisppSimulator(
                library, registry, HEFScheduler(), num_acs
            )
            sim.run(workload)
            loaded = sum(
                1 for c in sim.fabric.containers if not c.is_empty
            )
            assert loaded <= num_acs


class TestDeterminismAcrossRuns:
    def test_whole_experiment_deterministic(self, platform):
        library, registry = platform
        workload = generate_workload(num_frames=3, seed=77)
        totals = {
            RisppSimulator(
                library, registry, HEFScheduler(), num_acs=11
            ).run(workload).total_cycles
            for _ in range(3)
        }
        assert len(totals) == 1
