"""Tests for the four paper schedulers and the shared machinery."""

import pytest

from repro import (
    ASFScheduler,
    FSFRScheduler,
    HEFScheduler,
    InvalidScheduleError,
    LookaheadScheduler,
    RandomScheduler,
    SJFScheduler,
    available_schedulers,
    get_scheduler,
    validate_schedule,
)
from repro.core.schedulers.base import SchedulerState

ALL_SCHEDULERS = [
    FSFRScheduler,
    ASFScheduler,
    SJFScheduler,
    HEFScheduler,
    LookaheadScheduler,
    RandomScheduler,
]


@pytest.fixture
def sis(toy_library):
    return {si.name: si for si in toy_library}


@pytest.fixture
def selection(toy_library):
    return {
        "SI1": toy_library.get("SI1").molecule("m3"),
        "SI2": toy_library.get("SI2").molecule("n3"),
    }


@pytest.fixture
def expected():
    return {"SI1": 1000.0, "SI2": 200.0}


class TestRegistry:
    def test_all_registered(self):
        names = available_schedulers()
        for expected_name in ("FSFR", "ASF", "SJF", "HEF", "LOOKAHEAD",
                              "RANDOM"):
            assert expected_name in names

    def test_get_scheduler_case_insensitive(self):
        assert isinstance(get_scheduler("hef"), HEFScheduler)

    def test_get_scheduler_unknown(self):
        with pytest.raises(KeyError):
            get_scheduler("nope")

    def test_get_scheduler_with_kwargs(self):
        sched = get_scheduler("LOOKAHEAD", beam_width=3)
        assert sched.beam_width == 3


class TestSchedulerState:
    def test_empty_selection_rejected(self, space, sis):
        with pytest.raises(InvalidScheduleError):
            SchedulerState({}, sis, space.zero(), {})

    def test_unknown_si_rejected(self, space, sis, selection):
        from repro import UnknownSpecialInstructionError

        bad = dict(selection)
        bad["NOPE"] = selection["SI1"]
        with pytest.raises(UnknownSpecialInstructionError):
            SchedulerState(bad, sis, space.zero(), {})

    def test_importance_weighs_execs_and_improvement(
        self, space, sis, selection, expected
    ):
        state = SchedulerState(selection, sis, space.zero(), expected)
        # SI1: 1000 * (1000 - 40); SI2: 200 * (600 - 35)
        assert state.importance("SI1") == 1000 * 960
        assert state.importance("SI2") == 200 * 565
        assert state.sis_by_importance() == ["SI1", "SI2"]

    def test_commit_updates_availability_and_latency(
        self, space, sis, selection, expected
    ):
        state = SchedulerState(selection, sis, space.zero(), expected)
        m1 = sis["SI1"].molecule("m1")
        state.commit(m1)
        assert state.available == m1.atoms
        assert state.best_latency["SI1"] == 400

    def test_commit_refreshes_cross_si_latency(
        self, space, sis, selection, expected
    ):
        # Loading SI1's m2 provides B2; SI2's n2=(B1,C1) still needs C,
        # but after loading SI2's n1=(C1), n2 is implicitly available.
        state = SchedulerState(selection, sis, space.zero(), expected)
        state.commit(sis["SI1"].molecule("m2"))
        state.commit(sis["SI2"].molecule("n1"))
        assert state.best_latency["SI2"] == 90  # n2, never committed

    def test_finalize_completes_selection(
        self, space, sis, selection, expected
    ):
        state = SchedulerState(selection, sis, space.zero(), expected)
        schedule = state.finalize()
        validate_schedule(schedule, selection)


@pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
class TestAllSchedulersSatisfyConditions:
    def test_cold_start_valid(
        self, scheduler_cls, space, sis, selection, expected
    ):
        schedule = scheduler_cls().schedule(
            selection, sis, space.zero(), expected
        )
        validate_schedule(schedule, selection)

    def test_warm_start_valid(
        self, scheduler_cls, space, sis, selection, expected
    ):
        available = space.molecule({"A": 1, "B": 3})
        schedule = scheduler_cls().schedule(
            selection, sis, available, expected
        )
        validate_schedule(schedule, selection, available)

    def test_fully_loaded_schedules_nothing(
        self, scheduler_cls, space, sis, selection, expected
    ):
        available = space.molecule({"A": 4, "B": 4, "C": 2})
        schedule = scheduler_cls().schedule(
            selection, sis, available, expected
        )
        assert len(schedule) == 0

    def test_zero_expectation_still_completes(
        self, scheduler_cls, space, sis, selection
    ):
        schedule = scheduler_cls().schedule(
            selection, sis, space.zero(), {"SI1": 0.0, "SI2": 0.0}
        )
        validate_schedule(schedule, selection)

    def test_nonimproving_selection_still_completes(
        self, scheduler_cls, space, sis, toy_library
    ):
        # m2 (latency 120) is already fully available and the selection
        # asks for the slower m4 (latency 150): equation (4) cleans away
        # every candidate, so the only way to satisfy condition (2) is
        # to commit the selected molecule directly.
        selection = {"SI1": toy_library.get("SI1").molecule("m4")}
        available = space.molecule({"A": 2, "B": 2})
        schedule = scheduler_cls().schedule(
            selection, sis, available, {"SI1": 100.0}
        )
        validate_schedule(schedule, selection, available)
        assert schedule.loaded_molecule() == space.molecule({"B": 1})

    def test_latency_never_increases_along_steps(
        self, scheduler_cls, space, sis, selection, expected
    ):
        schedule = scheduler_cls().schedule(
            selection, sis, space.zero(), expected
        )
        per_si = {}
        for step in schedule.steps:
            prev = per_si.get(step.impl.si_name)
            if prev is not None:
                assert step.impl.latency <= prev
            per_si[step.impl.si_name] = step.impl.latency


class TestFSFR:
    def test_most_important_si_first(self, space, sis, selection, expected):
        schedule = FSFRScheduler().schedule(
            selection, sis, space.zero(), expected
        )
        si_order = [s.impl.si_name for s in schedule.steps]
        # All SI1 steps strictly before any SI2 step.
        first_si2 = si_order.index("SI2")
        assert all(name == "SI1" for name in si_order[:first_si2])
        assert all(name == "SI2" for name in si_order[first_si2:])

    def test_order_flips_with_expectations(self, space, sis, selection):
        schedule = FSFRScheduler().schedule(
            selection, sis, space.zero(), {"SI1": 1.0, "SI2": 10_000.0}
        )
        assert schedule.steps[0].impl.si_name == "SI2"


class TestASF:
    def test_every_si_accelerated_before_deepening(
        self, space, sis, selection, expected
    ):
        schedule = ASFScheduler().schedule(
            selection, sis, space.zero(), expected
        )
        seen = []
        for step in schedule.steps:
            if step.impl.si_name not in seen:
                seen.append(step.impl.si_name)
            if len(seen) == 2:
                break
        # Both SIs appear within the first two steps (one molecule each).
        assert set(s.impl.si_name for s in schedule.steps[:2]) == {
            "SI1",
            "SI2",
        }

    def test_phase1_smallest_first(self, space, sis, selection, expected):
        schedule = ASFScheduler().schedule(
            selection, sis, space.zero(), expected
        )
        # SI1's smallest molecule (m1, one atom) beats SI2's (n1).
        first = schedule.steps[0].impl
        assert (first.si_name, first.name) == ("SI1", "m1")


class TestSJF:
    def test_globally_smallest_steps_after_phase1(
        self, space, sis, selection, expected
    ):
        schedule = SJFScheduler().schedule(
            selection, sis, space.zero(), expected
        )
        validate_schedule(schedule, selection)
        # Phase 2 steps never load more atoms than necessary for the
        # currently smallest remaining upgrade.
        assert schedule.steps[0].impl.name == "m1"


class TestHEF:
    def test_prefers_high_benefit_first(self, space, sis, selection):
        # Make SI2 overwhelmingly more executed: its molecules win the
        # benefit comparison despite smaller absolute improvements.
        schedule = HEFScheduler().schedule(
            selection, sis, space.zero(), {"SI1": 1.0, "SI2": 100000.0}
        )
        assert schedule.steps[0].impl.si_name == "SI2"

    def test_interleaves_sis(self, space, sis, selection):
        # With comparable weights HEF switches between SIs as benefits
        # dictate instead of finishing one SI first.
        schedule = HEFScheduler().schedule(
            selection, sis, space.zero(), {"SI1": 900.0, "SI2": 1000.0}
        )
        order = [s.impl.si_name for s in schedule.steps]
        assert order.count("SI1") >= 1 and order.count("SI2") >= 1
        # Not strictly grouped like FSFR:
        first_si2 = order.index("SI2")
        assert "SI1" in order[first_si2:] or order[0] == "SI2"

    def test_nonpareto_candidate_chosen_when_cheaper(
        self, space, sis, toy_library
    ):
        # With a = (A1, B3): m4 = (1,3) needs 0 extra... it's available.
        # With a = (0, B3): m4 needs one atom vs m2 needing two.
        selection = {"SI1": toy_library.get("SI1").molecule("m3")}
        schedule = HEFScheduler().schedule(
            selection,
            sis,
            space.molecule({"B": 3}),
            {"SI1": 100.0},
        )
        assert schedule.steps[0].impl.name == "m4"


class TestLookahead:
    def test_never_worse_than_hef_on_toy(self, space, sis, selection,
                                         expected):
        # The beam search optimises the same cost surrogate HEF greedily
        # descends; with a wide beam it must be at least as good.
        def cost(schedule):
            total = 0.0
            lat = {"SI1": 1000, "SI2": 600}
            for step in schedule.steps:
                rate = sum(expected[s] * lat[s] for s in lat)
                total += step.num_loads * rate
                lat[step.impl.si_name] = min(
                    lat[step.impl.si_name], step.impl.latency
                )
            return total

        hef = HEFScheduler().schedule(selection, sis, space.zero(), expected)
        look = LookaheadScheduler(beam_width=64).schedule(
            selection, sis, space.zero(), expected
        )
        assert cost(look) <= cost(hef) + 1e-9

    def test_invalid_beam_width(self):
        with pytest.raises(ValueError):
            LookaheadScheduler(beam_width=0)

    def test_empty_beam_falls_back_to_direct_commit(
        self, space, sis, toy_library
    ):
        # Regression: with every candidate cleaned away the beam search
        # finishes without any steps; the scheduler used to return an
        # *empty* schedule here, silently violating condition (2).  The
        # fallback must load exactly the selected molecule's missing
        # atoms, in importance order.
        selection = {
            "SI1": toy_library.get("SI1").molecule("m4"),
            "SI2": toy_library.get("SI2").molecule("n2"),
        }
        # m2 (120 < m4's 150) and n3 (35 < n2's 90) already available:
        # neither selected molecule improves, both get cleaned.
        available = space.molecule({"A": 2, "B": 2, "C": 2})
        schedule = LookaheadScheduler().schedule(
            selection, sis, available, {"SI1": 10.0, "SI2": 1000.0}
        )
        validate_schedule(schedule, selection, available)
        assert schedule.loaded_molecule() == space.molecule({"B": 1})
        # Only the incomplete selection entry (m4) needed a step; the
        # fully available n2 must not be re-scheduled.
        assert [s.impl.name for s in schedule.steps] == ["m4"]


class TestRandom:
    def test_deterministic_given_seed(self, space, sis, selection, expected):
        a = RandomScheduler(seed=7).schedule(
            selection, sis, space.zero(), expected
        )
        b = RandomScheduler(seed=7).schedule(
            selection, sis, space.zero(), expected
        )
        assert a.atom_sequence() == b.atom_sequence()

    def test_different_seeds_differ_eventually(
        self, space, sis, selection, expected
    ):
        sequences = {
            RandomScheduler(seed=s).schedule(
                selection, sis, space.zero(), expected
            ).atom_sequence()
            for s in range(8)
        }
        assert len(sequences) > 1

    def test_reseed(self, space, sis, selection, expected):
        sched = RandomScheduler(seed=1)
        first = sched.schedule(selection, sis, space.zero(), expected)
        sched.reseed(1)
        again = sched.schedule(selection, sis, space.zero(), expected)
        assert first.atom_sequence() == again.atom_sequence()
