"""Sweep-spec enumeration and cell-identity tests."""

import pytest

from repro.errors import SimulationError
from repro.exec import (
    SweepCell,
    SweepSpec,
    WorkloadSpec,
    canonical_json,
    cell_key,
)


def small_workload_spec(**kwargs):
    defaults = dict(frames=2, seed=2008)
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


class TestWorkloadSpec:
    def test_build_is_deterministic(self):
        a = small_workload_spec().build()
        b = small_workload_spec().build()
        assert a.name == b.name
        assert len(a) == len(b)
        assert a.totals() == b.totals()

    def test_hot_spot_filter(self):
        workload = small_workload_spec(hot_spots=("ME",)).build()
        assert workload.hot_spots == ("ME",)
        assert "-ME" in workload.name

    def test_max_traces_truncates(self):
        workload = small_workload_spec(max_traces=3).build()
        assert len(workload) == 3

    def test_figure2_subset(self):
        """The ME-only two-invocation subset Figure 2 replays."""
        workload = small_workload_spec(
            hot_spots=("ME",), max_traces=2
        ).build()
        assert len(workload) == 2
        assert all(t.hot_spot == "ME" for t in workload)

    def test_rejects_zero_frames(self):
        with pytest.raises(SimulationError):
            WorkloadSpec(frames=0)


class TestSweepCell:
    def test_rispp_needs_scheduler(self):
        with pytest.raises(SimulationError):
            SweepCell(
                system="RISPP", num_acs=5, workload=small_workload_spec()
            )

    def test_unknown_system_rejected(self):
        with pytest.raises(SimulationError):
            SweepCell(
                system="FPGA", num_acs=5, workload=small_workload_spec()
            )

    def test_fault_rate_bounds(self):
        with pytest.raises(SimulationError):
            SweepCell(
                system="Molen", num_acs=5,
                workload=small_workload_spec(), fault_rate=1.5,
            )

    def test_config_round_trips_through_canonical_json(self):
        cell = SweepCell(
            system="RISPP", scheduler="HEF", num_acs=7,
            workload=small_workload_spec(hot_spots=("ME", "EE")),
            fault_rate=0.25, fault_seed=11, max_retries=2,
        )
        import json

        parsed = json.loads(canonical_json(cell.to_config()))
        assert parsed == cell.to_config()

    def test_key_distinguishes_every_config_field(self):
        base = dict(
            system="RISPP", scheduler="HEF", num_acs=7,
            workload=small_workload_spec(),
        )
        reference = cell_key(SweepCell(**base))
        variants = [
            dict(base, scheduler="SJF"),
            dict(base, num_acs=8),
            dict(base, workload=small_workload_spec(frames=3)),
            dict(base, workload=small_workload_spec(seed=1)),
            dict(base, record_segments=True),
            dict(base, fault_rate=0.1),
            dict(base, fault_seed=1),
            dict(base, max_retries=1),
        ]
        keys = {cell_key(SweepCell(**variant)) for variant in variants}
        assert reference not in keys
        assert len(keys) == len(variants)

    def test_equal_cells_share_a_key(self):
        a = SweepCell(
            system="Molen", num_acs=5, workload=small_workload_spec()
        )
        b = SweepCell(
            system="Molen", num_acs=5, workload=small_workload_spec()
        )
        assert a == b
        assert cell_key(a) == cell_key(b)


class TestSweepSpec:
    def test_grid_size(self):
        spec = SweepSpec(
            schedulers=("HEF", "SJF", "ASF"),
            ac_counts=(5, 10),
            workload=small_workload_spec(),
            include_molen=True,
            include_software=True,
        )
        # 3 schedulers x 2 AC counts + 2 Molen + 1 software.
        assert len(spec) == 3 * 2 + 2 + 1

    def test_enumeration_order_is_ac_outermost(self):
        spec = SweepSpec(
            schedulers=("HEF", "SJF"),
            ac_counts=(5, 10),
            workload=small_workload_spec(),
            include_molen=True,
        )
        labels = [c.label for c in spec.cells()]
        assert labels == [
            "HEF@5AC/2f", "SJF@5AC/2f", "Molen@5AC/2f",
            "HEF@10AC/2f", "SJF@10AC/2f", "Molen@10AC/2f",
        ]

    def test_cells_are_unique(self):
        spec = SweepSpec(
            schedulers=("HEF", "SJF"),
            ac_counts=(5, 10, 15),
            workload=small_workload_spec(),
            include_molen=True,
            include_software=True,
        )
        cells = spec.cells()
        assert len(set(cells)) == len(cells)

    def test_fault_config_propagates(self):
        spec = SweepSpec(
            schedulers=("HEF",),
            ac_counts=(5,),
            workload=small_workload_spec(),
            fault_rate=0.2, fault_seed=7, max_retries=1,
            include_molen=True,
        )
        for cell in spec.cells():
            assert cell.fault_rate == 0.2
            assert cell.fault_seed == 7
            assert cell.max_retries == 1
