"""Tests for the run-breakdown statistics and workload serialisation."""

import numpy as np
import pytest

from repro import (
    HEFScheduler,
    MolenSimulator,
    RisppSimulator,
    SimulationError,
    TraceError,
    Workload,
    analyse_run,
    load_workload,
    save_workload,
    simulate_software,
)


@pytest.fixture(scope="module")
def recorded_run(h264_library, h264_registry, small_workload):
    sim = RisppSimulator(
        h264_library, h264_registry, HEFScheduler(), num_acs=10,
        record_segments=True,
    )
    return sim.run(small_workload)


class TestBreakdown:
    def test_requires_segments(self, h264_library, h264_registry,
                               small_workload):
        sim = RisppSimulator(
            h264_library, h264_registry, HEFScheduler(), num_acs=10
        )
        result = sim.run(small_workload)
        with pytest.raises(SimulationError):
            analyse_run(result, h264_library)

    def test_executions_partition(self, recorded_run, h264_library,
                                  small_workload):
        breakdown = analyse_run(recorded_run, h264_library)
        totals = small_workload.totals()
        for name, entry in breakdown.per_si.items():
            assert entry.total_executions == totals[name]

    def test_cycle_accounting_consistent(self, recorded_run, h264_library):
        breakdown = analyse_run(recorded_run, h264_library)
        assert (
            breakdown.si_cycles + breakdown.overhead_cycles
            == recorded_run.total_cycles
        )

    def test_port_utilisation_bounded(self, recorded_run, h264_library):
        breakdown = analyse_run(recorded_run, h264_library)
        assert 0.0 < breakdown.port_utilisation <= 1.0

    def test_software_fraction_in_range(self, recorded_run, h264_library):
        breakdown = analyse_run(recorded_run, h264_library)
        assert 0.0 <= breakdown.software_cycle_fraction < 1.0

    def test_molen_has_more_software_cycles(
        self, h264_library, h264_registry, small_workload, recorded_run
    ):
        """The architectural claim, quantified: a Molen-like system burns
        a larger share of its SI cycles on the trap path."""
        molen = MolenSimulator(
            h264_library, h264_registry, 10, record_segments=True
        ).run(small_workload)
        molen_breakdown = analyse_run(molen, h264_library)
        rispp_breakdown = analyse_run(recorded_run, h264_library)
        assert (
            molen_breakdown.software_cycle_fraction
            > rispp_breakdown.software_cycle_fraction
        )

    def test_summary_text(self, recorded_run, h264_library):
        text = analyse_run(recorded_run, h264_library).summary()
        assert "reconfiguration port busy" in text
        assert "SAD" in text


class TestWorkloadIO:
    def test_roundtrip(self, tmp_path, small_workload):
        path = tmp_path / "workload.npz"
        save_workload(small_workload, path)
        loaded = load_workload(path)
        assert loaded.name == small_workload.name
        assert len(loaded) == len(small_workload)
        for a, b in zip(small_workload, loaded):
            assert a.hot_spot == b.hot_spot
            assert a.si_names == b.si_names
            assert a.frame_index == b.frame_index
            assert a.overhead_per_iteration == b.overhead_per_iteration
            assert (a.counts == b.counts).all()

    def test_replay_after_roundtrip(
        self, tmp_path, h264_library, small_workload
    ):
        path = tmp_path / "workload.npz"
        save_workload(small_workload, path)
        loaded = load_workload(path)
        a = simulate_software(h264_library, small_workload)
        b = simulate_software(h264_library, loaded)
        assert a.total_cycles == b.total_cycles

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_workload(tmp_path / "nope.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(TraceError):
            load_workload(path)

    def test_empty_workload_roundtrip(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_workload(Workload("empty"), path)
        loaded = load_workload(path)
        assert loaded.name == "empty"
        assert len(loaded) == 0
