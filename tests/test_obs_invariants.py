"""Property tests of the recorded event streams.

Whatever the platform, workload, scheduler or AC budget, a recorded run
must satisfy the structural invariants of the modelled hardware:

* the serial reconfiguration bus never loads two atoms concurrently,
* every completion was preceded by a matching load start,
* within one scheduler decision, each SI's planned latency only improves,
* the event log is non-decreasing in cycle time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RecordingTracer, generate_workload
from repro.core.schedulers import PAPER_SCHEDULERS, get_scheduler
from repro.obs.events import (
    LoadComplete,
    LoadFailed,
    LoadStart,
    SchedulerDecision,
)
from repro.sim.rispp import RisppSimulator


runs = st.fixed_dictionaries(
    {
        "scheduler": st.sampled_from(PAPER_SCHEDULERS),
        "num_acs": st.integers(min_value=1, max_value=12),
        "frames": st.integers(min_value=1, max_value=2),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
    }
)


def _record_run(h264_library, h264_registry, params):
    tracer = RecordingTracer()
    sim = RisppSimulator(
        h264_library,
        h264_registry,
        get_scheduler(params["scheduler"]),
        params["num_acs"],
        tracer=tracer,
    )
    workload = generate_workload(
        num_frames=params["frames"], seed=params["seed"]
    )
    sim.run(workload)
    return list(tracer)


@settings(max_examples=15, deadline=None)
@given(params=runs)
def test_bus_is_serial(h264_library, h264_registry, params):
    """A load may only start once the previous one left the bus."""
    events = _record_run(h264_library, h264_registry, params)
    previous_completion = None
    for event in events:
        if isinstance(event, LoadStart):
            if previous_completion is not None:
                assert event.cycle >= previous_completion
            previous_completion = event.expected_completion


@settings(max_examples=15, deadline=None)
@given(params=runs)
def test_every_completion_has_a_matching_start(
    h264_library, h264_registry, params
):
    events = _record_run(h264_library, h264_registry, params)
    in_flight = None
    completions = 0
    for event in events:
        if isinstance(event, LoadStart):
            in_flight = event
        elif isinstance(event, (LoadComplete, LoadFailed)):
            assert in_flight is not None
            assert event.atom_type == in_flight.atom_type
            assert event.container_index == in_flight.container_index
            if isinstance(event, LoadComplete):
                assert event.cycle == in_flight.expected_completion
                completions += 1
            in_flight = None
    assert completions > 0 or params["num_acs"] == 0


@settings(max_examples=15, deadline=None)
@given(params=runs)
def test_decision_upgrades_are_monotone(h264_library, h264_registry, params):
    """Per SI, a decision's upgrade ladder only improves the latency,
    and no step plans a regression past its starting point."""
    events = _record_run(h264_library, h264_registry, params)
    decisions = [e for e in events if isinstance(e, SchedulerDecision)]
    assert decisions, "every hot-spot entry records a decision"
    for decision in decisions:
        best = {}
        for step in decision.steps:
            assert step.latency_after <= step.latency_before
            assert step.num_loads >= 1
            assert step.benefit_den >= 1
            if step.si_name in best:
                assert step.latency_after <= best[step.si_name]
            best[step.si_name] = step.latency_after


@settings(max_examples=15, deadline=None)
@given(params=runs)
def test_events_are_time_ordered(h264_library, h264_registry, params):
    events = _record_run(h264_library, h264_registry, params)
    cycles = [event.cycle for event in events]
    assert cycles == sorted(cycles)
    assert all(cycle >= 0 for cycle in cycles)
