"""Tests for the serial reconfiguration port."""

import pytest

from repro import AtomRegistry, AtomType, Fabric, ReconfigPort


@pytest.fixture
def platform():
    registry = AtomRegistry(
        [
            AtomType("A", bitstream_bytes=660),   # 1000 cycles
            AtomType("B", bitstream_bytes=1320),  # 2000 cycles
            AtomType("C", bitstream_bytes=660),
        ]
    )
    fabric = Fabric(registry, 4)
    return registry, fabric, ReconfigPort(fabric)


class TestSerialLoading:
    def test_one_atom_in_flight(self, platform):
        registry, fabric, port = platform
        port.replace_queue(["A", "B"], fabric.space.zero(), now=0)
        assert fabric.in_flight() == "A"
        assert port.pending_count == 1

    def test_completion_timing(self, platform):
        registry, fabric, port = platform
        port.replace_queue(["A", "B"], fabric.space.zero(), now=0)
        assert port.next_completion() == 1000
        events = port.advance_to(1000)
        assert len(events) == 1
        assert events[0].atom_type == "A"
        assert events[0].cycle == 1000

    def test_back_to_back_loads(self, platform):
        registry, fabric, port = platform
        port.replace_queue(["A", "B"], fabric.space.zero(), now=0)
        events = port.advance_to(10_000)
        assert [e.cycle for e in events] == [1000, 3000]
        assert port.is_idle

    def test_advance_is_incremental(self, platform):
        registry, fabric, port = platform
        port.replace_queue(["A", "B", "C"], fabric.space.zero(), now=0)
        assert len(port.advance_to(2999)) == 1
        assert len(port.advance_to(4000)) == 2

    def test_availability_follows_completions(self, platform):
        registry, fabric, port = platform
        port.replace_queue(["A", "B"], fabric.space.zero(), now=0)
        port.advance_to(1000)
        assert fabric.available() == fabric.space.unit("A")

    def test_statistics(self, platform):
        registry, fabric, port = platform
        port.replace_queue(["A", "B", "C"], fabric.space.zero(), now=0)
        port.drain()
        assert port.loads_started == 3
        assert port.loads_completed == 3


class TestQueueReplacement:
    def test_pending_dropped_in_flight_completes(self, platform):
        registry, fabric, port = platform
        space = fabric.space
        port.replace_queue(["A", "B", "C"], space.zero(), now=0)
        # Hot-spot switch at cycle 500: A is in flight, B/C pending.
        port.replace_queue(["C"], space.unit("C"), now=500)
        events = port.drain()
        types = [e.atom_type for e in events]
        assert types == ["A", "C"]  # B was dropped, A completed anyway

    def test_enqueue_appends(self, platform):
        registry, fabric, port = platform
        port.replace_queue(["A"], fabric.space.zero(), now=0)
        port.enqueue(["B"], now=0)
        events = port.drain()
        assert [e.atom_type for e in events] == ["A", "B"]

    def test_idle_port_starts_immediately(self, platform):
        registry, fabric, port = platform
        assert port.is_idle
        port.replace_queue(["B"], fabric.space.zero(), now=100)
        assert port.next_completion() == 2100

    def test_empty_queue_replace(self, platform):
        registry, fabric, port = platform
        port.replace_queue([], fabric.space.zero(), now=0)
        assert port.is_idle
        assert port.next_completion() is None


class TestEvictionIntegration:
    def test_port_evicts_via_retained_set(self, platform):
        registry, _, _ = platform
        fabric = Fabric(registry, 2)
        port = ReconfigPort(fabric)
        space = fabric.space
        port.replace_queue(["A", "B"], space.molecule({"A": 1, "B": 1}),
                           now=0)
        port.drain()
        # New plan needs two Cs; A and B are stale.
        port.replace_queue(
            ["C", "C"], space.molecule({"C": 2}), now=5000
        )
        port.drain()
        assert fabric.occupancy() == {"C": 2}
        assert fabric.num_evictions == 2
