"""Tests for the base-processor cost model."""

import pytest

from repro import BaseProcessor, CalibrationError, MoleculeImpl


class TestBaseProcessor:
    def test_software_pays_trap(self, space):
        proc = BaseProcessor(trap_overhead=24)
        sw = MoleculeImpl("SI", "software", space.zero(), 100)
        assert proc.si_execution_cycles(sw) == 124

    def test_hardware_pays_no_trap(self, space):
        proc = BaseProcessor(trap_overhead=24)
        hw = MoleculeImpl("SI", "m", space.molecule({"A": 1}), 40)
        assert proc.si_execution_cycles(hw) == 40

    def test_effective_latency_raw(self):
        proc = BaseProcessor(trap_overhead=10)
        assert proc.effective_latency(100, True) == 110
        assert proc.effective_latency(100, False) == 100

    def test_iteration_cycles(self):
        proc = BaseProcessor(trap_overhead=10)
        cycles = proc.iteration_cycles(
            si_counts={"X": 3, "Y": 1},
            latencies={"X": 100, "Y": 50},
            software={"X": True, "Y": False},
            overhead=7,
        )
        assert cycles == 7 + 3 * 110 + 50

    def test_validation(self):
        with pytest.raises(CalibrationError):
            BaseProcessor(trap_overhead=-1)
        with pytest.raises(CalibrationError):
            BaseProcessor(hot_spot_entry_overhead=-1)
