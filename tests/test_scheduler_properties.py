"""Property-based scheduler tests: every strategy must produce a valid
schedule (conditions (1)+(2)) on randomly generated SI libraries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AtomSpace,
    MoleculeImpl,
    SpecialInstruction,
    get_scheduler,
    validate_schedule,
)

SPACE = AtomSpace(["A", "B", "C", "D"])


@st.composite
def random_si(draw, name):
    """An SI with 1-4 hardware molecules over a random atom subset."""
    software = draw(st.integers(min_value=200, max_value=2000))
    num_molecules = draw(st.integers(min_value=1, max_value=4))
    molecules = []
    seen_vectors = set()
    latency = software
    for i in range(num_molecules):
        counts = tuple(
            draw(st.integers(min_value=0, max_value=3))
            for _ in range(SPACE.size)
        )
        if sum(counts) == 0 or counts in seen_vectors:
            continue
        seen_vectors.add(counts)
        latency = draw(st.integers(min_value=5, max_value=latency - 1))
        molecules.append(
            MoleculeImpl(name, f"m{i}", SPACE.molecule(counts), latency)
        )
        if latency <= 6:
            break
    if not molecules:
        molecules.append(
            MoleculeImpl(name, "m0", SPACE.molecule((1, 0, 0, 0)),
                         software // 2)
        )
    return SpecialInstruction(name, SPACE, software, molecules)


@st.composite
def scheduling_problem(draw):
    num_sis = draw(st.integers(min_value=1, max_value=3))
    sis = {}
    selection = {}
    expected = {}
    for i in range(num_sis):
        name = f"SI{i}"
        si = draw(random_si(name))
        sis[name] = si
        # Select any hardware molecule.
        index = draw(
            st.integers(min_value=0, max_value=len(si.molecules) - 1)
        )
        selection[name] = si.molecules[index]
        expected[name] = float(draw(st.integers(min_value=0, max_value=5000)))
    available_counts = tuple(
        draw(st.integers(min_value=0, max_value=2))
        for _ in range(SPACE.size)
    )
    available = SPACE.molecule(available_counts)
    return sis, selection, expected, available


@settings(max_examples=60, deadline=None)
@given(scheduling_problem(), st.sampled_from(["FSFR", "ASF", "SJF", "HEF"]))
def test_paper_schedulers_always_valid(problem, scheduler_name):
    sis, selection, expected, available = problem
    schedule = get_scheduler(scheduler_name).schedule(
        selection, sis, available, expected
    )
    validate_schedule(schedule, selection, available)


@settings(max_examples=30, deadline=None)
@given(scheduling_problem())
def test_lookahead_always_valid(problem):
    sis, selection, expected, available = problem
    schedule = get_scheduler("LOOKAHEAD", beam_width=4).schedule(
        selection, sis, available, expected
    )
    validate_schedule(schedule, selection, available)


@settings(max_examples=30, deadline=None)
@given(scheduling_problem(), st.integers(min_value=0, max_value=99))
def test_random_scheduler_always_valid(problem, seed):
    sis, selection, expected, available = problem
    schedule = get_scheduler("RANDOM", seed=seed).schedule(
        selection, sis, available, expected
    )
    validate_schedule(schedule, selection, available)


@settings(max_examples=40, deadline=None)
@given(scheduling_problem())
def test_schedules_load_each_atom_once(problem):
    """Condition (2) in multiset form: no atom loaded twice."""
    sis, selection, expected, available = problem
    schedule = get_scheduler("HEF").schedule(
        selection, sis, available, expected
    )
    from repro import sup

    target = sup([impl.atoms for impl in selection.values()], SPACE)
    required = available.missing(target)
    assert schedule.loaded_molecule() == required


@settings(max_examples=40, deadline=None)
@given(scheduling_problem())
def test_effective_latency_never_increases(problem):
    """The best reachable latency per SI is non-increasing along the
    schedule.  (A single *step* may target a slower molecule — the
    finalisation commits the selected molecule even when a smaller
    implicitly-available one is faster, to satisfy condition (2) — but
    the SI never gets slower by it.)"""
    sis, selection, expected, available = problem
    schedule = get_scheduler("HEF").schedule(
        selection, sis, available, expected
    )
    best = {}
    for step in schedule.steps:
        si_name = step.impl.si_name
        effective = min(step.impl.latency, step.latency_before)
        if si_name in best:
            assert effective <= best[si_name]
        best[si_name] = min(best.get(si_name, effective), effective)
