"""Tests for trace structures and the statistical workload model."""

import numpy as np
import pytest

from repro import HotSpotTrace, TraceError, Workload
from repro.workload.model import H264WorkloadModel
from repro.calibration import ME_SI_EXECUTIONS_PER_FRAME


class TestHotSpotTrace:
    def make(self, counts, names=("X", "Y")):
        return HotSpotTrace(
            hot_spot="HS",
            si_names=names,
            counts=np.asarray(counts),
            overhead_per_iteration=10,
            frame_index=0,
        )

    def test_totals(self):
        trace = self.make([[1, 2], [3, 4]])
        assert trace.totals() == {"X": 4, "Y": 6}
        assert trace.total_executions() == 10
        assert trace.iterations == 2

    def test_software_cycles(self):
        trace = self.make([[1, 2], [3, 4]])
        cycles = trace.software_cycles({"X": 100, "Y": 10}, trap_overhead=1)
        # overhead 2*10 + X: 4*101 + Y: 6*11
        assert cycles == 20 + 404 + 66

    def test_shape_validation(self):
        with pytest.raises(TraceError):
            self.make([1, 2])  # 1-D
        with pytest.raises(TraceError):
            self.make([[1, 2, 3]])  # wrong column count

    def test_negative_counts_rejected(self):
        with pytest.raises(TraceError):
            self.make([[1, -1]])

    def test_duplicate_si_names_rejected(self):
        with pytest.raises(TraceError):
            self.make([[1, 2]], names=("X", "X"))

    def test_negative_overhead_rejected(self):
        with pytest.raises(TraceError):
            HotSpotTrace("HS", ("X",), np.ones((1, 1)),
                         overhead_per_iteration=-1)


class TestWorkload:
    def test_frame_grouping(self):
        traces = [
            HotSpotTrace("ME", ("X",), np.ones((2, 1)), frame_index=0),
            HotSpotTrace("EE", ("X",), np.ones((2, 1)), frame_index=0),
            HotSpotTrace("ME", ("X",), np.ones((2, 1)), frame_index=1),
        ]
        workload = Workload("w", traces)
        frames = list(workload.frames())
        assert [len(f) for f in frames] == [2, 1]
        assert workload.num_frames == 2

    def test_subset_frames(self):
        traces = [
            HotSpotTrace("ME", ("X",), np.ones((2, 1)), frame_index=i)
            for i in range(5)
        ]
        sub = Workload("w", traces).subset_frames(2)
        assert sub.num_frames == 2

    def test_hot_spots_and_si_names_in_order(self):
        traces = [
            HotSpotTrace("ME", ("X",), np.ones((1, 1)), frame_index=0),
            HotSpotTrace("EE", ("Y", "Z"), np.ones((1, 2)), frame_index=0),
        ]
        workload = Workload("w", traces)
        assert workload.hot_spots == ("ME", "EE")
        assert workload.si_names == ("X", "Y", "Z")

    def test_empty_name_rejected(self):
        with pytest.raises(TraceError):
            Workload("")


class TestWorkloadModel:
    def test_deterministic_given_seed(self):
        a = H264WorkloadModel(num_frames=2, seed=5).generate()
        b = H264WorkloadModel(num_frames=2, seed=5).generate()
        for ta, tb in zip(a, b):
            assert (ta.counts == tb.counts).all()

    def test_different_seeds_differ(self):
        a = H264WorkloadModel(num_frames=2, seed=5).generate()
        b = H264WorkloadModel(num_frames=2, seed=6).generate()
        assert any(
            (ta.counts != tb.counts).any() for ta, tb in zip(a, b)
        )

    def test_structure_three_hot_spots_per_frame(self):
        workload = H264WorkloadModel(num_frames=3).generate()
        assert len(workload) == 9
        assert workload.hot_spots == ("ME", "EE", "LF")

    def test_me_executions_match_figure2(self):
        workload = H264WorkloadModel(num_frames=10).generate()
        me_total = 0
        for trace in workload:
            if trace.hot_spot == "ME":
                me_total += trace.total_executions()
        per_frame = me_total / 10
        assert abs(per_frame - ME_SI_EXECUTIONS_PER_FRAME) < (
            0.05 * ME_SI_EXECUTIONS_PER_FRAME
        )

    def test_intra_mbs_have_no_mc(self):
        workload = H264WorkloadModel(num_frames=2).generate()
        for trace in workload:
            if trace.hot_spot != "EE":
                continue
            mc_col = trace.si_names.index("MC")
            hdc_col = trace.si_names.index("IPredHDC")
            intra_rows = trace.counts[:, mc_col] == 0
            if intra_rows.any():
                # Intra macroblocks do double intra prediction.
                assert (trace.counts[intra_rows, hdc_col] >= 2).all()

    def test_scene_cut_changes_distribution(self):
        model = H264WorkloadModel(
            num_frames=4, seed=1, scene_cut_frame=2
        )
        workload = model.generate()
        me = [t for t in workload if t.hot_spot == "ME"]
        before = me[1].counts.sum()
        after = me[2].counts.sum()
        assert before != after

    def test_zero_amplitude_gives_flat_counts(self):
        model = H264WorkloadModel(
            num_frames=1, seed=1, activity_amplitude=0.0
        )
        workload = model.generate()
        me = next(t for t in workload if t.hot_spot == "ME")
        sad = me.counts[:, me.si_names.index("SAD")]
        assert (sad == sad[0]).all()

    def test_offline_profile_covers_all_hot_spots(self):
        model = H264WorkloadModel(num_frames=1)
        profile = model.offline_profile()
        assert set(profile) == {"ME", "EE", "LF"}
        assert profile["ME"]["SAD"] > 0

    def test_validation(self):
        with pytest.raises(TraceError):
            H264WorkloadModel(num_frames=0)
        with pytest.raises(TraceError):
            H264WorkloadModel(width=100)  # not MB aligned
        with pytest.raises(TraceError):
            H264WorkloadModel(activity_amplitude=1.5)
