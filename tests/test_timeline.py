"""Tests for the timeline binning and latency step extraction."""

import numpy as np
import pytest

from repro import LatencyEvent, Segment, SimulationError, bin_executions, latency_steps


def seg(t0, t1, executions, names=("X",), frame=0, hot_spot="HS"):
    return Segment(
        t0=t0,
        t1=t1,
        frame_index=frame,
        hot_spot=hot_spot,
        si_names=names,
        executions=executions,
        latencies=tuple(10 for _ in names),
    )


class TestBinning:
    def test_single_segment_single_bin(self):
        starts, matrix, names = bin_executions(
            [seg(0, 100, (50,))], window=100
        )
        assert names == ["X"]
        assert matrix[0, 0] == pytest.approx(50.0)

    def test_uniform_distribution_across_bins(self):
        starts, matrix, names = bin_executions(
            [seg(0, 200, (100,))], window=100
        )
        assert matrix[0].tolist() == pytest.approx([50.0, 50.0])

    def test_partial_overlap(self):
        # Segment covers [50, 150): half its executions in each bin.
        starts, matrix, names = bin_executions(
            [seg(50, 150, (100,))], window=100
        )
        assert matrix[0].tolist() == pytest.approx([50.0, 50.0])

    def test_total_preserved(self):
        segments = [seg(0, 130, (13,)), seg(130, 420, (29,))]
        _, matrix, _ = bin_executions(segments, window=100)
        assert matrix.sum() == pytest.approx(42.0)

    def test_multiple_sis(self):
        segments = [seg(0, 100, (10, 20), names=("X", "Y"))]
        _, matrix, names = bin_executions(segments, window=100)
        assert names == ["X", "Y"]
        assert matrix[1, 0] == pytest.approx(20.0)

    def test_si_filter_and_order(self):
        segments = [seg(0, 100, (10, 20), names=("X", "Y"))]
        _, matrix, names = bin_executions(
            segments, window=100, si_names=["Y"]
        )
        assert names == ["Y"]
        assert matrix.shape[0] == 1

    def test_end_cycle_extends_bins(self):
        starts, matrix, _ = bin_executions(
            [seg(0, 100, (10,))], window=100, end_cycle=500
        )
        assert len(starts) == 5
        assert matrix[0, 3] == 0.0

    def test_zero_duration_segment_ignored(self):
        starts, matrix, _ = bin_executions(
            [seg(100, 100, (5,)), seg(0, 100, (10,))], window=100
        )
        assert matrix.sum() == pytest.approx(10.0)

    def test_invalid_window(self):
        with pytest.raises(SimulationError):
            bin_executions([], window=0)


class TestLatencySteps:
    EVENTS = [
        LatencyEvent(cycle=0, si_name="X", latency=1000),
        LatencyEvent(cycle=50, si_name="Y", latency=700),
        LatencyEvent(cycle=100, si_name="X", latency=400),
        LatencyEvent(cycle=300, si_name="X", latency=40),
    ]

    def test_filters_by_si(self):
        cycles, lats = latency_steps(self.EVENTS, "X")
        assert cycles.tolist() == [0, 100, 300]
        assert lats.tolist() == [1000, 400, 40]

    def test_end_cycle_appends_final_point(self):
        cycles, lats = latency_steps(self.EVENTS, "X", end_cycle=1000)
        assert cycles[-1] == 1000
        assert lats[-1] == 40

    def test_unknown_si_empty(self):
        cycles, lats = latency_steps(self.EVENTS, "Z")
        assert len(cycles) == 0

    def test_monotone_cycles(self):
        cycles, _ = latency_steps(self.EVENTS, "X", end_cycle=500)
        assert (np.diff(cycles) >= 0).all()
