"""Tests for the scheduling-function formalism (eq. 1 and 2)."""

import pytest

from repro import (
    AtomLoad,
    InvalidScheduleError,
    MoleculeImpl,
    Schedule,
    validate_schedule,
)
from repro.core.schedule import UpgradeStep


@pytest.fixture
def impl(space):
    return MoleculeImpl("SI1", "m2", space.molecule({"A": 2, "B": 2}), 120)


class TestScheduleConstruction:
    def test_empty_schedule(self, space):
        schedule = Schedule(space)
        assert len(schedule) == 0
        assert schedule.loaded_molecule() == space.zero()
        assert bool(schedule)  # schedules are always truthy

    def test_append_step_records_loads(self, space, impl):
        schedule = Schedule(space)
        schedule.append_step(impl, impl.atoms, latency_before=1000)
        assert len(schedule) == 4
        assert schedule.loaded_molecule() == impl.atoms

    def test_append_step_annotates_loads(self, space, impl):
        schedule = Schedule(space)
        schedule.append_step(impl, impl.atoms, latency_before=1000)
        for load in schedule.loads:
            assert load.si_name == "SI1"
            assert load.molecule_name == "m2"

    def test_step_improvement(self, space, impl):
        schedule = Schedule(space)
        schedule.append_step(impl, impl.atoms, latency_before=1000)
        step = schedule.steps[0]
        assert step.improvement == 880
        assert step.num_loads == 4

    def test_empty_step_rejected(self, space, impl):
        schedule = Schedule(space)
        with pytest.raises(InvalidScheduleError):
            schedule.append_step(impl, space.zero(), latency_before=1000)

    def test_append_completion_unattributed(self, space):
        schedule = Schedule(space)
        schedule.append_completion(space.molecule({"C": 2}))
        assert len(schedule) == 2
        assert all(load.si_name is None for load in schedule.loads)

    def test_atom_sequence(self, space, impl):
        schedule = Schedule(space)
        schedule.append_step(impl, impl.atoms, latency_before=1000)
        assert schedule.atom_sequence() == ("A", "A", "B", "B")

    def test_availability_after(self, space, impl):
        schedule = Schedule(space)
        schedule.append_step(impl, impl.atoms, latency_before=1000)
        after2 = schedule.availability_after(space.zero(), 2)
        assert after2 == space.molecule({"A": 2})


class TestValidation:
    def test_valid_schedule_passes(self, space, impl):
        schedule = Schedule(space)
        schedule.append_step(impl, impl.atoms, latency_before=1000)
        validate_schedule(schedule, {"SI1": impl})

    def test_condition2_missing_atoms(self, space, impl):
        schedule = Schedule(space)  # loads nothing
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, {"SI1": impl})

    def test_condition2_extra_atoms(self, space, impl):
        schedule = Schedule(space)
        schedule.append_step(impl, impl.atoms, latency_before=1000)
        schedule.append_completion(space.molecule({"C": 1}))
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, {"SI1": impl})

    def test_initial_availability_reduces_requirement(self, space, impl):
        initial = space.molecule({"A": 2})
        schedule = Schedule(space)
        schedule.append_step(
            impl, initial.missing(impl.atoms), latency_before=1000
        )
        validate_schedule(schedule, {"SI1": impl}, initial)

    def test_step_annotation_consistency_checked(self, space, impl):
        # Claim m2 is available after loading only part of its atoms.
        schedule = Schedule(space)
        schedule._loads.extend(
            [AtomLoad("A"), AtomLoad("A"), AtomLoad("B"), AtomLoad("B")]
        )
        schedule._steps.append(
            UpgradeStep(impl=impl, first_load=0, last_load=1,
                        latency_before=1000)
        )
        with pytest.raises(InvalidScheduleError):
            validate_schedule(schedule, {"SI1": impl})

    def test_multi_si_shared_atoms(self, space, toy_library):
        # SI1's m2=(A2,B2) and SI2's n3=(B2,C2): sup = (2,2,2).
        si1 = toy_library.get("SI1")
        si2 = toy_library.get("SI2")
        selection = {"SI1": si1.molecule("m2"), "SI2": si2.molecule("n3")}
        schedule = Schedule(space)
        schedule.append_step(
            selection["SI1"], selection["SI1"].atoms, latency_before=1000
        )
        schedule.append_step(
            selection["SI2"],
            space.molecule({"C": 2}),  # B atoms shared with SI1
            latency_before=600,
        )
        validate_schedule(schedule, selection)
