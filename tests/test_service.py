"""Multi-tenant fabric arbitration service (:mod:`repro.service`).

Unit tests for the building blocks (tenant specs, token bucket, circuit
breaker, admission gates, fabric lease accounting, leased planning,
cache read-through) plus integration tests of the arbiter: overload
shedding taxonomy, the never-drop invariant, priority preemption,
degraded service under fault storms, answer reuse, and bit-identical
determinism of reruns — the overload soak of ISSUE 6's acceptance
criteria.
"""

from __future__ import annotations

import filecmp
import json

import pytest

from repro.core.runtime import RuntimeManager
from repro.core.schedulers import get_scheduler
from repro.errors import CapacityError, FabricError, ServiceError
from repro.exec.cache import ResultCache
from repro.exec.spec import WorkloadSpec
from repro.fabric.fabric import Fabric
from repro.h264.silibrary import HOT_SPOT_SIS
from repro.obs import RecordingTracer
from repro.obs.events import (
    BreakerTransition,
    DegradedServed,
    RequestCompleted,
    RequestShed,
)
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    PRIORITY_CLASSES,
    SHED_REASONS,
    AdmissionController,
    CircuitBreaker,
    ServiceConfig,
    TenantSpec,
    TokenBucket,
    generate_requests,
    make_tenant_fleet,
    run_service,
)


def small_fleet(num=8, mean_gap=60, deadline_slack=400):
    """An overloaded fleet: ~2x the 6-AC fabric's service capacity."""
    return make_tenant_fleet(
        num, mean_gap=mean_gap, deadline_slack=deadline_slack
    )


# -- tenant specs ----------------------------------------------------------


class TestTenantSpec:
    def test_fleet_is_deterministic(self):
        assert make_tenant_fleet(4) == make_tenant_fleet(4)

    def test_fleet_mixes_priorities(self):
        fleet = make_tenant_fleet(8)
        assert {t.priority for t in fleet} == set(PRIORITY_CLASSES)

    def test_priority_rank_orders_classes(self):
        spec = lambda p: TenantSpec(  # noqa: E731
            name="t", workload=WorkloadSpec(frames=1), priority=p
        )
        ranks = [spec(p).priority_rank for p in PRIORITY_CLASSES]
        assert ranks == sorted(ranks)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"priority": "platinum"},
            {"lease_acs": -1},
            {"lease_acs": 4, "atom_budget": 3},
            {"max_in_flight": 0},
            {"rate_interval": 0},
            {"burst": 0},
            {"mean_gap": 0},
            {"deadline_slack": 0},
            {"hot_spots": ()},
            {"variants": 0},
        ],
    )
    def test_malformed_spec_rejected(self, kwargs):
        base = dict(name="t0", workload=WorkloadSpec(frames=1))
        base.update(kwargs)
        with pytest.raises(ServiceError):
            TenantSpec(**base)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ServiceError):
            make_tenant_fleet(0)


# -- request generation ----------------------------------------------------


class TestRequestStream:
    def test_stream_is_deterministic(self):
        fleet = small_fleet(4)
        assert generate_requests(fleet, 2000, 7) == (
            generate_requests(fleet, 2000, 7)
        )

    def test_adding_a_tenant_preserves_other_streams(self):
        fleet = small_fleet(4)
        bigger = small_fleet(5)
        base = generate_requests(fleet, 2000, 7)
        grown = generate_requests(bigger, 2000, 7)

        def key(r):
            return (r.tenant, r.request_id, r.arrival, r.hot_spot)

        old = {key(r) for r in base}
        new = {
            key(r) for r in grown if r.tenant != bigger[4].name
        }
        assert old == new

    def test_global_seq_is_arrival_ordered(self):
        requests = generate_requests(small_fleet(4), 2000, 7)
        arrivals = [r.arrival for r in requests]
        assert arrivals == sorted(arrivals)
        assert [r.seq for r in requests] == list(range(len(requests)))

    def test_deadlines_follow_slack(self):
        fleet = small_fleet(4, deadline_slack=123)
        for request in generate_requests(fleet, 2000, 7):
            assert request.deadline == request.arrival + 123


# -- token bucket ----------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_starve(self):
        bucket = TokenBucket(capacity=2, interval=10)
        assert bucket.try_take(0)
        assert bucket.try_take(0)
        assert not bucket.try_take(5)

    def test_refills_one_per_interval(self):
        bucket = TokenBucket(capacity=2, interval=10)
        bucket.try_take(0), bucket.try_take(0)
        assert not bucket.try_take(9)
        assert bucket.try_take(10)
        assert not bucket.try_take(19)
        assert bucket.try_take(20)

    def test_idle_time_does_not_overfill(self):
        bucket = TokenBucket(capacity=2, interval=10)
        assert bucket.try_take(1000)
        assert bucket.try_take(1000)
        assert not bucket.try_take(1000)

    def test_validation(self):
        with pytest.raises(ServiceError):
            TokenBucket(0, 10)
        with pytest.raises(ServiceError):
            TokenBucket(1, 0)


# -- circuit breaker -------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_on_fault_storm(self):
        breaker = CircuitBreaker(threshold=3, window=100, cooldown=200)
        assert breaker.on_fault(10) is None
        assert breaker.on_fault(20) is None
        assert breaker.on_fault(30) == "open"
        assert breaker.is_open(31)
        assert breaker.trips == 1

    def test_spread_faults_do_not_trip(self):
        breaker = CircuitBreaker(threshold=3, window=100, cooldown=200)
        for tick in (10, 200, 400):
            assert breaker.on_fault(tick) is None
        assert not breaker.is_open(401)

    def test_half_open_then_close_on_success(self):
        breaker = CircuitBreaker(threshold=2, window=100, cooldown=50)
        breaker.on_fault(0), breaker.on_fault(1)
        assert breaker.is_open(10)
        assert breaker.poll(51) == "half_open"
        assert breaker.on_success(52) == "closed"
        assert breaker.state == "closed"

    def test_half_open_reopens_on_fault(self):
        breaker = CircuitBreaker(threshold=2, window=100, cooldown=50)
        breaker.on_fault(0), breaker.on_fault(1)
        breaker.poll(51)
        assert breaker.on_fault(52) == "open"
        assert breaker.trips == 2

    def test_validation(self):
        with pytest.raises(ServiceError):
            CircuitBreaker(threshold=0)


# -- admission controller --------------------------------------------------


def _tenant(**kwargs):
    base = dict(
        name="t0",
        workload=WorkloadSpec(frames=1),
        lease_acs=2,
        atom_budget=4,
        max_in_flight=2,
        rate_interval=10,
        burst=8,
        mean_gap=50,
        deadline_slack=100,
    )
    base.update(kwargs)
    return TenantSpec(**base)


def _request(tenant, arrival=0, deadline=100, seq=0):
    from repro.service import ServiceRequest

    return ServiceRequest(
        tenant=tenant.name,
        request_id=f"{tenant.name}-r{seq:04d}",
        hot_spot="EE",
        variant=0,
        arrival=arrival,
        deadline=deadline,
        lease_acs=tenant.lease_acs,
        priority=tenant.priority_rank,
        seq=seq,
    )


class TestAdmission:
    def test_admits_and_charges(self):
        tenant = _tenant()
        ctl = AdmissionController([tenant], queue_limit=8)
        assert ctl.admit(_request(tenant), 0, 0, 0, 3) is None
        ledger = ctl.ledger_for(tenant.name)
        assert ledger.in_flight == 1
        assert ledger.leased_atoms == tenant.lease_acs

    def test_rate_limited(self):
        tenant = _tenant(burst=1, rate_interval=100)
        ctl = AdmissionController([tenant], queue_limit=8)
        assert ctl.admit(_request(tenant, seq=0), 0, 0, 0, 3) is None
        assert (
            ctl.admit(_request(tenant, seq=1), 1, 0, 0, 3)
            == "rate_limited"
        )

    def test_in_flight_cap(self):
        tenant = _tenant(max_in_flight=1, atom_budget=8)
        ctl = AdmissionController([tenant], queue_limit=8)
        assert ctl.admit(_request(tenant, seq=0), 0, 0, 0, 3) is None
        assert (
            ctl.admit(_request(tenant, seq=1), 0, 0, 0, 3)
            == "in_flight_cap"
        )

    def test_atom_budget(self):
        tenant = _tenant(lease_acs=2, atom_budget=3, max_in_flight=8)
        ctl = AdmissionController([tenant], queue_limit=8)
        assert ctl.admit(_request(tenant, seq=0), 0, 0, 0, 3) is None
        assert (
            ctl.admit(_request(tenant, seq=1), 0, 0, 0, 3)
            == "atom_budget"
        )

    def test_queue_full(self):
        tenant = _tenant()
        ctl = AdmissionController([tenant], queue_limit=2)
        assert (
            ctl.admit(_request(tenant), 0, 2, 0, 3) == "queue_full"
        )

    def test_deadline_triage(self):
        tenant = _tenant()
        ctl = AdmissionController([tenant], queue_limit=8)
        ctl.seed_estimate(tenant.name, 50)
        late = _request(tenant, arrival=0, deadline=40)
        assert ctl.admit(late, 0, 0, 0, 3) == "deadline"

    def test_backlog_feeds_deadline_gate(self):
        tenant = _tenant()
        ctl = AdmissionController([tenant], queue_limit=8)
        ctl.seed_estimate(tenant.name, 10)
        request = _request(tenant, arrival=0, deadline=50)
        # 300 backlog ticks over 3 slots = 100 ticks of queue wait.
        assert ctl.admit(request, 0, 1, 300, 3) == "deadline"
        assert ctl.admit(request, 0, 1, 30, 3) is None

    def test_release_refunds(self):
        tenant = _tenant(max_in_flight=1)
        ctl = AdmissionController([tenant], queue_limit=8)
        request = _request(tenant)
        assert ctl.admit(request, 0, 0, 0, 3) is None
        ctl.release(request)
        assert ctl.admit(_request(tenant, seq=1), 0, 0, 0, 3) is None

    def test_release_underflow_raises(self):
        tenant = _tenant()
        ctl = AdmissionController([tenant], queue_limit=8)
        with pytest.raises(ServiceError):
            ctl.release(_request(tenant))

    def test_ewma_converges_toward_actuals(self):
        tenant = _tenant()
        ctl = AdmissionController([tenant], queue_limit=8)
        ctl.seed_estimate(tenant.name, 100)
        for _ in range(20):
            ctl.observe_service_ticks(tenant.name, 10)
        assert ctl.estimate(tenant.name) <= 12

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ServiceError):
            AdmissionController(
                [_tenant(), _tenant()], queue_limit=8
            )


# -- fabric lease accounting -----------------------------------------------


class TestFabricLeases:
    def test_reserve_release_cycle(self, toy_registry):
        fabric = Fabric(toy_registry, 4)
        fabric.reserve_acs(3)
        assert fabric.reserved_acs == 3
        assert fabric.free_acs == 1
        fabric.release_acs(2)
        assert fabric.free_acs == 3

    def test_over_reservation_rejected(self, toy_registry):
        fabric = Fabric(toy_registry, 2)
        fabric.reserve_acs(2)
        with pytest.raises(CapacityError):
            fabric.reserve_acs(1)

    def test_release_underflow_rejected(self, toy_registry):
        fabric = Fabric(toy_registry, 2)
        with pytest.raises(FabricError):
            fabric.release_acs(1)

    def test_container_death_shrinks_free_capacity(self, toy_registry):
        fabric = Fabric(toy_registry, 3)
        fabric.reserve_acs(3)
        fabric.kill_container(0)
        assert fabric.usable_acs == 2
        assert fabric.overcommitted_acs == 1
        fabric.release_acs(1)
        assert fabric.overcommitted_acs == 0
        assert fabric.free_acs == 0

    def test_reset_clears_reservations(self, toy_registry):
        fabric = Fabric(toy_registry, 2)
        fabric.reserve_acs(2)
        fabric.reset()
        assert fabric.reserved_acs == 0


# -- leased planning -------------------------------------------------------


class TestPlanWithLease:
    def test_zero_lease_is_pure_software(self, h264_library):
        manager = RuntimeManager(
            h264_library, get_scheduler("HEF"), num_acs=8
        )
        empty = h264_library.space.molecule({})
        plan = manager.plan_with_lease(
            "EE", HOT_SPOT_SIS["EE"], empty, 0
        )
        assert plan.num_scheduled_atoms == 0

    def test_lease_caps_the_plan(self, h264_library):
        manager = RuntimeManager(
            h264_library, get_scheduler("HEF"), num_acs=8
        )
        empty = h264_library.space.molecule({})
        small = manager.plan_with_lease(
            "EE", HOT_SPOT_SIS["EE"], empty, 2
        )
        large = manager.plan_with_lease(
            "EE", HOT_SPOT_SIS["EE"], empty, 8
        )
        assert 0 < small.num_scheduled_atoms <= large.num_scheduled_atoms
        assert small.num_scheduled_atoms <= 2

    def test_negative_lease_rejected(self, h264_library):
        manager = RuntimeManager(
            h264_library, get_scheduler("HEF"), num_acs=8
        )
        empty = h264_library.space.molecule({})
        with pytest.raises(Exception):
            manager.plan_with_lease("EE", HOT_SPOT_SIS["EE"], empty, -1)


# -- cache read-through ----------------------------------------------------


class TestReadThrough:
    def test_miss_computes_then_hit_serves(self, tmp_path):
        from repro.exec.spec import SweepCell

        cache = ResultCache(tmp_path)
        cell = SweepCell(
            system="Software",
            num_acs=0,
            workload=WorkloadSpec(frames=1, max_traces=1),
        )
        calls = []

        def compute():
            calls.append(1)
            return {"total_cycles": 42}

        payload, hit = cache.read_through(cell, compute)
        assert (payload, hit) == ({"total_cycles": 42}, False)
        payload, hit = cache.read_through(cell, compute)
        assert (payload, hit) == ({"total_cycles": 42}, True)
        assert len(calls) == 1


# -- the arbiter: config validation ----------------------------------------


class TestServiceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_acs": 0},
            {"duration": 0},
            {"queue_limit": 0},
            {"cycles_per_tick": 0},
            {"max_preemptions": -1},
            {"backoff_base": 0.0},
            {"backoff_factor": 0.5},
            {"backoff_jitter": 1.5},
            {"fault_ticks": (-1,)},
        ],
    )
    def test_malformed_config_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            ServiceConfig(**kwargs)

    def test_duplicate_tenants_rejected(self):
        fleet = small_fleet(2)
        with pytest.raises(ServiceError):
            run_service(
                list(fleet) + [fleet[0]],
                ServiceConfig(num_acs=4, duration=100),
            )


# -- the arbiter: integration ----------------------------------------------

SOAK_CONFIG = dict(num_acs=6, duration=4000, seed=2008)
SOAK_FAULTS = (900, 920, 940)


@pytest.fixture(scope="module")
def soak():
    """One overloaded soak run with a fault storm, shared read-only."""
    tracer = RecordingTracer()
    metrics = MetricsRegistry()
    report = run_service(
        small_fleet(8),
        ServiceConfig(fault_ticks=SOAK_FAULTS, **SOAK_CONFIG),
        tracer=tracer,
        metrics=metrics,
    )
    return report, tracer, metrics


class TestArbiterSoak:
    def test_fleet_oversubscribes_the_fabric(self, soak):
        report, _, _ = soak
        # The soak only proves anything if offered load beats capacity:
        # with everything admitted there would be nothing to shed.
        assert report.shed_total > 0
        assert report.submitted > 2 * report.completed

    def test_never_drops_an_admitted_request(self, soak):
        report, _, _ = soak
        assert report.dropped_admitted == 0
        for stats in report.tenants.values():
            assert stats.dropped_admitted == 0

    def test_shed_reasons_are_taxonomy_only(self, soak):
        report, _, _ = soak
        assert report.shed_total > 0
        assert set(report.shed_taxonomy()) <= set(SHED_REASONS)

    def test_accounting_balances(self, soak):
        report, _, _ = soak
        assert report.submitted == (
            report.admitted + report.cache_hits + report.shed_total
        )

    def test_fault_storm_trips_breaker_and_degrades(self, soak):
        report, tracer, _ = soak
        assert report.faults == len(SOAK_FAULTS)
        assert report.breaker_trips >= 1
        assert report.degraded > 0
        kinds = [type(e).__name__ for e in tracer.events]
        assert "BreakerTransition" in kinds
        assert "DegradedServed" in kinds

    def test_degraded_served_while_breaker_open(self, soak):
        _, tracer, _ = soak
        opened = [
            e.cycle
            for e in tracer.events
            if isinstance(e, BreakerTransition) and e.state == "open"
        ]
        half = [
            e.cycle
            for e in tracer.events
            if isinstance(e, BreakerTransition)
            and e.state == "half_open"
        ]
        assert opened and half
        window = (opened[0], half[0])
        degraded_in_window = [
            e
            for e in tracer.events
            if isinstance(e, DegradedServed)
            and window[0] <= e.cycle < window[1]
        ]
        assert degraded_in_window

    def test_critical_tenants_shed_least(self, soak):
        report, _, _ = soak
        by_class = {}
        for stats in report.tenants.values():
            rates = by_class.setdefault(stats.priority, [])
            rates.append(stats.shed_total / max(1, stats.submitted))
        critical = sum(by_class["critical"]) / len(by_class["critical"])
        batch = sum(by_class["batch"]) / len(by_class["batch"])
        assert critical < batch

    def test_events_and_metrics_agree(self, soak):
        report, tracer, metrics = soak
        shed_events = [
            e for e in tracer.events if isinstance(e, RequestShed)
        ]
        assert len(shed_events) == report.shed_total
        completed_events = [
            e for e in tracer.events if isinstance(e, RequestCompleted)
        ]
        assert len(completed_events) == (
            report.completed + report.cache_hits
        )
        assert metrics.counter("service.admitted").value == (
            report.admitted
        )
        assert metrics.counter("service.completed").value == (
            report.completed
        )

    def test_latencies_recorded_for_all_completions(self, soak):
        report, _, _ = soak
        assert len(report.latencies()) == (
            report.completed + report.cache_hits
        )


class TestDeterminism:
    def test_soak_reruns_bit_identical(self, tmp_path):
        fleet = small_fleet(8)
        config = ServiceConfig(fault_ticks=SOAK_FAULTS, **SOAK_CONFIG)
        digests = []
        for run in range(2):
            report = run_service(
                fleet,
                config,
                journal_path=tmp_path / f"run{run}.jsonl",
            )
            assert report.dropped_admitted == 0
            digests.append(
                {
                    "service": report.service_digest(),
                    "tenants": {
                        name: stats.digest()
                        for name, stats in report.tenants.items()
                    },
                }
            )
        assert digests[0] == digests[1]
        assert filecmp.cmp(
            tmp_path / "run0.jsonl",
            tmp_path / "run1.jsonl",
            shallow=False,
        )

    def test_seed_changes_the_run(self):
        fleet = small_fleet(4)
        base = run_service(
            fleet, ServiceConfig(num_acs=6, duration=1500, seed=1)
        )
        other = run_service(
            fleet, ServiceConfig(num_acs=6, duration=1500, seed=2)
        )
        assert base.service_digest() != other.service_digest()

    def test_warm_cache_serves_admission_free_hits(self, tmp_path):
        fleet = small_fleet(4)
        config = ServiceConfig(num_acs=6, duration=1500)
        cache = ResultCache(tmp_path / "cache")
        cold = run_service(fleet, config, cache=cache)
        warm = run_service(fleet, config, cache=cache)
        assert warm.cache_hits > cold.cache_hits
        assert warm.dropped_admitted == 0
        # Same answers either way: per-request digests line up.
        for name in cold.tenants:
            cold_digests = {
                c["request"]: c["digest"]
                for c in cold.tenants[name].completions
            }
            warm_digests = {
                c["request"]: c["digest"]
                for c in warm.tenants[name].completions
            }
            shared = set(cold_digests) & set(warm_digests)
            assert shared
            for request_id in shared:
                assert cold_digests[request_id] == (
                    warm_digests[request_id]
                )


class TestDegradedFleet:
    def test_zero_lease_tenant_is_always_software(self):
        tenant = TenantSpec(
            name="cisa",
            workload=WorkloadSpec(frames=1, max_traces=2),
            lease_acs=0,
            atom_budget=0,
            mean_gap=300,
            deadline_slack=900,
        )
        report = run_service(
            [tenant], ServiceConfig(num_acs=4, duration=2000)
        )
        stats = report.tenants["cisa"]
        assert stats.completed > 0
        assert stats.degraded == stats.completed
        assert report.preemptions == 0

    def test_storm_killing_most_containers_still_serves(self):
        fleet = small_fleet(4, mean_gap=120)
        config = ServiceConfig(
            num_acs=4,
            duration=2500,
            fault_ticks=(500, 520, 540),
        )
        report = run_service(fleet, config)
        assert report.faults == 3
        assert report.dropped_admitted == 0
        assert report.degraded > 0

    def test_journal_and_report_json_round_trip(self, tmp_path):
        fleet = small_fleet(4)
        report = run_service(
            fleet,
            ServiceConfig(num_acs=6, duration=1200),
            journal_path=tmp_path / "svc.jsonl",
        )
        lines = (
            (tmp_path / "svc.jsonl").read_text().strip().split("\n")
        )
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["tenants"] == sorted(report.tenants)
        kinds = {json.loads(line)["kind"] for line in lines[1:]}
        assert kinds <= {
            "admit",
            "shed",
            "hit",
            "preempt",
            "fault",
            "breaker",
            "complete",
            "degraded",
        }
        payload = report.to_json_dict()
        assert payload["journal_digest"] == report.journal_digest
        assert payload["dropped_admitted"] == 0
