"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_experiments_accepted(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "table3"])
        assert args.experiments == ["table1", "table3"]

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table9"])

    def test_acs_option(self):
        args = build_parser().parse_args(["fig2", "--acs", "8"])
        assert args.acs == 8


class TestExecution:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SATD" in out and "(I)DCT" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "549" in out and "30,769" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "m3" in out

    def test_multiple_deduplicated(self, capsys):
        assert main(["table1", "table1"]) == 0
        out = capsys.readouterr().out
        assert out.count("Table 1:") == 1


def _failed_loads(out: str) -> int:
    """Parse the failed-load counter out of a simulate report."""
    for line in out.splitlines():
        if "failed," in line:
            return int(line.split("completed,")[1].split("failed")[0])
    raise AssertionError(f"no fault counters in output:\n{out}")


class TestFaultInjectionFlags:
    def test_fault_flags_parsed(self):
        args = build_parser().parse_args(
            ["simulate", "--fault-rate", "0.25", "--fault-seed", "7",
             "--max-retries", "5"]
        )
        assert args.fault_rate == 0.25
        assert args.fault_seed == 7
        assert args.max_retries == 5

    def test_simulate_without_faults_reports_zero_counters(self, capsys):
        assert main(["simulate", "--frames", "1"]) == 0
        out = capsys.readouterr().out
        assert _failed_loads(out) == 0
        assert "dead ACs: 0" in out

    def test_fault_rate_changes_reported_counters(self, capsys):
        assert main(
            ["simulate", "--frames", "1", "--fault-rate", "0.5",
             "--fault-seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert _failed_loads(out) > 0
        assert "degraded:" in out

    def test_fault_counters_deterministic_under_seed(self, capsys):
        argv = ["simulate", "--frames", "1", "--fault-rate", "0.5",
                "--fault-seed", "3"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_max_retries_changes_outcome(self, capsys):
        base = ["simulate", "--frames", "1", "--fault-rate", "0.5",
                "--fault-seed", "3"]
        assert main(base + ["--max-retries", "0"]) == 0
        without_retries = capsys.readouterr().out
        assert main(base + ["--max-retries", "8"]) == 0
        with_retries = capsys.readouterr().out
        assert "0 retried" in without_retries
        assert "0 retried" not in with_retries

    @pytest.mark.parametrize(
        "argv",
        [
            ["simulate", "--fault-rate", "1.5"],
            ["simulate", "--fault-rate", "nope"],
            ["simulate", "--max-retries", "-1"],
            ["simulate", "--acs", "-2"],
            ["sweep", "--ac-list", "4,xyz"],
            ["sweep", "--ac-list", ""],
        ],
    )
    def test_invalid_flag_values_rejected_cleanly(self, argv, capsys):
        """Bad flag values exit with a usage error, not a traceback."""
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2

    def test_sweep_reports_fault_columns(self, capsys):
        assert main(
            ["sweep", "--frames", "1", "--ac-list", "4,8",
             "--fault-rate", "0.5", "--fault-seed", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "failed" in out and "degraded" in out
        # One row per AC count of --ac-list.
        rows = [row for row in out.splitlines()
                if row.strip().startswith(("4", "8"))]
        assert len(rows) == 2


class TestTraceFlags:
    def test_trace_flags_parsed(self):
        args = build_parser().parse_args(
            ["simulate", "--trace-out", "t.json", "--trace-format", "chrome"]
        )
        assert args.trace_out == "t.json"
        assert args.trace_format == "chrome"

    def test_unknown_trace_format_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["simulate", "--trace-out", "t.json",
                 "--trace-format", "yaml"]
            )
        assert excinfo.value.code == 2

    @pytest.mark.parametrize(
        "fmt,probe",
        [("json", '"schema"'), ("chrome", "traceEvents"),
         ("summary", "run start")],
    )
    def test_simulate_writes_trace(self, tmp_path, capsys, fmt, probe):
        out_path = tmp_path / "trace.json"
        assert main(
            ["simulate", "--frames", "1", "--trace-out", str(out_path),
             "--trace-format", fmt]
        ) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and str(out_path) in out
        assert probe in out_path.read_text()

    def test_simulate_json_trace_round_trips(self, tmp_path, capsys):
        from repro.obs import read_event_log

        out_path = tmp_path / "trace.json"
        assert main(
            ["simulate", "--frames", "1", "--trace-out", str(out_path)]
        ) == 0
        events = read_event_log(out_path)
        assert events[0].kind == "run_start"
        assert events[-1].kind == "run_end"

    def test_simulate_chrome_trace_validates(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        assert main(
            ["simulate", "--frames", "1", "--trace-out", str(out_path),
             "--trace-format", "chrome"]
        ) == 0
        validate_chrome_trace(json.loads(out_path.read_text()))

    def test_sweep_writes_one_trace_per_cell(self, tmp_path, capsys):
        base = tmp_path / "sweep.json"
        assert main(
            ["sweep", "--frames", "1", "--ac-list", "4,8",
             "--trace-out", str(base)]
        ) == 0
        out = capsys.readouterr().out
        written = sorted(tmp_path.glob("sweep.*.json"))
        assert len(written) == 2
        for path in written:
            assert str(path) in out

    def test_unwritable_trace_path_fails_cleanly(self, tmp_path, capsys):
        blocker = tmp_path / "file.txt"
        blocker.write_text("occupied")
        bad = blocker / "trace.json"  # a file is not a directory
        assert main(
            ["simulate", "--frames", "1", "--trace-out", str(bad)]
        ) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "cannot write trace" in err

    def test_unwritable_sweep_trace_path_fails_cleanly(self, tmp_path, capsys):
        blocker = tmp_path / "file.txt"
        blocker.write_text("occupied")
        bad = blocker / "sweep.json"
        assert main(
            ["sweep", "--frames", "1", "--ac-list", "4",
             "--trace-out", str(bad)]
        ) == 1
        assert "cannot write trace" in capsys.readouterr().err


class TestSupervisedSweep:
    def test_supervision_flags_parsed(self):
        args = build_parser().parse_args(
            ["sweep", "--timeout", "2.5", "--max-attempts", "4",
             "--journal", "j.jsonl", "--resume", "old.jsonl",
             "--chaos", "*:raise:1"]
        )
        assert args.timeout == 2.5
        assert args.max_attempts == 4
        assert args.journal == "j.jsonl"
        assert args.resume == "old.jsonl"
        assert args.chaos == "*:raise:1"

    def test_quarantine_exits_3_and_writes_failure_report(
        self, tmp_path, capsys
    ):
        import json

        journal = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", "--frames", "1", "--ac-list", "4,5",
             "--max-attempts", "1", "--chaos", "HEF@4AC*:raise",
             "--journal", str(journal)]
        ) == 3
        out = capsys.readouterr().out
        assert "QUARANTINED HEF@4AC/1f: poison" in out
        report = json.loads(
            (tmp_path / "sweep.jsonl.failures.json").read_text()
        )
        assert report["quarantined"][0]["failure"] == "poison"
        assert report["completed"] == 1

    def test_resume_completes_cleanly_with_exit_0(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", "--frames", "1", "--ac-list", "4,5",
             "--max-attempts", "1", "--chaos", "HEF@4AC*:raise",
             "--journal", str(journal)]
        ) == 3
        capsys.readouterr()
        assert main(
            ["sweep", "--frames", "1", "--ac-list", "4,5",
             "--resume", str(journal), "--journal", str(journal)]
        ) == 0
        out = capsys.readouterr().out
        assert "1 resumed" in out
        assert "QUARANTINED" not in out

    def test_trace_out_with_supervision_rejected(self, tmp_path, capsys):
        assert main(
            ["sweep", "--frames", "1", "--ac-list", "4",
             "--timeout", "5", "--trace-out", str(tmp_path / "t.json")]
        ) == 1
        assert "--trace-out" in capsys.readouterr().err

    def test_malformed_chaos_spec_exits_1(self, capsys):
        assert main(
            ["sweep", "--frames", "1", "--ac-list", "4",
             "--chaos", "bogus"]
        ) == 1
        assert "chaos rule" in capsys.readouterr().err
