"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_experiments_accepted(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "table3"])
        assert args.experiments == ["table1", "table3"]

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table9"])

    def test_acs_option(self):
        args = build_parser().parse_args(["fig2", "--acs", "8"])
        assert args.acs == 8


class TestExecution:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SATD" in out and "(I)DCT" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "549" in out and "30,769" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "m3" in out

    def test_multiple_deduplicated(self, capsys):
        assert main(["table1", "table1"]) == 0
        out = capsys.readouterr().out
        assert out.count("Table 1:") == 1
