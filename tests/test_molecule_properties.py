"""Property-based tests of the molecule lattice (hypothesis).

Section 4.1 claims specific algebraic structure: (N^n, ∪) and (N^n, ∩)
are Abelian semi-groups, (N^n, <=) is a complete lattice, and ⊖ yields
the minimal completion.  These properties are verified on randomly drawn
vectors.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AtomSpace, Molecule, inf, sup

SPACE = AtomSpace(["A", "B", "C", "D"])


def molecules(max_count: int = 6):
    return st.lists(
        st.integers(min_value=0, max_value=max_count),
        min_size=SPACE.size,
        max_size=SPACE.size,
    ).map(lambda counts: Molecule(SPACE, counts))


@given(molecules(), molecules())
def test_union_commutative(m, o):
    assert m | o == o | m


@given(molecules(), molecules(), molecules())
def test_union_associative(m, o, p):
    assert (m | o) | p == m | (o | p)


@given(molecules())
def test_union_idempotent(m):
    assert m | m == m


@given(molecules(), molecules())
def test_intersection_commutative(m, o):
    assert m & o == o & m


@given(molecules(), molecules(), molecules())
def test_intersection_associative(m, o, p):
    assert (m & o) & p == m & (o & p)


@given(molecules())
def test_intersection_idempotent(m):
    assert m & m == m


@given(molecules(), molecules())
def test_absorption_laws(m, o):
    assert m | (m & o) == m
    assert m & (m | o) == m


@given(molecules())
def test_order_reflexive(m):
    assert m <= m


@given(molecules(), molecules())
def test_order_antisymmetric(m, o):
    if m <= o and o <= m:
        assert m == o


@given(molecules(), molecules(), molecules())
def test_order_transitive(m, o, p):
    if m <= o and o <= p:
        assert m <= p


@given(molecules(), molecules())
def test_union_is_least_upper_bound(m, o):
    join = m | o
    assert m <= join and o <= join
    # Minimality: any common upper bound dominates the join.
    upper = SPACE.molecule(
        [max(a, b) + 1 for a, b in zip(m.counts, o.counts)]
    )
    assert join <= upper


@given(molecules(), molecules())
def test_intersection_is_greatest_lower_bound(m, o):
    meet = m & o
    assert meet <= m and meet <= o


@given(molecules(), molecules())
def test_missing_gives_minimal_completion(available, target):
    delta = available.missing(target)
    combined = available + delta
    # Completion suffices...
    assert target <= combined
    # ...and is minimal: removing any loaded atom breaks coverage.
    for i, count in enumerate(delta.counts):
        if count == 0:
            continue
        reduced = list(delta.counts)
        reduced[i] -= 1
        assert not target <= (available + Molecule(SPACE, reduced))


@given(molecules(), molecules())
def test_missing_zero_iff_dominated(available, target):
    assert (available.missing(target).determinant == 0) == (
        target <= available
    )


@given(st.lists(molecules(), min_size=1, max_size=6))
def test_sup_inf_bound_every_member(ms):
    s, i = sup(ms), inf(ms)
    for m in ms:
        assert i <= m <= s


@given(st.lists(molecules(), min_size=1, max_size=6))
def test_sup_determinant_at_most_sum(ms):
    s = sup(ms)
    assert s.determinant <= sum(m.determinant for m in ms)


@given(molecules(), molecules())
def test_determinant_subadditive_over_union(m, o):
    assert (m | o).determinant <= m.determinant + o.determinant


@given(molecules(), molecules())
def test_union_intersection_determinant_identity(m, o):
    # |m ∪ o| + |m ∩ o| == |m| + |o| (holds componentwise for max/min).
    assert (m | o).determinant + (m & o).determinant == (
        m.determinant + o.determinant
    )
