"""Property-based tests of the molecule lattice (hypothesis).

Section 4.1 claims specific algebraic structure: (N^n, ∪) and (N^n, ∩)
are Abelian semi-groups, (N^n, <=) is a complete lattice, and ⊖ yields
the minimal completion.  These properties are verified on randomly drawn
vectors, together with the monotonicity facts the equation-(3) candidate
expansion and the schedulers rely on, and a metamorphic check that HEF's
division-free (cross-multiplied) benefit comparison agrees with the
floating-point benefit ratio.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import AtomSpace, Molecule, MoleculeImpl, SpecialInstruction, inf, sup
from repro.core.schedulers.base import SchedulerState

SPACE = AtomSpace(["A", "B", "C", "D"])


def molecules(max_count: int = 6):
    return st.lists(
        st.integers(min_value=0, max_value=max_count),
        min_size=SPACE.size,
        max_size=SPACE.size,
    ).map(lambda counts: Molecule(SPACE, counts))


@given(molecules(), molecules())
def test_union_commutative(m, o):
    assert m | o == o | m


@given(molecules(), molecules(), molecules())
def test_union_associative(m, o, p):
    assert (m | o) | p == m | (o | p)


@given(molecules())
def test_union_idempotent(m):
    assert m | m == m


@given(molecules(), molecules())
def test_intersection_commutative(m, o):
    assert m & o == o & m


@given(molecules(), molecules(), molecules())
def test_intersection_associative(m, o, p):
    assert (m & o) & p == m & (o & p)


@given(molecules())
def test_intersection_idempotent(m):
    assert m & m == m


@given(molecules(), molecules())
def test_absorption_laws(m, o):
    assert m | (m & o) == m
    assert m & (m | o) == m


@given(molecules())
def test_order_reflexive(m):
    assert m <= m


@given(molecules(), molecules())
def test_order_antisymmetric(m, o):
    if m <= o and o <= m:
        assert m == o


@given(molecules(), molecules(), molecules())
def test_order_transitive(m, o, p):
    if m <= o and o <= p:
        assert m <= p


@given(molecules(), molecules())
def test_union_is_least_upper_bound(m, o):
    join = m | o
    assert m <= join and o <= join
    # Minimality: any common upper bound dominates the join.
    upper = SPACE.molecule(
        [max(a, b) + 1 for a, b in zip(m.counts, o.counts)]
    )
    assert join <= upper


@given(molecules(), molecules())
def test_intersection_is_greatest_lower_bound(m, o):
    meet = m & o
    assert meet <= m and meet <= o


@given(molecules(), molecules())
def test_missing_gives_minimal_completion(available, target):
    delta = available.missing(target)
    combined = available + delta
    # Completion suffices...
    assert target <= combined
    # ...and is minimal: removing any loaded atom breaks coverage.
    for i, count in enumerate(delta.counts):
        if count == 0:
            continue
        reduced = list(delta.counts)
        reduced[i] -= 1
        assert not target <= (available + Molecule(SPACE, reduced))


@given(molecules(), molecules())
def test_missing_zero_iff_dominated(available, target):
    assert (available.missing(target).determinant == 0) == (
        target <= available
    )


@given(st.lists(molecules(), min_size=1, max_size=6))
def test_sup_inf_bound_every_member(ms):
    s, i = sup(ms), inf(ms)
    for m in ms:
        assert i <= m <= s


@given(st.lists(molecules(), min_size=1, max_size=6))
def test_sup_determinant_at_most_sum(ms):
    s = sup(ms)
    assert s.determinant <= sum(m.determinant for m in ms)


@given(molecules(), molecules())
def test_determinant_subadditive_over_union(m, o):
    assert (m | o).determinant <= m.determinant + o.determinant


@given(molecules(), molecules())
def test_union_intersection_determinant_identity(m, o):
    # |m ∪ o| + |m ∩ o| == |m| + |o| (holds componentwise for max/min).
    assert (m | o).determinant + (m & o).determinant == (
        m.determinant + o.determinant
    )


# ---------------------------------------------------------------------------
# sup/inf absorption over molecule lists
# ---------------------------------------------------------------------------


@given(molecules(), molecules())
def test_sup_inf_absorption(m, o):
    """Lattice absorption stated via sup/inf: sup(m, inf(m, o)) == m
    and inf(m, sup(m, o)) == m."""
    assert sup([m, inf([m, o])]) == m
    assert inf([m, sup([m, o])]) == m


@given(st.lists(molecules(), min_size=1, max_size=6))
def test_sup_inf_absorb_their_own_bounds(ms):
    """Adding sup(ms)/inf(ms) back into the list changes nothing."""
    s, i = sup(ms), inf(ms)
    assert sup(ms + [s]) == s
    assert sup(ms + [i]) == s
    assert inf(ms + [i]) == i
    assert inf(ms + [s]) == i


# ---------------------------------------------------------------------------
# Monotonicity of the determinant under ⊖ (equation (3)/(4) cleaning)
# ---------------------------------------------------------------------------
#
# The candidate-expansion/cleaning steps rely on |a ⊖ m| shrinking as the
# availability a grows (loading atoms never makes a candidate more
# expensive) and growing with the target m (bigger molecules never need
# fewer additional atoms).  Ordered pairs are constructed by addition,
# which realises exactly the component-wise <=.


@given(molecules(), molecules(max_count=3), molecules())
def test_missing_determinant_antitone_in_availability(a1, delta, m):
    a2 = a1 + delta  # a1 <= a2 by construction
    assert a1 <= a2
    assert a2.missing(m).determinant <= a1.missing(m).determinant


@given(molecules(), molecules(), molecules(max_count=3))
def test_missing_determinant_monotone_in_target(a, m1, delta):
    m2 = m1 + delta  # m1 <= m2 by construction
    assert m1 <= m2
    assert a.missing(m1).determinant <= a.missing(m2).determinant


@given(molecules(), molecules(max_count=3), molecules())
def test_scheduling_an_upgrade_never_hurts_other_candidates(a, step, m):
    """Figure 6 line 27 (a <- a ∪ step) can only shrink |a ⊖ m|."""
    grown = a | step
    assert grown.missing(m).determinant <= a.missing(m).determinant


# ---------------------------------------------------------------------------
# Metamorphic: HEF's division-free benefit comparison
# ---------------------------------------------------------------------------
#
# HEF (Figure 6, line 20) ranks candidates by
#     benefit(o) = expected(o.SI) * improvement(o) / |a ⊖ o|
# but the hardware FSM (Section 5) avoids the divider by
# cross-multiplying: num1/den1 > num2/den2 is decided as
# num1*den2 > num2*den1.  With the bounded integer quantities below the
# float arithmetic is exact (products <= ~5e5 << 2^53, and two distinct
# ratios with denominators <= 24 differ by at least 1/576, far above one
# ulp), so both formulations must agree *exactly*.

_expected = st.integers(min_value=0, max_value=500)
_improvement = st.integers(min_value=0, max_value=1000)
_atoms_needed = st.integers(min_value=1, max_value=24)


@given(
    _expected, _improvement, _atoms_needed,
    _expected, _improvement, _atoms_needed,
)
def test_cross_multiplied_comparison_matches_float_ratio(
    e1, i1, d1, e2, i2, d2
):
    num1, den1 = float(e1 * i1), float(d1)
    num2, den2 = float(e2 * i2), float(d2)
    cross = num1 * den2 > num2 * den1
    ratio = (num1 / den1) > (num2 / den2)
    assert cross == ratio


@st.composite
def scheduler_states(draw):
    """A valid random SchedulerState over 1-2 SIs.

    Respects every SpecialInstruction invariant: non-zero unique atom
    vectors, unique names, hardware latency strictly below software.
    """
    software = draw(st.integers(min_value=100, max_value=1000))
    vector = (
        st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=SPACE.size,
            max_size=SPACE.size,
        )
        .map(tuple)
        .filter(any)
    )
    sis = {}
    selection = {}
    for idx in range(draw(st.integers(min_value=1, max_value=2))):
        si_name = f"SI{idx}"
        vectors = draw(
            st.lists(vector, min_size=1, max_size=3, unique=True)
        )
        impls = [
            MoleculeImpl(
                si_name=si_name,
                name=f"m{j}",
                atoms=Molecule(SPACE, list(v)),
                latency=draw(st.integers(min_value=1, max_value=software - 1)),
            )
            for j, v in enumerate(vectors)
        ]
        si = SpecialInstruction(si_name, SPACE, software, impls)
        sis[si_name] = si
        selection[si_name] = draw(st.sampled_from(si.molecules))
    available = Molecule(
        SPACE,
        draw(
            st.lists(
                st.integers(min_value=0, max_value=2),
                min_size=SPACE.size,
                max_size=SPACE.size,
            )
        ),
    )
    expected = {name: float(draw(_expected)) for name in sis}
    return SchedulerState(selection, sis, available, expected)


@given(scheduler_states())
@settings(max_examples=200)
def test_hef_benefit_comparison_on_real_candidate_pairs(state):
    """On every cleaned-candidate pair of a real scheduler state, the
    division-free comparison picks the same winner as the float ratio."""
    candidates = state.cleaned_candidates()
    assume(len(candidates) >= 2)
    scored = []
    for cand in candidates:
        num = state.expected[cand.si_name] * state.improvement(cand)
        den = float(state.additional_atoms(cand))
        assert den > 0  # cleaning guarantees missing atoms
        assert state.improvement(cand) > 0  # and a strict improvement
        scored.append((num, den))
    for num1, den1 in scored:
        for num2, den2 in scored:
            cross = num1 * den2 > num2 * den1
            ratio = (num1 / den1) > (num2 / den2)
            assert cross == ratio


@given(scheduler_states())
@settings(max_examples=100)
def test_hef_selects_the_max_float_benefit_candidate(state):
    """The strict-'>' scan HEF uses (first maximum wins) agrees with an
    argmax over the float benefit ratios."""
    candidates = state.cleaned_candidates()
    assume(candidates)
    best = None
    best_num, best_den = 0.0, 1.0
    for cand in candidates:
        num = state.expected[cand.si_name] * state.improvement(cand)
        den = float(state.additional_atoms(cand))
        if best is None or num * best_den > best_num * den:
            best, best_num, best_den = cand, num, den
    ratios = [
        state.expected[c.si_name] * state.improvement(c)
        / state.additional_atoms(c)
        for c in candidates
    ]
    first_max = candidates[ratios.index(max(ratios))]
    assert best is first_max
