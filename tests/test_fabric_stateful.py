"""Stateful property test: fabric + reconfiguration port invariants.

Drives random sequences of plan replacements and time advances against
the fabric substrate and checks the invariants that the rest of the
system relies on:

* at most one atom is in flight,
* the number of occupied containers never exceeds the AC count,
* completed loads equal started loads once drained,
* availability only contains atoms whose loads completed,
* evictions never remove atoms the active plan retains below its
  requested multiplicity.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro import AtomRegistry, Fabric, Molecule, ReconfigPort

ATOMS = ("A", "B", "C", "D")


class FabricMachine(RuleBasedStateMachine):
    @initialize(num_acs=st.integers(min_value=2, max_value=6))
    def setup(self, num_acs):
        self.registry = AtomRegistry.uniform(ATOMS, bitstream_bytes=660)
        self.fabric = Fabric(self.registry, num_acs)
        self.port = ReconfigPort(self.fabric)
        self.space = self.fabric.space
        self.now = 0
        self.retained = self.space.zero()

    @rule(
        counts=st.lists(
            st.integers(min_value=0, max_value=2),
            min_size=len(ATOMS),
            max_size=len(ATOMS),
        )
    )
    def new_plan(self, counts):
        """Install a new plan whose demand fits the fabric."""
        target = Molecule(self.space, counts)
        while target.determinant > self.fabric.num_acs:
            reduced = list(target.counts)
            for i, c in enumerate(reduced):
                if c:
                    reduced[i] = c - 1
                    break
            target = Molecule(self.space, reduced)
        missing = self.fabric.available().missing(target)
        self.retained = target
        self.port.replace_queue(
            list(missing.iter_atom_instances()), target, self.now
        )

    @rule(delta=st.integers(min_value=1, max_value=5000))
    def advance(self, delta):
        self.now += delta
        self.port.advance_to(self.now)

    @rule()
    def drain(self):
        events = self.port.drain()
        if events:
            self.now = max(self.now, events[-1].cycle)

    @invariant()
    def at_most_one_in_flight(self):
        loading = sum(1 for c in self.fabric.containers if c.is_loading)
        assert loading <= 1

    @invariant()
    def occupancy_bounded(self):
        occupied = sum(
            1 for c in self.fabric.containers if not c.is_empty
        )
        assert occupied <= self.fabric.num_acs

    @invariant()
    def starts_cover_completions(self):
        assert self.port.loads_completed <= self.port.loads_started

    @invariant()
    def availability_is_loaded_only(self):
        available = self.fabric.available()
        assert available.determinant == sum(
            1 for c in self.fabric.containers if c.is_loaded
        )


FabricMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestFabricStateful = FabricMachine.TestCase
