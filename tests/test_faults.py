"""Fault injection & graceful degradation — chaos-style tests.

The invariant under test, end to end: *an SI is always executable*.  No
matter what the fabric does — transient bitstream failures at any rate,
permanent Atom-Container death, even the whole fabric dying — every SI
execution completes via the base-ISA trap path, cycle accounting stays
exact and monotone, and the simulator never raises.
"""

import random
from typing import List, Optional

import pytest

from repro import (
    AtomRegistry,
    AtomType,
    BernoulliLoadFaults,
    CapacityError,
    ContainerFaultError,
    ContainerWearFaults,
    Fabric,
    FabricError,
    LoadFault,
    LRUEviction,
    MolenSimulator,
    NoFaults,
    ReconfigPort,
    RetryPolicy,
    RisppSimulator,
    SimulationError,
    TransientLoadError,
    get_scheduler,
)
from repro.fabric.faults import FaultModel, backoff_delay


class ScriptedFaults(FaultModel):
    """Fail the i-th load completion with the i-th scripted verdict."""

    name = "scripted"

    def __init__(self, verdicts: List[Optional[LoadFault]]):
        self.verdicts = list(verdicts)
        self._i = 0

    def check_load(self, atom_type, container_index, cycle):
        verdict = (
            self.verdicts[self._i] if self._i < len(self.verdicts) else None
        )
        self._i += 1
        return verdict

    def reset(self):
        self._i = 0


@pytest.fixture
def platform():
    registry = AtomRegistry(
        [
            AtomType("A", bitstream_bytes=660),   # 1000 cycles
            AtomType("B", bitstream_bytes=1320),  # 2000 cycles
            AtomType("C", bitstream_bytes=660),
        ]
    )
    fabric = Fabric(registry, 4)
    return registry, fabric


# ---------------------------------------------------------------------------
# Fault models and retry policy
# ---------------------------------------------------------------------------


class TestFaultModels:
    def test_no_faults_never_fails(self):
        model = NoFaults()
        assert all(
            model.check_load("A", i, i * 100) is None for i in range(50)
        )

    def test_bernoulli_rate_validated(self):
        with pytest.raises(FabricError):
            BernoulliLoadFaults(-0.1)
        with pytest.raises(FabricError):
            BernoulliLoadFaults(1.5)

    def test_bernoulli_extremes(self):
        always = BernoulliLoadFaults(1.0, seed=1)
        never = BernoulliLoadFaults(0.0, seed=1)
        for i in range(20):
            assert always.check_load("A", 0, i) is LoadFault.TRANSIENT
            assert never.check_load("A", 0, i) is None

    def test_bernoulli_deterministic_and_resettable(self):
        model = BernoulliLoadFaults(0.4, seed=99)
        first = [model.check_load("A", 0, i) for i in range(100)]
        model.reset()
        second = [model.check_load("A", 0, i) for i in range(100)]
        assert first == second
        assert any(v is LoadFault.TRANSIENT for v in first)
        assert any(v is None for v in first)

    def test_wear_kills_after_lifetime(self):
        model = ContainerWearFaults(2)
        assert model.check_load("A", 3, 0) is None
        assert model.check_load("B", 3, 10) is None
        assert model.check_load("C", 3, 20) is LoadFault.PERMANENT
        assert model.wear_of(3) == 3
        # Other containers age independently.
        assert model.check_load("A", 0, 30) is None
        model.reset()
        assert model.check_load("A", 3, 40) is None

    def test_wear_lifetime_validated(self):
        with pytest.raises(FabricError):
            ContainerWearFaults(-1)

    def test_retry_policy_validation(self):
        with pytest.raises(FabricError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(FabricError):
            RetryPolicy(backoff_cycles=-5)
        with pytest.raises(FabricError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(FabricError):
            RetryPolicy(on_exhausted="explode")

    def test_retry_policy_exponential_backoff(self):
        policy = RetryPolicy(max_retries=3, backoff_cycles=100,
                             backoff_factor=2.0)
        assert [policy.delay(k) for k in (1, 2, 3)] == [100, 200, 400]
        assert policy.allows_retry(3)
        assert not policy.allows_retry(4)

    def test_retry_jitter_validated(self):
        with pytest.raises(FabricError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(FabricError):
            RetryPolicy(jitter=1.5)

    def test_retry_jitter_is_seeded_and_replayable(self):
        """Jitter comes from a private seeded RNG: two policies with the
        same seed produce the identical delay schedule, and reset()
        replays it — no module-level entropy anywhere (RL001)."""
        make = lambda: RetryPolicy(  # noqa: E731
            max_retries=3, backoff_cycles=100, backoff_factor=2.0,
            jitter=0.5, seed=42,
        )
        a, b = make(), make()
        delays_a = [a.delay(k) for k in (1, 2, 3)]
        delays_b = [b.delay(k) for k in (1, 2, 3)]
        assert delays_a == delays_b
        # Jitter stretches each delay by at most its fraction.
        for k, delay in zip((1, 2, 3), delays_a):
            base = 100 * 2.0 ** (k - 1)
            assert base <= delay <= base * 1.5
        # The schedule actually jitters (vacuity guard)...
        assert delays_a != [100, 200, 400]
        # ...and reset() rewinds the jitter RNG exactly.
        a.reset()
        assert [a.delay(k) for k in (1, 2, 3)] == delays_a

    def test_retry_jitter_leaves_global_rng_untouched(self):
        random.seed(123)
        before = random.getstate()
        policy = RetryPolicy(backoff_cycles=100, jitter=0.9, seed=7)
        policy.delay(1)
        policy.delay(2)
        assert random.getstate() == before

    def test_backoff_delay_helper(self):
        assert backoff_delay(100.0, 2.0, 0) == 0.0
        assert backoff_delay(100.0, 2.0, 3) == 400.0
        rng = random.Random(5)
        jittered = backoff_delay(100.0, 2.0, 1, jitter=0.5, rng=rng)
        assert 100.0 <= jittered <= 150.0
        assert backoff_delay(
            100.0, 2.0, 1, jitter=0.5, rng=random.Random(5)
        ) == jittered


# ---------------------------------------------------------------------------
# Port-level fault handling
# ---------------------------------------------------------------------------


class TestPortFaultHandling:
    def test_transient_failure_retried_with_backoff(self, platform):
        registry, fabric = platform
        port = ReconfigPort(
            fabric,
            fault_model=ScriptedFaults([LoadFault.TRANSIENT]),
            retry_policy=RetryPolicy(max_retries=1, backoff_cycles=50),
        )
        port.replace_queue(["A"], fabric.space.zero(), now=0)
        # First attempt fails at 1000; the retry occupies the port for
        # backoff (50) + reload (1000) and completes at 2050.
        events = port.advance_to(3000)
        assert [e.cycle for e in events] == [2050]
        assert port.loads_failed == 1
        assert port.loads_retried == 1
        assert port.loads_started == 2
        assert port.loads_completed == 1
        assert fabric.loaded_count("A") == 1

    def test_retry_budget_exhausted_abandons_load(self, platform):
        registry, fabric = platform
        port = ReconfigPort(
            fabric,
            fault_model=ScriptedFaults(
                [LoadFault.TRANSIENT, LoadFault.TRANSIENT]
            ),
            retry_policy=RetryPolicy(max_retries=1),
        )
        port.replace_queue(["A", "B"], fabric.space.zero(), now=0)
        events = port.drain()
        # A was abandoned after two failures; B loaded normally.
        assert [e.atom_type for e in events] == ["B"]
        assert port.loads_abandoned == 1
        assert fabric.loaded_count("A") == 0
        assert fabric.loaded_count("B") == 1

    def test_on_exhausted_raise_fails_fast(self, platform):
        registry, fabric = platform
        port = ReconfigPort(
            fabric,
            fault_model=ScriptedFaults([LoadFault.TRANSIENT]),
            retry_policy=RetryPolicy(max_retries=0, on_exhausted="raise"),
        )
        port.replace_queue(["A"], fabric.space.zero(), now=0)
        with pytest.raises(TransientLoadError, match="retry budget"):
            port.advance_to(10_000)

    def test_permanent_fault_kills_container(self, platform):
        registry, fabric = platform
        port = ReconfigPort(
            fabric,
            fault_model=ScriptedFaults([LoadFault.PERMANENT]),
            retry_policy=RetryPolicy(max_retries=1),
        )
        port.replace_queue(["A"], fabric.space.zero(), now=0)
        events = port.drain()
        assert fabric.dead_count == 1
        assert fabric.usable_acs == 3
        # The retry landed on a healthy container.
        assert [e.atom_type for e in events] == ["A"]
        assert fabric.loaded_count("A") == 1

    def test_whole_fabric_dies_gracefully(self, platform):
        registry, _ = platform
        fabric = Fabric(registry, 2)
        port = ReconfigPort(
            fabric,
            fault_model=ContainerWearFaults(0),
            retry_policy=RetryPolicy(max_retries=5),
        )
        port.replace_queue(["A", "B", "C"], fabric.space.zero(), now=0)
        events = port.drain()
        assert events == []
        assert fabric.dead_count == 2
        assert fabric.usable_acs == 0
        assert port.loads_abandoned >= 1
        assert port.is_idle

    def test_drain_guard_raises_on_endless_retries(self, platform):
        registry, fabric = platform
        port = ReconfigPort(
            fabric,
            fault_model=BernoulliLoadFaults(1.0, seed=0),
            retry_policy=RetryPolicy(max_retries=10**9),
        )
        port.replace_queue(["A", "B"], fabric.space.zero(), now=0)
        with pytest.raises(SimulationError) as excinfo:
            port.drain(max_steps=100)
        message = str(excinfo.value)
        assert "'A'" in message and "pending" in message

    def test_manual_fault_injection(self, platform):
        registry, fabric = platform
        port = ReconfigPort(fabric, retry_policy=RetryPolicy(max_retries=0))
        with pytest.raises(TransientLoadError, match="idle"):
            port.fail_in_flight()
        port.replace_queue(["A"], fabric.space.zero(), now=0)
        port.fail_in_flight(LoadFault.PERMANENT)
        assert fabric.dead_count == 1
        assert port.loads_failed == 1

    def test_no_fault_path_unchanged(self, platform):
        """NoFaults must be indistinguishable from the seed behaviour."""
        registry, fabric = platform
        port = ReconfigPort(fabric, fault_model=NoFaults(),
                            retry_policy=RetryPolicy())
        port.replace_queue(["A", "B"], fabric.space.zero(), now=0)
        events = port.advance_to(10_000)
        assert [e.cycle for e in events] == [1000, 3000]
        assert port.loads_failed == 0
        assert port.loads_retried == 0
        assert port.loads_abandoned == 0


# ---------------------------------------------------------------------------
# Fabric-level fault API
# ---------------------------------------------------------------------------


class TestFabricFaults:
    def test_kill_container_shrinks_budget(self, platform):
        registry, fabric = platform
        fabric.kill_container(1)
        assert fabric.dead_count == 1
        assert fabric.usable_acs == 3
        assert fabric.is_degraded
        assert "1 dead" in repr(fabric)

    def test_kill_container_misuse(self, platform):
        registry, fabric = platform
        with pytest.raises(ContainerFaultError):
            fabric.kill_container(99)
        fabric.kill_container(0)
        with pytest.raises(ContainerFaultError):
            fabric.kill_container(0)

    def test_dead_container_never_loaded(self, platform):
        registry, fabric = platform
        fabric.kill_container(0)
        retained = fabric.space.molecule({"A": 3})
        used = {
            fabric.begin_load("A", now=0, retained=retained).index
            for _ in range(3)
        }
        assert 0 not in used
        with pytest.raises(ContainerFaultError):
            fabric.containers[0].begin_load("A", 0)

    def test_fail_load_requires_loading(self, platform):
        registry, fabric = platform
        with pytest.raises(TransientLoadError):
            fabric.containers[0].fail_load()

    def test_reset_repairs_dead_containers(self, platform):
        registry, fabric = platform
        fabric.kill_container(2)
        fabric.reset()
        assert fabric.dead_count == 0
        assert fabric.usable_acs == 4

    def test_capacity_error_is_diagnosable(self, platform):
        registry, _ = platform
        fabric = Fabric(registry, 1)
        retained = fabric.space.molecule({"A": 1})
        container = fabric.begin_load("A", now=0, retained=retained)
        container.complete_load(100)
        with pytest.raises(CapacityError) as excinfo:
            fabric.begin_load("B", now=200, retained=retained)
        message = str(excinfo.value)
        assert "'B'" in message                 # the atom that did not fit
        assert "{'A': 1}" in message            # the retained meta-molecule
        assert "AC0=loaded(A)" in message       # per-container occupancy
        assert "1/1 ACs usable" in message

    def test_eviction_select_filters_unusable_candidates(self, platform):
        registry, fabric = platform
        container = fabric.begin_load(
            "A", now=0, retained=fabric.space.zero()
        )
        container.complete_load(100)
        policy = LRUEviction()
        empty = fabric.containers[1]
        assert policy.select([empty, container]) is container
        with pytest.raises(FabricError, match="no loaded"):
            policy.select([empty])


# ---------------------------------------------------------------------------
# End-to-end chaos invariants (the benchmark H.264 platform)
# ---------------------------------------------------------------------------


FAULT_RATES = (0.0, 0.1, 0.5, 1.0)


def _sim(h264_library, h264_registry, num_acs=10, **kwargs):
    return RisppSimulator(
        h264_library, h264_registry, get_scheduler("HEF"), num_acs, **kwargs
    )


class TestChaosInvariants:
    @pytest.fixture(scope="class")
    def baseline(self, h264_library, h264_registry, small_workload):
        return _sim(h264_library, h264_registry).run(small_workload)

    @pytest.mark.parametrize("rate", FAULT_RATES)
    def test_every_si_executes_under_any_fault_rate(
        self, h264_library, h264_registry, small_workload, baseline, rate
    ):
        sim = _sim(
            h264_library,
            h264_registry,
            fault_model=BernoulliLoadFaults(rate, seed=42),
        )
        result = sim.run(small_workload)
        # Every SI execution completed (software trap fallback).
        assert result.si_executions == baseline.si_executions
        # Cycle accounting stays exact and monotone.
        assert result.total_cycles >= baseline.total_cycles
        assert all(c > 0 for c in result.per_frame_cycles)
        assert sum(result.hot_spot_cycles.values()) == sum(
            result.per_frame_cycles
        )
        if rate == 0.0:
            assert result.loads_failed == 0
            assert result.degraded_cycles == 0
        else:
            assert result.loads_failed > 0
            assert result.degraded_cycles > 0
            assert 0.0 < result.degraded_fraction <= 1.0

    def test_disabled_faults_are_bit_for_bit_free(
        self, h264_library, h264_registry, small_workload, baseline
    ):
        """fault_rate=0 must reproduce the fault-free run exactly."""
        for model in (None, NoFaults(), BernoulliLoadFaults(0.0, seed=7)):
            result = _sim(
                h264_library,
                h264_registry,
                fault_model=model,
                retry_policy=RetryPolicy(),
            ).run(small_workload)
            assert result.total_cycles == baseline.total_cycles
            assert result.per_frame_cycles == baseline.per_frame_cycles
            assert result.hot_spot_cycles == baseline.hot_spot_cycles
            assert result.loads_completed == baseline.loads_completed
            assert result.evictions == baseline.evictions

    def test_total_load_failure_equals_pure_software_system(
        self, h264_library, h264_registry, small_workload
    ):
        """100% load failure degrades exactly to the 0-AC system."""
        allfail = _sim(
            h264_library,
            h264_registry,
            fault_model=BernoulliLoadFaults(1.0, seed=3),
        ).run(small_workload)
        no_hardware = _sim(h264_library, h264_registry, num_acs=0).run(
            small_workload
        )
        assert allfail.loads_completed == 0
        assert allfail.total_cycles == no_hardware.total_cycles

    def test_all_containers_dead_still_completes(
        self, h264_library, h264_registry, small_workload
    ):
        sim = _sim(
            h264_library, h264_registry, fault_model=ContainerWearFaults(0)
        )
        result = sim.run(small_workload)
        assert result.dead_containers == sim.num_acs
        assert result.loads_completed == 0
        no_hardware = _sim(h264_library, h264_registry, num_acs=0).run(
            small_workload
        )
        assert result.total_cycles == no_hardware.total_cycles

    def test_partial_wear_degrades_between_extremes(
        self, h264_library, h264_registry, small_workload, baseline
    ):
        result = _sim(
            h264_library, h264_registry, fault_model=ContainerWearFaults(3)
        ).run(small_workload)
        no_hardware = _sim(h264_library, h264_registry, num_acs=0).run(
            small_workload
        )
        assert 0 < result.dead_containers <= 10
        assert (
            baseline.total_cycles
            <= result.total_cycles
            <= no_hardware.total_cycles
        )
        assert result.si_executions == baseline.si_executions

    def test_fault_schedule_is_deterministic_under_seed(
        self, h264_library, h264_registry, small_workload
    ):
        sim = _sim(
            h264_library,
            h264_registry,
            fault_model=BernoulliLoadFaults(0.3, seed=5),
        )
        first = sim.run(small_workload)
        second = sim.run(small_workload)  # reset() replays the schedule
        fresh = _sim(
            h264_library,
            h264_registry,
            fault_model=BernoulliLoadFaults(0.3, seed=5),
        ).run(small_workload)
        for other in (second, fresh):
            assert other.total_cycles == first.total_cycles
            assert other.loads_failed == first.loads_failed
            assert other.loads_retried == first.loads_retried
            assert other.degraded_cycles == first.degraded_cycles

    def test_molen_baseline_survives_faults_too(
        self, h264_library, h264_registry, small_workload
    ):
        molen = MolenSimulator(
            h264_library,
            h264_registry,
            10,
            fault_model=BernoulliLoadFaults(0.5, seed=9),
        )
        result = molen.run(small_workload)
        clean = MolenSimulator(h264_library, h264_registry, 10).run(
            small_workload
        )
        assert result.si_executions == clean.si_executions
        assert result.loads_failed > 0

    def test_degraded_segments_match_degraded_cycles(
        self, h264_library, h264_registry, small_workload
    ):
        result = _sim(
            h264_library,
            h264_registry,
            fault_model=BernoulliLoadFaults(0.4, seed=11),
            record_segments=True,
        ).run(small_workload)
        recorded = sum(
            s.duration for s in result.segments if s.degraded
        )
        assert recorded == result.degraded_cycles > 0

    def test_fault_counters_reported_in_summary(
        self, h264_library, h264_registry, small_workload
    ):
        result = _sim(
            h264_library,
            h264_registry,
            fault_model=BernoulliLoadFaults(0.5, seed=1),
        ).run(small_workload)
        text = result.summary()
        assert "loads failed" in text
        assert "degraded" in text
