"""Tests for the cycle-level HEF FSM model."""

import pytest

from repro import HEFScheduler, select_molecules, validate_schedule
from repro.h264.silibrary import HOT_SPOT_SIS
from repro.hw import HEFSchedulerFSM


EXPECTED_EE = {
    "DCT": 5544.0,
    "HT2x2": 396.0,
    "HT4x4": 792.0,
    "MC": 2633.0,
    "IPredHDC": 416.0,
    "IPredVDC": 416.0,
}


@pytest.fixture
def ee_problem(h264_library):
    sis = {name: h264_library.get(name) for name in HOT_SPOT_SIS["EE"]}
    selection = select_molecules(
        list(sis.values()), EXPECTED_EE, 20
    ).hardware_selection()
    return sis, selection, h264_library.space.zero()


class TestBitIdentical:
    def test_fsm_schedule_equals_software_hef(self, ee_problem):
        sis, selection, zero = ee_problem
        software = HEFScheduler().schedule(selection, sis, zero, EXPECTED_EE)
        fsm = HEFSchedulerFSM()
        hardware = fsm.schedule(selection, sis, zero, EXPECTED_EE)
        assert software.atom_sequence() == hardware.atom_sequence()
        assert [
            (s.impl.si_name, s.impl.name) for s in software.steps
        ] == [(s.impl.si_name, s.impl.name) for s in hardware.steps]

    def test_fsm_schedule_valid(self, ee_problem):
        sis, selection, zero = ee_problem
        fsm = HEFSchedulerFSM()
        schedule = fsm.schedule(selection, sis, zero, EXPECTED_EE)
        validate_schedule(schedule, selection, zero)

    def test_identical_on_me_hot_spot(self, h264_library):
        sis = {n: h264_library.get(n) for n in HOT_SPOT_SIS["ME"]}
        expected = {"SAD": 19_800.0, "SATD": 12_177.0}
        selection = select_molecules(
            list(sis.values()), expected, 14
        ).hardware_selection()
        zero = h264_library.space.zero()
        a = HEFScheduler().schedule(selection, sis, zero, expected)
        b = HEFSchedulerFSM().schedule(selection, sis, zero, expected)
        assert a.atom_sequence() == b.atom_sequence()


class TestTiming:
    def test_timing_recorded(self, ee_problem):
        sis, selection, zero = ee_problem
        fsm = HEFSchedulerFSM()
        fsm.schedule(selection, sis, zero, EXPECTED_EE)
        timing = fsm.last_timing
        assert timing is not None
        assert timing.total_cycles > 0
        for state in ("START", "EXPAND", "CLEAN", "BENEFIT",
                      "COMMIT_ATOM", "DONE"):
            assert state in timing.per_state

    def test_decision_negligible_vs_reconfiguration(self, ee_problem):
        """The paper's claim: the run-time scheduler does not slow the
        system down — one full decision costs about a percent of a
        single atom reconfiguration."""
        sis, selection, zero = ee_problem
        fsm = HEFSchedulerFSM()
        fsm.schedule(selection, sis, zero, EXPECTED_EE)
        assert fsm.decision_vs_reconfig_ratio() < 0.05

    def test_deeper_pipeline_costs_cycles(self, ee_problem):
        sis, selection, zero = ee_problem
        shallow = HEFSchedulerFSM(pipeline_depth=1)
        shallow.schedule(selection, sis, zero, EXPECTED_EE)
        deep = HEFSchedulerFSM(pipeline_depth=6)
        deep.schedule(selection, sis, zero, EXPECTED_EE)
        assert (
            deep.last_timing.total_cycles
            > shallow.last_timing.total_cycles
        )

    def test_ratio_requires_a_run(self):
        with pytest.raises(ValueError):
            HEFSchedulerFSM().decision_vs_reconfig_ratio()

    def test_pipeline_depth_validation(self):
        with pytest.raises(ValueError):
            HEFSchedulerFSM(pipeline_depth=0)

    def test_wall_time_at_table3_clock(self, ee_problem):
        sis, selection, zero = ee_problem
        fsm = HEFSchedulerFSM()
        fsm.schedule(selection, sis, zero, EXPECTED_EE)
        # Hundreds of cycles at ~79 MHz: a handful of microseconds,
        # vs 874 us for one atom load.
        assert fsm.last_timing.wall_time_us() < 874.03 / 10
