"""Checkpoint/resume bit-identity — the supervisor's acceptance test.

A sweep interrupted mid-grid (SIGINT while cells are still pending) must
leave a journal from which ``--resume`` reconstructs the *exact* report
an uninterrupted serial run would have produced: completed cells are
replayed byte-for-byte from the journal (no re-simulation), only the
missing cells run, and fault-injection cells — whose results depend on
their seeded fault schedule — round-trip identically too.
"""

import os
import signal

import pytest

from repro.exec import (
    ResultCache,
    SupervisorPolicy,
    SweepSpec,
    WorkloadSpec,
    canonical_json,
    parse_chaos_spec,
    read_journal,
    run_supervised,
    run_sweep,
)

#: Fast retries for tests: no real backoff sleeping.
FAST = dict(backoff_seconds=0.01, backoff_factor=1.0, jitter=0.0)


def payload_bytes(outcome):
    return canonical_json(outcome.result.to_json_dict()).encode("ascii")


@pytest.fixture(scope="module")
def spec():
    """Six cells including seeded fault injection — the hard case for
    resume (a replay that silently re-simulated would still match for
    fault-free cells, but not necessarily for these)."""
    return SweepSpec(
        schedulers=("HEF", "SJF"),
        ac_counts=(4, 5, 6),
        workload=WorkloadSpec(frames=1, seed=2008),
        fault_rate=0.2,
        fault_seed=7,
        max_retries=2,
    )


@pytest.fixture(scope="module")
def serial_report(spec):
    return run_sweep(spec, jobs=1)


def test_interrupt_then_resume_is_bit_identical(
    spec, serial_report, tmp_path
):
    journal_path = tmp_path / "sweep.jsonl"

    fired = []

    def interrupt_after_two(outcome):
        # SIGINT the supervisor from inside its own progress callback
        # once two cells have landed — exactly what an operator's Ctrl-C
        # mid-grid looks like to the signal handler.
        if len(fired) < 2:
            fired.append(outcome.label)
            if len(fired) == 2:
                os.kill(os.getpid(), signal.SIGINT)

    partial = run_supervised(
        spec,
        policy=SupervisorPolicy(**FAST),
        journal_path=journal_path,
        progress=interrupt_after_two,
    )
    assert partial.interrupted
    assert 2 <= len(partial) < len(spec.cells())

    state = read_journal(journal_path)
    assert state.interrupted
    assert len(state.completed) == len(partial)

    resumed = run_supervised(
        spec,
        policy=SupervisorPolicy(**FAST),
        journal_path=journal_path,
        resume_from=journal_path,
    )
    assert not resumed.interrupted
    assert resumed.resume_hits == len(partial)
    assert len(resumed) == len(spec.cells())

    # The acceptance criterion: the merged report is byte-identical to
    # an uninterrupted serial run, cell for cell, faults included.
    assert [o.cell for o in resumed] == [o.cell for o in serial_report]
    for ser, res in zip(serial_report, resumed):
        assert payload_bytes(ser) == payload_bytes(res), (
            f"cell {ser.cell.label} differs after interrupt + resume"
        )
    # Fault injection actually fired somewhere (otherwise this test
    # proves less than it claims).
    assert any(o.result.loads_failed for o in resumed)

    # The journal now covers the full grid: a second resume replays
    # everything without running a single cell.
    replay = run_supervised(
        spec,
        policy=SupervisorPolicy(**FAST),
        resume_from=journal_path,
    )
    assert replay.resume_hits == len(spec.cells())
    assert [payload_bytes(o) for o in replay] == [
        payload_bytes(o) for o in serial_report
    ]


def test_chaos_interrupted_grid_resumes_clean(spec, serial_report, tmp_path):
    """Kill-mid-grid via chaos (not SIGINT): quarantined cells re-run on
    resume once the chaos is gone, completing the full grid."""
    journal_path = tmp_path / "chaos.jsonl"
    broken = run_supervised(
        spec,
        policy=SupervisorPolicy(max_attempts=2, **FAST),
        journal_path=journal_path,
        chaos=parse_chaos_spec("HEF@5AC*:crash"),
    )
    assert [q.label for q in broken.quarantined] == ["HEF@5AC/1f/fault0.2"]
    assert len(broken) == len(spec.cells()) - 1

    resumed = run_supervised(
        spec,
        policy=SupervisorPolicy(max_attempts=2, **FAST),
        journal_path=journal_path,
        resume_from=journal_path,
    )
    assert resumed.quarantined == []
    assert resumed.resume_hits == len(spec.cells()) - 1
    assert [payload_bytes(o) for o in resumed] == [
        payload_bytes(o) for o in serial_report
    ]


def test_resume_consults_journal_before_cache(spec, tmp_path):
    """Journal replay must not depend on cache configuration: resuming
    without any cache still serves completed cells from the journal."""
    journal_path = tmp_path / "nocache.jsonl"
    cache = ResultCache(tmp_path / "cache")
    first = run_supervised(
        spec,
        cache=cache,
        policy=SupervisorPolicy(**FAST),
        journal_path=journal_path,
    )
    assert len(first) == len(spec.cells())
    resumed = run_supervised(
        spec,
        policy=SupervisorPolicy(**FAST),
        resume_from=journal_path,
    )
    assert resumed.resume_hits == len(spec.cells())
    assert [payload_bytes(o) for o in resumed] == [
        payload_bytes(o) for o in first
    ]
