"""RL004 schema-drift rule: seeded violations on a copy of the real tree.

The tests copy the real ``repro/obs`` observability triple (events,
export, replay) plus the committed fingerprint into a temp source root,
confirm RL004 is clean there, then seed each violation class the rule
exists to catch: an unreferenced new event, a schema change without an
``OBS_SCHEMA_VERSION`` bump, a stale replay-ignore entry, and a missing
fingerprint file.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.lint.analyzer import run_analysis
from repro.lint.schema import write_fingerprint
from repro.lint.config import LintConfig

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

PHANTOM_EVENT = '''

@_register
@dataclass(frozen=True)
class PhantomEvent(TraceEvent):
    """A brand-new event nothing downstream knows about yet."""

    kind = "phantom"
    cycle: int
'''


@pytest.fixture
def obs_tree(tmp_path):
    """A minimal source root holding a copy of the real obs modules."""
    root = tmp_path / "src"
    obs = root / "repro" / "obs"
    obs.mkdir(parents=True)
    for name in ("events.py", "export.py", "replay.py",
                 "event_schema.json"):
        shutil.copy(REPO_SRC / "repro" / "obs" / name, obs / name)
    return root


def rl004(root):
    return run_analysis(root, select=["RL004"])


def test_copied_real_tree_is_clean(obs_tree):
    assert rl004(obs_tree) == []


def test_new_event_must_be_wired_everywhere(obs_tree):
    events = obs_tree / "repro" / "obs" / "events.py"
    events.write_text(events.read_text() + PHANTOM_EVENT)
    findings = rl004(obs_tree)
    assert findings, "an unwired event class must fail the gate"
    assert {f.rule_id for f in findings} == {"RL004"}
    messages = " ".join(f.message for f in findings)
    # Unreferenced in export.py, unhandled in replay.py, and the
    # committed fingerprint no longer matches the source schema.
    assert "no serializer reference" in messages
    assert "neither handled" in messages
    assert "PhantomEvent" in messages
    assert "schema changed but OBS_SCHEMA_VERSION" in messages


def test_field_change_requires_version_bump(obs_tree):
    events = obs_tree / "repro" / "obs" / "events.py"
    events.write_text(
        events.read_text().replace(
            'kind = "run_start"',
            'kind = "run_start"\n    phase_of_moon: int = 0',
            1,
        )
    )
    findings = rl004(obs_tree)
    assert [f.rule_id for f in findings] == ["RL004"]
    assert "OBS_SCHEMA_VERSION" in findings[0].message


def test_version_bump_plus_refingerprint_heals_field_change(obs_tree):
    events = obs_tree / "repro" / "obs" / "events.py"
    export = obs_tree / "repro" / "obs" / "export.py"
    events.write_text(
        events.read_text().replace(
            'kind = "run_start"',
            'kind = "run_start"\n    phase_of_moon: int = 0',
            1,
        )
    )
    import re

    export.write_text(
        re.sub(
            r"OBS_SCHEMA_VERSION = (\d+)",
            lambda m: f"OBS_SCHEMA_VERSION = {int(m.group(1)) + 1}",
            export.read_text(),
            count=1,
        )
    )
    # Version bumped but fingerprint not yet re-recorded: still fails,
    # pointing at the stale committed fingerprint.
    findings = rl004(obs_tree)
    assert [f.rule_id for f in findings] == ["RL004"]
    assert "records schema version" in findings[0].message
    write_fingerprint(obs_tree, LintConfig().rule("RL004"))
    assert rl004(obs_tree) == []


def test_stale_replay_ignore_entry_is_flagged(obs_tree):
    replay = obs_tree / "repro" / "obs" / "replay.py"
    replay.write_text(
        replay.read_text().replace(
            '    "RunStart",',
            '    "RunStart",\n    "LongGoneEvent",',
            1,
        )
    )
    findings = rl004(obs_tree)
    assert [f.rule_id for f in findings] == ["RL004"]
    assert "LongGoneEvent" in findings[0].message
    assert "stale" in findings[0].message


def test_missing_fingerprint_file_is_flagged(obs_tree):
    (obs_tree / "repro" / "obs" / "event_schema.json").unlink()
    findings = rl004(obs_tree)
    assert [f.rule_id for f in findings] == ["RL004"]
    assert "--write-fingerprint" in findings[0].message


def test_write_fingerprint_output_shape(obs_tree):
    target = write_fingerprint(obs_tree, LintConfig().rule("RL004"))
    recorded = json.loads(target.read_text())
    assert recorded["schema_version"] == 5
    assert recorded["fingerprint"].startswith("sha256:")
    # Must be byte-identical to the committed one (same inputs).
    committed = (REPO_SRC / "repro" / "obs" / "event_schema.json")
    assert target.read_text() == committed.read_text()
