"""Unit tests for the Section 4.1 molecule lattice."""

import pytest

from repro import (
    AtomSpace,
    AtomSpaceMismatchError,
    InvalidMoleculeError,
    UnknownAtomTypeError,
    inf,
    sup,
)


class TestAtomSpace:
    def test_names_preserved_in_order(self):
        space = AtomSpace(["X", "Y", "Z"])
        assert space.names == ("X", "Y", "Z")

    def test_size_and_len(self, space):
        assert space.size == 3
        assert len(space) == 3

    def test_iteration_yields_names(self, space):
        assert list(space) == ["A", "B", "C"]

    def test_contains(self, space):
        assert "A" in space
        assert "Q" not in space

    def test_index_roundtrip(self, space):
        for i, name in enumerate(space.names):
            assert space.index(name) == i
            assert space.name(i) == name

    def test_index_unknown_raises(self, space):
        with pytest.raises(UnknownAtomTypeError):
            space.index("NOPE")

    def test_name_out_of_range_raises(self, space):
        with pytest.raises(UnknownAtomTypeError):
            space.name(99)

    def test_empty_space_rejected(self):
        with pytest.raises(InvalidMoleculeError):
            AtomSpace([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(InvalidMoleculeError):
            AtomSpace(["A", "A"])

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidMoleculeError):
            AtomSpace(["A", ""])

    def test_equality_by_names(self):
        assert AtomSpace(["A", "B"]) == AtomSpace(["A", "B"])
        assert AtomSpace(["A", "B"]) != AtomSpace(["B", "A"])

    def test_hashable(self):
        assert len({AtomSpace(["A"]), AtomSpace(["A"])}) == 1


class TestConstructors:
    def test_zero(self, space):
        assert space.zero().counts == (0, 0, 0)
        assert space.zero().is_zero

    def test_top_dominates_everything(self, space):
        top = space.top()
        assert space.molecule({"A": 999}) <= top

    def test_unit(self, space):
        assert space.unit("B").counts == (0, 1, 0)

    def test_units_cover_all_types(self, space):
        units = space.units()
        assert len(units) == 3
        assert sup(units).counts == (1, 1, 1)

    def test_molecule_from_mapping(self, space):
        assert space.molecule({"C": 2}).counts == (0, 0, 2)

    def test_molecule_from_sequence(self, space):
        assert space.molecule([1, 2, 3]).counts == (1, 2, 3)

    def test_wrong_arity_rejected(self, space):
        with pytest.raises(InvalidMoleculeError):
            space.molecule([1, 2])

    def test_negative_counts_rejected(self, space):
        with pytest.raises(InvalidMoleculeError):
            space.molecule([1, -1, 0])


class TestLatticeOperators:
    def test_union_is_componentwise_max(self, space):
        m = space.molecule([2, 0, 1])
        o = space.molecule([1, 3, 1])
        assert (m | o).counts == (2, 3, 1)

    def test_intersection_is_componentwise_min(self, space):
        m = space.molecule([2, 0, 1])
        o = space.molecule([1, 3, 1])
        assert (m & o).counts == (1, 0, 1)

    def test_union_neutral_element(self, space):
        m = space.molecule([2, 0, 1])
        assert (m | space.zero()) == m

    def test_intersection_neutral_element(self, space):
        m = space.molecule([2, 0, 1])
        assert (m & space.top()) == m

    def test_partial_order_le(self, space):
        assert space.molecule([1, 1, 0]) <= space.molecule([1, 2, 0])
        assert not space.molecule([2, 0, 0]) <= space.molecule([1, 2, 0])

    def test_incomparable_molecules(self, space):
        m = space.molecule([2, 0, 0])
        o = space.molecule([0, 2, 0])
        assert not m <= o and not o <= m

    def test_strict_order(self, space):
        assert space.molecule([1, 0, 0]) < space.molecule([1, 1, 0])
        assert not space.molecule([1, 0, 0]) < space.molecule([1, 0, 0])

    def test_ge_gt(self, space):
        assert space.molecule([2, 2, 2]) >= space.molecule([1, 2, 2])
        assert space.molecule([2, 2, 2]) > space.molecule([1, 2, 2])

    def test_determinant(self, space):
        assert space.molecule([1, 2, 3]).determinant == 6

    def test_missing_operator(self, space):
        available = space.molecule([2, 0, 1])
        target = space.molecule([1, 3, 2])
        assert available.missing(target).counts == (0, 3, 1)

    def test_missing_zero_iff_le(self, space):
        a = space.molecule([2, 3, 1])
        t = space.molecule([1, 3, 0])
        assert a.missing(t).determinant == 0
        assert t <= a

    def test_add(self, space):
        assert (
            space.molecule([1, 0, 2]) + space.molecule([0, 1, 1])
        ).counts == (1, 1, 3)

    def test_saturating_sub_transpose_of_missing(self, space):
        a = space.molecule([2, 0, 1])
        b = space.molecule([1, 3, 1])
        assert a.saturating_sub(b) == b.missing(a)

    def test_cross_space_operations_rejected(self, space):
        other = AtomSpace(["X", "Y", "Z"])
        with pytest.raises(AtomSpaceMismatchError):
            space.zero() | other.zero()

    def test_cross_space_compare_rejected(self, space):
        other = AtomSpace(["X", "Y", "Z"])
        with pytest.raises(AtomSpaceMismatchError):
            space.zero() <= other.zero()

    def test_non_molecule_operand_rejected(self, space):
        with pytest.raises(TypeError):
            space.zero() | 3


class TestMoleculeViews:
    def test_count_by_name(self, space):
        m = space.molecule({"B": 4})
        assert m.count("B") == 4
        assert m.count("A") == 0

    def test_as_dict_skips_zeros(self, space):
        assert space.molecule({"B": 4}).as_dict() == {"B": 4}

    def test_as_dict_include_zero(self, space):
        d = space.molecule({"B": 4}).as_dict(include_zero=True)
        assert d == {"A": 0, "B": 4, "C": 0}

    def test_atom_names(self, space):
        assert space.molecule({"A": 1, "C": 2}).atom_names() == ("A", "C")

    def test_iter_atom_instances(self, space):
        m = space.molecule({"A": 2, "C": 1})
        assert list(m.iter_atom_instances()) == ["A", "A", "C"]

    def test_equality_and_hash(self, space):
        assert space.molecule([1, 2, 0]) == space.molecule([1, 2, 0])
        assert len({space.molecule([1, 2, 0]),
                    space.molecule([1, 2, 0])}) == 1

    def test_inequality(self, space):
        assert space.molecule([1, 2, 0]) != space.molecule([1, 2, 1])
        assert space.molecule([1, 2, 0]) != "not a molecule"

    def test_repr_mentions_nonzero(self, space):
        assert "B=2" in repr(space.molecule({"B": 2}))

    def test_repr_zero(self, space):
        assert "0" in repr(space.zero())


class TestSupInf:
    def test_sup_of_set(self, space):
        ms = [space.molecule([1, 0, 2]), space.molecule([0, 3, 1])]
        assert sup(ms).counts == (1, 3, 2)

    def test_sup_dominates_members(self, space):
        ms = [space.molecule([1, 0, 2]), space.molecule([0, 3, 1])]
        s = sup(ms)
        assert all(m <= s for m in ms)

    def test_inf_of_set(self, space):
        ms = [space.molecule([1, 2, 2]), space.molecule([2, 1, 2])]
        assert inf(ms).counts == (1, 1, 2)

    def test_inf_below_members(self, space):
        ms = [space.molecule([1, 2, 2]), space.molecule([2, 1, 2])]
        i = inf(ms)
        assert all(i <= m for m in ms)

    def test_sup_empty_needs_space(self, space):
        from repro import InvalidMoleculeError

        with pytest.raises(InvalidMoleculeError):
            sup([])
        assert sup([], space) == space.zero()

    def test_inf_empty_needs_space(self, space):
        from repro import InvalidMoleculeError

        with pytest.raises(InvalidMoleculeError):
            inf([])
        assert inf([], space) == space.top()

    def test_sup_singleton(self, space):
        m = space.molecule([1, 1, 1])
        assert sup([m]) == m
