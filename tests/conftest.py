"""Shared fixtures: toy platforms, the calibrated H.264 platform, and
small workloads."""

import pytest

from repro import (
    AtomSpace,
    MoleculeImpl,
    SILibrary,
    SpecialInstruction,
    AtomRegistry,
    build_atom_registry,
    build_si_library,
    generate_workload,
)


@pytest.fixture
def space():
    """A three-atom-type space for algebra tests."""
    return AtomSpace(["A", "B", "C"])


@pytest.fixture
def toy_registry():
    """Registry matching the toy space (uniform bitstreams)."""
    return AtomRegistry.uniform(["A", "B", "C"])


def make_toy_si(space, name="SI1", software_latency=1000):
    """An SI over (A, B) with a clean upgrade ladder and one non-Pareto
    molecule (the paper's m4-style candidate)."""
    molecules = [
        MoleculeImpl(name, "m1", space.molecule({"A": 1}), 400),
        MoleculeImpl(name, "m2", space.molecule({"A": 2, "B": 2}), 120),
        MoleculeImpl(name, "m4", space.molecule({"A": 1, "B": 3}), 150),
        MoleculeImpl(name, "m3", space.molecule({"A": 4, "B": 4}), 40),
    ]
    return SpecialInstruction(name, space, software_latency, molecules)


def make_second_si(space, name="SI2", software_latency=600):
    """A second SI sharing atom type B and adding C."""
    molecules = [
        MoleculeImpl(name, "n1", space.molecule({"C": 1}), 250),
        MoleculeImpl(name, "n2", space.molecule({"B": 1, "C": 1}), 90),
        MoleculeImpl(name, "n3", space.molecule({"B": 2, "C": 2}), 35),
    ]
    return SpecialInstruction(name, space, software_latency, molecules)


@pytest.fixture
def toy_si(space):
    return make_toy_si(space)


@pytest.fixture
def toy_library(space):
    return SILibrary(space, [make_toy_si(space), make_second_si(space)])


@pytest.fixture(scope="session")
def h264_registry():
    return build_atom_registry()


@pytest.fixture(scope="session")
def h264_library(h264_registry):
    return build_si_library(h264_registry)


@pytest.fixture(scope="session")
def small_workload():
    """Three paper-style frames (fast enough for simulator tests)."""
    return generate_workload(num_frames=3, seed=11)
