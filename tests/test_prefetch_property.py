"""Property-based tests for the PREFETCH scheduler's invariants.

Hypothesis draws adversarial misprediction workloads (random phase
counts, seeds, flip rates and regime shifts) plus random fabric sizes
and prefetch knobs, and checks the properties the speculative lane
promises no matter how wrong the predictor is:

* **Determinism** — two fresh simulators over the same inputs produce
  bit-identical :class:`~repro.sim.results.SimulationResult`s.
* **Stale-victim rule** — every eviction (speculative or not) removes an
  atom instance the retained meta-molecule does not need: the currently
  selected molecules can never lose an atom to speculation.
* **Settlement identity** — every speculative load settles exactly once:
  the ``PrefetchIssued`` events equal ``PrefetchHit`` plus
  ``PrefetchWasted`` events, and the trace counts agree with the result
  counters.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedulers import PrefetchScheduler
from repro.fabric.faults import BernoulliLoadFaults, RetryPolicy
from repro.h264.silibrary import build_atom_registry, build_si_library
from repro.obs import RecordingTracer
from repro.sim.rispp import RisppSimulator
from repro.workload import AdversarialWorkloadModel

REGISTRY = build_atom_registry()
LIBRARY = build_si_library(REGISTRY)


@st.composite
def prefetch_setup(draw):
    workload = AdversarialWorkloadModel(
        num_phases=draw(st.integers(min_value=2, max_value=9)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        flip_rate=draw(st.sampled_from([0.0, 0.25, 0.5, 1.0])),
        mbs_per_phase=draw(st.sampled_from([40, 150, 396])),
        shift_period=draw(st.sampled_from([0, 2, 5])),
    ).generate()
    acs = draw(st.integers(min_value=2, max_value=18))
    confidence = draw(st.sampled_from([0.1, 0.3, 0.6, 1.0]))
    budget = draw(st.integers(min_value=1, max_value=6))
    fault_rate = draw(st.sampled_from([0.0, 0.0, 0.1]))
    fault_seed = draw(st.integers(min_value=0, max_value=2**16))
    return workload, acs, confidence, budget, fault_rate, fault_seed


def make_sim(acs, confidence, budget, fault_rate, fault_seed, tracer=None):
    return RisppSimulator(
        LIBRARY,
        REGISTRY,
        PrefetchScheduler(confidence=confidence, budget=budget),
        acs,
        fault_model=(
            BernoulliLoadFaults(fault_rate, seed=fault_seed)
            if fault_rate
            else None
        ),
        retry_policy=RetryPolicy(max_retries=2, backoff_cycles=100),
        tracer=tracer,
    )


@settings(max_examples=20, deadline=None)
@given(setup=prefetch_setup())
def test_double_run_bit_identical(setup):
    workload, acs, confidence, budget, fault_rate, fault_seed = setup
    first = make_sim(acs, confidence, budget, fault_rate, fault_seed).run(
        workload
    )
    second = make_sim(acs, confidence, budget, fault_rate, fault_seed).run(
        workload
    )
    assert first.to_json_dict() == second.to_json_dict()


@settings(max_examples=20, deadline=None)
@given(setup=prefetch_setup())
def test_evictions_only_remove_stale_atoms(setup):
    workload, acs, confidence, budget, fault_rate, fault_seed = setup
    sim = make_sim(acs, confidence, budget, fault_rate, fault_seed)
    fabric = sim.fabric
    original_pick = fabric._pick_victim

    def checked_pick(retained):
        victim = original_pick(retained)
        if victim is not None:
            atom_type = victim.atom_type
            loaded = len(fabric._loaded_groups.get(atom_type, ()))
            needed = retained.as_dict().get(atom_type, 0)
            assert loaded > needed, (
                f"evicted {atom_type!r} with {loaded} loaded but "
                f"{needed} retained: the current selection lost an atom"
            )
        return victim

    fabric._pick_victim = checked_pick
    result = sim.run(workload)
    assert result.prefetch_issued == (
        result.prefetch_hits + result.prefetch_wasted
    )


@settings(max_examples=15, deadline=None)
@given(setup=prefetch_setup())
def test_trace_settlement_matches_counters(setup):
    workload, acs, confidence, budget, fault_rate, fault_seed = setup
    tracer = RecordingTracer()
    sim = make_sim(
        acs, confidence, budget, fault_rate, fault_seed, tracer=tracer
    )
    result = sim.run(workload)
    kinds = [event.kind for event in tracer.events]
    issued = kinds.count("prefetch_issued")
    hits = kinds.count("prefetch_hit")
    wasted = kinds.count("prefetch_wasted")
    assert issued == hits + wasted
    assert issued == result.prefetch_issued
    assert hits == result.prefetch_hits
    assert wasted == result.prefetch_wasted
    # Speculative load starts are flagged and never outnumber issues.
    speculative_starts = sum(
        1
        for event in tracer.events
        if event.kind == "load_start" and getattr(event, "speculative", False)
    )
    assert speculative_starts <= issued
