"""Tests for the hardware cost model (Table 3) and calibration constants."""

import pytest

from repro import CalibrationError, HEFSchedulerCostModel
from repro.calibration import (
    AC_COUNT_SWEEP,
    BITSTREAM_BYTES_AVG,
    CIF_HEIGHT,
    CIF_WIDTH,
    MACROBLOCKS_PER_CIF_FRAME,
    PAPER_ASF_VS_MOLEN,
    PAPER_HEF_VS_ASF,
    PAPER_HEF_VS_MOLEN,
    RECONFIG_CYCLES_PER_ATOM,
    RECONFIG_TIME_US,
    bitstream_bytes_to_cycles,
    reconfig_cycles,
)
from repro.hw import average_atom_characteristics, table3


class TestTable3Model:
    def test_default_model_matches_paper_exactly(self):
        hef, atom = table3()
        assert hef.slices == 549
        assert hef.luts == 915
        assert hef.ffs == 297
        assert hef.mult18x18 == 5
        assert hef.gate_equivalents == 30_769
        assert hef.clock_delay_ns == pytest.approx(12.596)

    def test_average_atom_row(self):
        atom = average_atom_characteristics()
        assert atom.slices == 421
        assert atom.gate_equivalents == 6_944

    def test_hef_fits_one_ac(self):
        hef, atom = table3()
        assert hef.fits_one_ac()
        assert hef.slice_ratio_to(atom) == pytest.approx(1.30, abs=0.01)

    def test_scaling_with_fsm_states(self):
        small = HEFSchedulerCostModel(num_states=8).characteristics()
        large = HEFSchedulerCostModel(num_states=24).characteristics()
        assert large.slices > small.slices
        assert large.luts > small.luts

    def test_scaling_with_benefit_width(self):
        narrow = HEFSchedulerCostModel(benefit_width=12).characteristics()
        wide = HEFSchedulerCostModel(benefit_width=36).characteristics()
        assert wide.mult18x18 > narrow.mult18x18
        assert wide.clock_delay_ns > narrow.clock_delay_ns

    def test_parameter_validation(self):
        with pytest.raises(CalibrationError):
            HEFSchedulerCostModel(num_states=1)
        with pytest.raises(CalibrationError):
            HEFSchedulerCostModel(benefit_width=0)


class TestCalibrationConstants:
    def test_cif_macroblocks(self):
        assert MACROBLOCKS_PER_CIF_FRAME == 396
        assert CIF_WIDTH == 352 and CIF_HEIGHT == 288

    def test_reconfig_cycles_match_874us_at_100mhz(self):
        assert RECONFIG_CYCLES_PER_ATOM == round(RECONFIG_TIME_US * 100)

    def test_bitstream_conversion(self):
        # 66 MB at 66 MB/s is one second = 100 M cycles.
        assert bitstream_bytes_to_cycles(66_000_000) == 100_000_000

    def test_bitstream_conversion_validation(self):
        with pytest.raises(CalibrationError):
            bitstream_bytes_to_cycles(-1)
        with pytest.raises(CalibrationError):
            bitstream_bytes_to_cycles(100, clock_mhz=0)

    def test_reconfig_cycles_linear(self):
        assert reconfig_cycles(3) == 3 * RECONFIG_CYCLES_PER_ATOM
        with pytest.raises(CalibrationError):
            reconfig_cycles(-1)

    def test_paper_table2_rows_cover_the_sweep(self):
        assert len(AC_COUNT_SWEEP) == 20
        assert AC_COUNT_SWEEP[0] == 5 and AC_COUNT_SWEEP[-1] == 24
        for row in (PAPER_HEF_VS_ASF, PAPER_ASF_VS_MOLEN,
                    PAPER_HEF_VS_MOLEN):
            assert len(row) == 20

    def test_paper_headline_numbers(self):
        assert max(PAPER_HEF_VS_MOLEN) == 2.38
        avg = sum(PAPER_HEF_VS_MOLEN) / len(PAPER_HEF_VS_MOLEN)
        assert avg == pytest.approx(1.71, abs=0.015)

    def test_average_bitstream_constant(self):
        assert BITSTREAM_BYTES_AVG == 60_488
