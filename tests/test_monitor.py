"""Tests for the online execution-frequency monitor."""

import pytest

from repro import CalibrationError, ExecutionMonitor


class TestPrediction:
    def test_default_estimate_before_any_measurement(self):
        monitor = ExecutionMonitor(default_estimate=5.0)
        assert monitor.predict("ME", ["SAD"]) == {"SAD": 5.0}

    def test_profile_seeds_first_prediction(self):
        monitor = ExecutionMonitor(profile={"ME": {"SAD": 123.0}})
        assert monitor.predict("ME", ["SAD"])["SAD"] == 123.0

    def test_profile_is_per_hot_spot(self):
        monitor = ExecutionMonitor(
            profile={"ME": {"SAD": 123.0}}, default_estimate=1.0
        )
        assert monitor.predict("EE", ["SAD"])["SAD"] == 1.0

    def test_alpha_one_tracks_exactly(self):
        monitor = ExecutionMonitor(alpha=1.0)
        monitor.update("ME", {"SAD": 500})
        assert monitor.estimate("ME", "SAD") == 500.0

    def test_exponential_smoothing(self):
        monitor = ExecutionMonitor(alpha=0.5, default_estimate=0.0)
        monitor.update("ME", {"SAD": 100})
        assert monitor.estimate("ME", "SAD") == 50.0
        monitor.update("ME", {"SAD": 100})
        assert monitor.estimate("ME", "SAD") == 75.0

    def test_convergence_to_stationary_value(self):
        monitor = ExecutionMonitor(alpha=0.5, default_estimate=0.0)
        for _ in range(30):
            monitor.update("ME", {"SAD": 200})
        assert abs(monitor.estimate("ME", "SAD") - 200.0) < 1e-3

    def test_adapts_after_scene_cut(self):
        monitor = ExecutionMonitor(alpha=0.5, default_estimate=0.0)
        for _ in range(10):
            monitor.update("ME", {"SAD": 100})
        for _ in range(10):
            monitor.update("ME", {"SAD": 300})
        assert monitor.estimate("ME", "SAD") > 290.0

    def test_hot_spots_tracked_independently(self):
        monitor = ExecutionMonitor(alpha=1.0)
        monitor.update("ME", {"SAD": 10})
        monitor.update("EE", {"SAD": 99})
        assert monitor.estimate("ME", "SAD") == 10.0
        assert monitor.estimate("EE", "SAD") == 99.0


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(CalibrationError):
            ExecutionMonitor(alpha=0.0)
        with pytest.raises(CalibrationError):
            ExecutionMonitor(alpha=1.5)

    def test_negative_default_rejected(self):
        with pytest.raises(CalibrationError):
            ExecutionMonitor(default_estimate=-1.0)

    def test_negative_measurement_rejected(self):
        monitor = ExecutionMonitor()
        with pytest.raises(CalibrationError):
            monitor.update("ME", {"SAD": -5})


class TestStats:
    def test_error_stats_accumulate(self):
        monitor = ExecutionMonitor(alpha=1.0, default_estimate=0.0)
        monitor.update("ME", {"SAD": 100})  # error 100
        monitor.update("ME", {"SAD": 100})  # error 0
        stats = monitor.stats("ME", "SAD")
        assert stats.num_updates == 2
        assert stats.mean_abs_error == 50.0
        assert stats.mean_measured == 100.0
        assert stats.relative_error == 0.5

    def test_stats_zero_before_updates(self):
        monitor = ExecutionMonitor()
        stats = monitor.stats("ME", "SAD")
        assert stats.num_updates == 0
        assert stats.mean_abs_error == 0.0
        assert stats.relative_error == 0.0

    def test_known_hot_spots(self):
        monitor = ExecutionMonitor()
        monitor.update("ME", {"SAD": 1})
        monitor.update("LF", {"LF_BS4": 1})
        assert monitor.known_hot_spots() == ("LF", "ME")

    def test_reset_keeps_profile(self):
        monitor = ExecutionMonitor(
            alpha=1.0, profile={"ME": {"SAD": 42.0}}
        )
        monitor.update("ME", {"SAD": 999})
        monitor.reset()
        assert monitor.estimate("ME", "SAD") == 42.0
