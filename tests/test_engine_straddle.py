"""Span-batching edge cases: straddled completions and mid-span events.

Both trace-replay engines batch iterations into spans that end at the
next reconfiguration-port completion, counting the iteration *in
flight* when the completion lands at the old latencies.  The nastiest
corners of that rule:

* **Final-iteration straddle** — the completion lands inside the last
  iteration of the run, so it is never processed (no later
  ``advance_to`` exists).  The load must stay in flight, accounted as
  started-but-not-completed, and both engines must agree on the exact
  final cycle.
* **Mid-iteration eviction under faults** — a completion mid-span
  immediately starts the next queued load, whose placement evicts an
  LRU container *between* iteration boundaries, while fault-induced
  retries stretch the port timeline.  Eviction timing feeds the LRU
  state the next scheduling decision sees, so a divergence here skews
  whole sweeps, not just one span.

These are regression tests for the span/searchsorted straddle math in
``sim/engine.py`` (``_execute``) and ``sim/vector.py`` (``execute``):
each scenario first proves structurally that the edge actually occurs
(pending completion inside the final span; eviction cycles strictly
inside spans), then pins reference/vector equality on it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedulers import get_scheduler
from repro.fabric.faults import BernoulliLoadFaults, RetryPolicy
from repro.obs import RecordingTracer
from repro.sim.rispp import RisppSimulator
from repro.workload.trace import HotSpotTrace, Workload


def _straddle_workload(library):
    """One huge iteration: every load completion lands inside it."""
    si_names = tuple(library.si_names[:3])
    counts = np.full((1, len(si_names)), 400, dtype=np.int64)
    workload = Workload(name="straddle")
    workload.append(
        HotSpotTrace(
            hot_spot="ME",
            si_names=si_names,
            counts=counts,
            overhead_per_iteration=10,
            frame_index=0,
        )
    )
    return workload


def _eviction_workload(library):
    """Alternating hot spots on a tight fabric force mid-span evictions."""
    me = tuple(library.si_names[:2])
    ee = ("DCT", "HT4x4", "MC")
    workload = Workload(name="evict")
    for rep in range(3):
        for hot_spot, si_names in (("ME", me), ("EE", ee)):
            workload.append(
                HotSpotTrace(
                    hot_spot=hot_spot,
                    si_names=si_names,
                    counts=np.full((4, len(si_names)), 40, dtype=np.int64),
                    overhead_per_iteration=5,
                    frame_index=rep,
                )
            )
    return workload


def _run(library, registry, workload, engine, acs, fault_model=None,
         retry_policy=None, tracer=None):
    sim = RisppSimulator(
        library,
        registry,
        get_scheduler("HEF"),
        acs,
        record_segments=True,
        fault_model=fault_model,
        retry_policy=retry_policy,
        tracer=tracer,
        engine=engine,
    )
    return sim, sim.run(workload)


@pytest.mark.parametrize("engine", ["reference", "vector"])
def test_final_iteration_straddles_completion(
    h264_library, h264_registry, engine
):
    sim, result = _run(
        h264_library, h264_registry, _straddle_workload(h264_library),
        engine, acs=6,
    )
    # The edge really occurred: the first load's completion cycle lies
    # strictly inside the one-and-only iteration span, and the run
    # ended before any advance_to could process it.
    pending = sim.port.next_completion()
    assert pending is not None
    final = result.segments[-1]
    assert final.t0 < pending < final.t1 == result.total_cycles
    assert result.loads_started == 1
    assert result.loads_completed == 0


def test_final_straddle_identical_across_engines(
    h264_library, h264_registry
):
    workload = _straddle_workload(h264_library)
    _, ref = _run(h264_library, h264_registry, workload, "reference", 6)
    _, vec = _run(h264_library, h264_registry, workload, "vector", 6)
    assert ref == vec


def test_mid_iteration_eviction_under_faults(h264_library, h264_registry):
    """Evictions strictly inside spans, with retries in the timeline."""
    workload = _eviction_workload(h264_library)

    def faults():
        return (
            BernoulliLoadFaults(0.15, seed=11),
            RetryPolicy(max_retries=3),
        )

    tracer = RecordingTracer()
    fault_model, retry_policy = faults()
    _, traced = _run(
        h264_library, h264_registry, workload, "reference", 4,
        fault_model, retry_policy, tracer,
    )
    spans = [(s.t0, s.t1) for s in traced.segments]
    evictions = [
        e.cycle for e in tracer if type(e).__name__ == "Eviction"
    ]
    mid_span = [
        c for c in evictions if any(t0 < c < t1 for t0, t1 in spans)
    ]
    # The scenario must actually exercise the edge, not merely pass.
    assert mid_span, "no eviction landed strictly inside a span"
    assert traced.loads_retried > 0
    assert traced.degraded_cycles > 0

    results = [traced]
    for engine in ("reference", "vector"):
        fault_model, retry_policy = faults()
        _, result = _run(
            h264_library, h264_registry, workload, engine, 4,
            fault_model, retry_policy,
        )
        results.append(result)
    assert results[0] == results[1] == results[2]
