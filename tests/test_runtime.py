"""Tests for the Run-Time Manager."""

import pytest

from repro import (
    ExecutionMonitor,
    HEFScheduler,
    RuntimeManager,
    UnknownSpecialInstructionError,
    validate_schedule,
)


@pytest.fixture
def manager(toy_library):
    return RuntimeManager(
        toy_library,
        HEFScheduler(),
        num_acs=8,
        monitor=ExecutionMonitor(profile={"HS": {"SI1": 500, "SI2": 100}}),
        validate_schedules=True,
    )


class TestPlanning:
    def test_plan_produces_valid_schedule(self, manager, space):
        plan = manager.plan_hot_spot("HS", ["SI1", "SI2"], space.zero())
        validate_schedule(
            plan.schedule,
            plan.selection.hardware_selection(),
            space.zero(),
        )

    def test_plan_respects_ac_budget(self, manager, space):
        plan = manager.plan_hot_spot("HS", ["SI1", "SI2"], space.zero())
        assert plan.selection.num_atoms <= 8

    def test_plan_uses_monitor_expectations(self, manager, space):
        plan = manager.plan_hot_spot("HS", ["SI1", "SI2"], space.zero())
        assert plan.expected == {"SI1": 500, "SI2": 100}

    def test_plan_reuses_available_atoms(self, manager, space):
        available = space.molecule({"A": 4, "B": 4, "C": 2})
        plan = manager.plan_hot_spot("HS", ["SI1", "SI2"], available)
        assert plan.num_scheduled_atoms == 0

    def test_feedback_changes_next_plan(self, manager, space):
        plan1 = manager.plan_hot_spot("HS", ["SI1", "SI2"], space.zero())
        manager.finish_hot_spot("HS", {"SI1": 0, "SI2": 100_000})
        plan2 = manager.plan_hot_spot("HS", ["SI1", "SI2"], space.zero())
        assert plan2.expected["SI2"] > plan1.expected["SI2"]
        assert plan2.expected["SI1"] < plan1.expected["SI1"]

    def test_all_software_when_no_budget(self, toy_library, space):
        manager = RuntimeManager(toy_library, HEFScheduler(), num_acs=0)
        plan = manager.plan_hot_spot("HS", ["SI1", "SI2"], space.zero())
        assert len(plan.schedule) == 0
        assert plan.selection.num_atoms == 0


class TestDispatch:
    def test_dispatch_software_when_cold(self, manager, space):
        impl = manager.dispatch("SI1", space.zero())
        assert impl.is_software

    def test_dispatch_fastest_available(self, manager, space):
        impl = manager.dispatch("SI1", space.molecule({"A": 2, "B": 2}))
        assert impl.name == "m2"

    def test_dispatch_unknown_si(self, manager, space):
        with pytest.raises(UnknownSpecialInstructionError):
            manager.dispatch("NOPE", space.zero())

    def test_latencies_helper(self, manager, space):
        latencies = manager.latencies(
            ["SI1", "SI2"], space.molecule({"A": 1, "C": 1})
        )
        assert latencies == {"SI1": 400, "SI2": 250}

    def test_repr_mentions_scheduler(self, manager):
        assert "HEF" in repr(manager)
