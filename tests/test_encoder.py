"""Tests for the functional H.264-subset encoder and the video source."""

import numpy as np
import pytest

from repro import (
    EncoderConfig,
    H264SubsetEncoder,
    SyntheticVideo,
    TraceError,
    YuvFrame,
)
from repro.h264.silibrary import HOT_SPOT_SIS
from repro.h264.types import macroblocks, mb_view


@pytest.fixture(scope="module")
def video_frames():
    return SyntheticVideo(
        width=96, height=96, num_frames=3, seed=3, num_objects=2
    ).all_frames()


@pytest.fixture(scope="module")
def encode_result(video_frames):
    return H264SubsetEncoder(EncoderConfig()).encode(video_frames)


class TestTypes:
    def test_frame_validation(self):
        with pytest.raises(TraceError):
            YuvFrame(
                y=np.zeros((100, 100), np.uint8),  # not MB aligned
                cb=np.zeros((50, 50), np.uint8),
                cr=np.zeros((50, 50), np.uint8),
            )
        with pytest.raises(TraceError):
            YuvFrame(
                y=np.zeros((96, 96), np.uint8),
                cb=np.zeros((96, 96), np.uint8),  # wrong chroma size
                cr=np.zeros((48, 48), np.uint8),
            )

    def test_macroblock_iteration(self):
        frame = YuvFrame(
            y=np.zeros((32, 48), np.uint8),
            cb=np.zeros((16, 24), np.uint8),
            cr=np.zeros((16, 24), np.uint8),
        )
        mbs = list(macroblocks(frame))
        assert len(mbs) == 6
        assert mbs[0] == (0, 0, 0)
        assert mbs[-1] == (5, 16, 32)

    def test_mb_view_is_view(self):
        plane = np.zeros((32, 32), np.int64)
        view = mb_view(plane, 16, 0)
        view[:] = 7
        assert plane[20, 5] == 7


class TestSyntheticVideo:
    def test_deterministic(self):
        a = SyntheticVideo(width=96, height=96, num_frames=2, seed=9)
        b = SyntheticVideo(width=96, height=96, num_frames=2, seed=9)
        for fa, fb in zip(a.frames(), b.frames()):
            assert (fa.y == fb.y).all()

    def test_frames_change_over_time(self, video_frames):
        assert (video_frames[0].y != video_frames[1].y).any()

    def test_scene_cut_changes_content_strongly(self):
        video = SyntheticVideo(
            width=96, height=96, num_frames=4, seed=9, scene_cut_frame=2
        )
        frames = video.all_frames()
        diff_normal = np.abs(
            frames[1].y.astype(int) - frames[0].y.astype(int)
        ).mean()
        diff_cut = np.abs(
            frames[2].y.astype(int) - frames[1].y.astype(int)
        ).mean()
        assert diff_cut > 2 * diff_normal

    def test_resolution_validation(self):
        with pytest.raises(TraceError):
            SyntheticVideo(width=100, height=96)


class TestEncoder:
    def test_first_frame_all_intra(self, encode_result, video_frames):
        assert encode_result.intra_mbs_per_frame[0] == (
            video_frames[0].num_macroblocks
        )

    def test_later_frames_mostly_inter(self, encode_result):
        assert encode_result.intra_mbs_per_frame[1] < (
            encode_result.intra_mbs_per_frame[0] // 2
        )

    def test_reconstruction_quality(self, encode_result):
        # QP 28 on synthetic content should land well above 30 dB.
        assert all(p > 30.0 for p in encode_result.psnr_per_frame)

    def test_workload_structure(self, encode_result, video_frames):
        workload = encode_result.workload
        assert len(workload) == 3 * len(video_frames)
        assert workload.hot_spots == ("ME", "EE", "LF")
        for trace in workload:
            assert trace.si_names == HOT_SPOT_SIS[trace.hot_spot]
            assert trace.iterations == video_frames[0].num_macroblocks

    def test_first_frame_has_no_me_executions(self, encode_result):
        me0 = encode_result.workload.traces[0]
        assert me0.hot_spot == "ME"
        assert me0.total_executions() == 0

    def test_inter_frames_have_search_executions(self, encode_result):
        me1 = [
            t
            for t in encode_result.workload
            if t.hot_spot == "ME" and t.frame_index == 1
        ][0]
        totals = me1.totals()
        assert totals["SAD"] > 0
        assert totals["SATD"] > 0

    def test_satd_counts_are_multiples_of_16(self, encode_result):
        # Each half-pel candidate evaluates sixteen 4x4 SATDs.
        for trace in encode_result.workload:
            if trace.hot_spot != "ME":
                continue
            satd = trace.counts[:, trace.si_names.index("SATD")]
            assert (satd % 16 == 0).all()

    def test_intra_mbs_do_intra_prediction_not_mc(self, encode_result):
        ee0 = [
            t
            for t in encode_result.workload
            if t.hot_spot == "EE" and t.frame_index == 0
        ][0]
        totals = ee0.totals()
        assert totals["MC"] == 0
        assert totals["IPredHDC"] > 0
        assert totals["HT4x4"] > 0

    def test_deterministic(self, video_frames):
        a = H264SubsetEncoder(EncoderConfig()).encode(video_frames)
        b = H264SubsetEncoder(EncoderConfig()).encode(video_frames)
        for ta, tb in zip(a.workload, b.workload):
            assert (ta.counts == tb.counts).all()
        assert a.psnr_per_frame == b.psnr_per_frame

    def test_higher_qp_lower_quality(self, video_frames):
        fine = H264SubsetEncoder(EncoderConfig(qp=16)).encode(video_frames)
        coarse = H264SubsetEncoder(EncoderConfig(qp=44)).encode(
            video_frames
        )
        assert fine.mean_psnr > coarse.mean_psnr

    def test_deblock_can_be_disabled(self, video_frames):
        result = H264SubsetEncoder(
            EncoderConfig(deblock=False)
        ).encode(video_frames)
        for trace in result.workload:
            if trace.hot_spot == "LF":
                assert trace.total_executions() == 0

    def test_empty_sequence_rejected(self):
        with pytest.raises(TraceError):
            H264SubsetEncoder().encode([])

    def test_config_validation(self):
        with pytest.raises(TraceError):
            EncoderConfig(qp=99)
        with pytest.raises(TraceError):
            EncoderConfig(search_range=0)


class TestEncoderSimulatorIntegration:
    def test_trace_replays_through_rispp(
        self, encode_result, h264_library, h264_registry
    ):
        from repro import HEFScheduler, RisppSimulator, simulate_software

        sim = RisppSimulator(
            h264_library,
            h264_registry,
            HEFScheduler(),
            num_acs=10,
            validate_schedules=True,
        )
        accelerated = sim.run(encode_result.workload)
        software = simulate_software(h264_library, encode_result.workload)
        assert accelerated.total_cycles < software.total_cycles
