"""The sweep journal's append/read round-trip and integrity checks.

The journal is the crash-recovery backbone: its intact prefix must
always describe exactly what finished, a truncated final line (the
killed-mid-write case) must be tolerated, and anything else that smells
wrong — garbage lines, a missing header, a foreign code-version salt —
must be rejected loudly rather than replayed as if it were trustworthy.
"""

import pytest

from repro.errors import JournalError
from repro.exec import (
    QuarantinedCell,
    SweepCell,
    SweepJournal,
    WorkloadSpec,
    cell_key,
    read_journal,
)
from repro.exec.journal import JOURNAL_FORMAT, JournalState


def make_cell(num_acs=4):
    return SweepCell(
        system="RISPP",
        scheduler="HEF",
        num_acs=num_acs,
        workload=WorkloadSpec(frames=1, seed=2008),
    )


PAYLOAD = {"total_cycles": 123, "fake": True}


def test_round_trip(tmp_path):
    path = tmp_path / "sweep.jsonl"
    cell, other = make_cell(4), make_cell(5)
    with SweepJournal(path, salt="s1") as journal:
        journal.record_completed(cell, PAYLOAD, attempts=2, wall_time=0.5)
        journal.record_retry(other, 1, "timeout", "too slow", 0.1)
        journal.record_quarantined(
            QuarantinedCell(
                cell=other,
                key=cell_key(other, "s1"),
                failure="timeout",
                message="too slow",
                attempts=3,
            )
        )
        journal.record_interrupted(pending=1)
    state = read_journal(path, salt="s1")
    assert isinstance(state, JournalState)
    assert state.payload_for(cell, "s1") == PAYLOAD
    assert state.attempts[cell_key(cell, "s1")] == 2
    assert state.quarantined == {cell_key(other, "s1"): "timeout"}
    assert state.retries == 1
    assert state.interrupted
    assert not state.truncated_tail


def test_completion_supersedes_quarantine(tmp_path):
    """A resume that finishes a quarantined cell rewrites its fate."""
    path = tmp_path / "sweep.jsonl"
    cell = make_cell()
    with SweepJournal(path, salt="s1") as journal:
        journal.record_quarantined(
            QuarantinedCell(
                cell=cell,
                key=cell_key(cell, "s1"),
                failure="crash",
                message="boom",
                attempts=3,
            )
        )
        journal.record_completed(cell, PAYLOAD, attempts=1, wall_time=0.1)
    state = read_journal(path, salt="s1")
    assert state.payload_for(cell, "s1") == PAYLOAD
    assert state.quarantined == {}


def test_truncated_final_line_is_tolerated(tmp_path):
    path = tmp_path / "sweep.jsonl"
    cell = make_cell()
    with SweepJournal(path, salt="s1") as journal:
        journal.record_completed(cell, PAYLOAD, attempts=1, wall_time=0.1)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "cell", "status": "ok", "trunc')
    state = read_journal(path, salt="s1")
    assert state.truncated_tail
    assert state.payload_for(cell, "s1") == PAYLOAD


def test_mid_file_garbage_raises(tmp_path):
    path = tmp_path / "sweep.jsonl"
    cell = make_cell()
    with SweepJournal(path, salt="s1") as journal:
        journal.record_completed(cell, PAYLOAD, attempts=1, wall_time=0.1)
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    lines.insert(1, "not json at all {")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(JournalError, match="line 2"):
        read_journal(path, salt="s1")


def test_salt_mismatch_raises(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path, salt="old-code-version") as journal:
        journal.record_completed(make_cell(), PAYLOAD, 1, 0.1)
    with pytest.raises(JournalError, match="salt"):
        read_journal(path, salt="new-code-version")


def test_missing_header_raises(tmp_path):
    path = tmp_path / "sweep.jsonl"
    path.write_text('{"kind": "cell", "status": "ok"}\n', encoding="utf-8")
    with pytest.raises(JournalError, match="header"):
        read_journal(path, salt="s1")


def test_wrong_format_raises(tmp_path):
    path = tmp_path / "sweep.jsonl"
    path.write_text(
        f'{{"kind": "header", "format": {JOURNAL_FORMAT + 1}, '
        f'"salt": "s1"}}\n',
        encoding="utf-8",
    )
    with pytest.raises(JournalError, match="format"):
        read_journal(path, salt="s1")


def test_unreadable_file_raises(tmp_path):
    with pytest.raises(JournalError, match="cannot read"):
        read_journal(tmp_path / "nope.jsonl", salt="s1")


def test_empty_file_is_an_empty_state(tmp_path):
    path = tmp_path / "sweep.jsonl"
    path.write_text("", encoding="utf-8")
    state = read_journal(path, salt="s1")
    assert state.completed == {}
    assert not state.interrupted


def test_appending_does_not_duplicate_header(tmp_path):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path, salt="s1") as journal:
        journal.record_completed(make_cell(4), PAYLOAD, 1, 0.1)
    with SweepJournal(path, salt="s1") as journal:
        journal.record_completed(make_cell(5), PAYLOAD, 1, 0.1)
    lines = path.read_text(encoding="utf-8").splitlines()
    headers = [line for line in lines if '"kind":"header"' in line]
    assert len(headers) == 1
    state = read_journal(path, salt="s1")
    assert len(state.completed) == 2


def test_foreign_grid_contributes_nothing(tmp_path):
    """Keys are content-addressed: a journal from another grid is inert."""
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path, salt="s1") as journal:
        journal.record_completed(make_cell(17), PAYLOAD, 1, 0.1)
    state = read_journal(path, salt="s1")
    assert state.payload_for(make_cell(4), "s1") is None
