"""Property-based differential test: random workloads, identical engines.

Hypothesis draws arbitrary workloads over the real H.264 SI library —
random hot-spot composition, random per-iteration execution counts
(including all-zero iterations and empty-ish traces), random iteration
overheads, random AC budgets, schedulers, and fault schedules — and
asserts that the reference and vector engines produce *bit-identical*
:class:`~repro.sim.results.SimulationResult`s, and that ``auto``
matches both.

Where ``tests/test_vector_differential.py`` pins a structured grid,
this module hunts the corners no grid enumerates: single-iteration
traces, duplicate frames, hot spots revisited with wildly different
counts, retry-heavy fault schedules.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedulers import get_scheduler
from repro.fabric.faults import BernoulliLoadFaults, RetryPolicy
from repro.h264.silibrary import build_atom_registry, build_si_library
from repro.sim.rispp import RisppSimulator
from repro.workload.trace import HotSpotTrace, Workload

REGISTRY = build_atom_registry()
LIBRARY = build_si_library(REGISTRY)

#: Hot-spot SI pools the random traces draw from (subsets of the real
#: library, so molecule lattices stay meaningful).
SI_POOL = tuple(LIBRARY.si_names)


@st.composite
def random_trace(draw, frame_index):
    hot_spot = draw(st.sampled_from(["ME", "EE", "LF", "XX"]))
    num_sis = draw(st.integers(min_value=1, max_value=min(5, len(SI_POOL))))
    si_names = tuple(
        draw(
            st.lists(
                st.sampled_from(SI_POOL),
                min_size=num_sis,
                max_size=num_sis,
                unique=True,
            )
        )
    )
    iterations = draw(st.integers(min_value=1, max_value=24))
    counts = np.array(
        draw(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=12),
                    min_size=len(si_names),
                    max_size=len(si_names),
                ),
                min_size=iterations,
                max_size=iterations,
            )
        ),
        dtype=np.int64,
    )
    overhead = draw(st.integers(min_value=0, max_value=50))
    return HotSpotTrace(
        hot_spot=hot_spot,
        si_names=si_names,
        counts=counts,
        overhead_per_iteration=overhead,
        frame_index=frame_index,
    )


@st.composite
def random_workload(draw):
    num_traces = draw(st.integers(min_value=1, max_value=6))
    workload = Workload(name="hypothesis-workload")
    for i in range(num_traces):
        frame = draw(st.integers(min_value=0, max_value=2))
        workload.append(draw(random_trace(frame)))
    return workload


@st.composite
def random_setup(draw):
    workload = draw(random_workload())
    scheduler = draw(st.sampled_from(["FSFR", "ASF", "SJF", "HEF"]))
    acs = draw(st.integers(min_value=1, max_value=14))
    fault_rate = draw(st.sampled_from([0.0, 0.05, 0.3]))
    fault_seed = draw(st.integers(min_value=0, max_value=2**16))
    max_retries = draw(st.integers(min_value=0, max_value=3))
    record = draw(st.booleans())
    return workload, scheduler, acs, fault_rate, fault_seed, max_retries, record


def _run(workload, scheduler, acs, fault_rate, fault_seed, max_retries,
         record, engine):
    sim = RisppSimulator(
        LIBRARY,
        REGISTRY,
        get_scheduler(scheduler),
        acs,
        record_segments=record,
        fault_model=(
            BernoulliLoadFaults(fault_rate, seed=fault_seed)
            if fault_rate
            else None
        ),
        retry_policy=RetryPolicy(max_retries=max_retries),
        engine=engine,
    )
    return sim.run(workload)


@settings(max_examples=40, deadline=None)
@given(setup=random_setup())
def test_random_workloads_bit_identical(setup):
    ref = _run(*setup, engine="reference")
    vec = _run(*setup, engine="vector")
    auto = _run(*setup, engine="auto")
    for field in dataclasses.fields(ref):
        r = getattr(ref, field.name)
        v = getattr(vec, field.name)
        a = getattr(auto, field.name)
        assert r == v, (
            f"reference/vector diverged on {field.name!r}: {r!r} != {v!r}"
        )
        assert r == a, (
            f"reference/auto diverged on {field.name!r}: {r!r} != {a!r}"
        )


@settings(max_examples=10, deadline=None)
@given(
    frames=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
    acs=st.integers(min_value=4, max_value=16),
)
def test_model_workloads_bit_identical(frames, seed, acs):
    """The H.264 model generator under random seeds/scales."""
    from repro.workload.model import generate_workload

    workload = generate_workload(num_frames=frames, seed=seed)
    results = []
    for engine in ("reference", "vector"):
        sim = RisppSimulator(
            LIBRARY, REGISTRY, get_scheduler("HEF"), acs, engine=engine
        )
        results.append(sim.run(workload))
    assert results[0] == results[1]


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
