"""Crash-safe service: snapshot/journal recovery + live reconfiguration.

The hard gate of ISSUE 10: a service run killed at *any* tick and
recovered with ``recover_service`` must produce bit-identical journal
bytes, service digests and per-tenant reports versus the uninterrupted
run — from the newest valid snapshot when one survives, from full
journal replay when none does.  Around that gate: torn-snapshot and
torn-journal edges, divergence detection, the live-reconfiguration
control plane (tenant join / graceful drain / AC add / AC retire) with
the never-drop invariant across every transition, breaker half-open
pins, and the shared durable-file primitives in :mod:`repro._atomic`.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro._atomic import atomic_write_text, trim_torn_tail
from repro.errors import (
    FabricError,
    RecoveryError,
    ServiceCrash,
    ServiceError,
)
from repro.exec.cache import ResultCache
from repro.exec.journal import SweepJournal
from repro.exec.spec import SweepCell, WorkloadSpec
from repro.obs import RecordingTracer
from repro.obs.events import (
    AcRetired,
    ServiceRecovered,
    SnapshotWritten,
    TenantDrained,
    TenantJoined,
)
from repro.service import (
    CONTROL_ACTIONS,
    SHED_REASONS,
    CircuitBreaker,
    ControlEvent,
    ServiceConfig,
    config_fingerprint,
    derive_join_tenant,
    list_snapshots,
    load_latest_snapshot,
    make_tenant_fleet,
    parse_reconfig_spec,
    recover_service,
    run_service,
    snapshot_dir,
    validate_control_events,
    write_snapshot,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

FLEET_SIZE = 4
SOAK = dict(
    num_acs=6,
    duration=2400,
    seed=2008,
    fault_ticks=(700, 720, 740),
)


def fleet():
    return make_tenant_fleet(FLEET_SIZE, mean_gap=60, deadline_slack=400)


def soak_config(**overrides):
    return ServiceConfig(**{**SOAK, **overrides})


def control_schedule():
    """Join, drain, grow, shrink — exercised together in one run."""
    return [
        ControlEvent(
            tick=400,
            action="tenant_join",
            name="latecomer",
            spec=derive_join_tenant("latecomer", SOAK["seed"]),
        ),
        ControlEvent(tick=900, action="tenant_leave", name="tenant00"),
        ControlEvent(tick=1100, action="ac_add", count=2),
        ControlEvent(tick=1500, action="ac_remove", count=3),
    ]


def crash_run(journal, config, control_events=(), crash_at=None, cache=None):
    """One run that dies via ``crash_mode='raise'`` at ``crash_at``."""
    with pytest.raises(ServiceCrash):
        run_service(
            fleet(),
            config,
            cache=cache,
            journal_path=journal,
            control_events=control_events,
            crash_at_tick=crash_at,
            crash_mode="raise",
        )


def assert_identical(report, ref_report, journal, ref_journal):
    assert report.service_digest() == ref_report.service_digest()
    assert journal.read_bytes() == ref_journal.read_bytes()
    assert report.to_json_dict() == ref_report.to_json_dict()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The uninterrupted soak every recovery must reproduce."""
    root = tmp_path_factory.mktemp("reference")
    journal = root / "ref.jsonl"
    report = run_service(fleet(), soak_config(), journal_path=journal)
    return report, journal


@pytest.fixture(scope="module")
def reconfig_reference(tmp_path_factory):
    """The uninterrupted soak under the full control schedule."""
    root = tmp_path_factory.mktemp("reconfig_reference")
    journal = root / "ref.jsonl"
    report = run_service(
        fleet(),
        soak_config(),
        journal_path=journal,
        control_events=control_schedule(),
    )
    return report, journal


# -- atomic-file primitives ------------------------------------------------


class TestAtomicPrimitives:
    def test_atomic_write_replaces_whole_file(self, tmp_path):
        target = tmp_path / "doc.json"
        target.write_text("old")
        atomic_write_text(target, "new contents")
        assert target.read_text() == "new contents"
        # No tempfile debris left behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]

    def test_atomic_write_fsync_flag(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_text(target, "durable", fsync=True)
        assert target.read_text() == "durable"

    def test_trim_complete_file_is_noop(self, tmp_path):
        target = tmp_path / "journal.jsonl"
        target.write_text("line1\nline2\n")
        assert trim_torn_tail(target) == 0
        assert target.read_text() == "line1\nline2\n"

    def test_trim_torn_tail_drops_partial_line(self, tmp_path):
        target = tmp_path / "journal.jsonl"
        target.write_text("line1\nline2\nhalf-wri")
        assert trim_torn_tail(target) == len("half-wri")
        assert target.read_text() == "line1\nline2\n"

    def test_trim_missing_and_empty(self, tmp_path):
        assert trim_torn_tail(tmp_path / "nope.jsonl") == 0
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert trim_torn_tail(empty) == 0


class TestSweepJournalDurability:
    def cell(self):
        return SweepCell(
            system="Software", num_acs=0, workload=WorkloadSpec(frames=1)
        )

    def test_fsync_journal_round_trips(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path, fsync=True)
        journal.record_completed(
            self.cell(), {"total_cycles": 1}, attempts=1, wall_time=0.1
        )
        journal.close()
        kinds = [
            json.loads(line)["kind"]
            for line in path.read_text().splitlines()
        ]
        assert kinds == ["header", "cell"]

    def test_torn_sweep_journal_tail_is_trimmed_on_reopen(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        journal = SweepJournal(path)
        journal.record_completed(
            self.cell(), {"total_cycles": 1}, attempts=1, wall_time=0.1
        )
        journal.close()
        with path.open("a") as handle:
            handle.write('{"kind": "completed", "torn')
        journal = SweepJournal(path)  # reopen appends after trimming
        journal.record_interrupted(pending=1)
        journal.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == [
            "header",
            "cell",
            "interrupted",
        ]


# -- the crash-recovery hard gate ------------------------------------------


class TestCrashRecoveryGate:
    @pytest.mark.parametrize(
        "crash_at", [1, 150, 600, 710, 1200, 1900, 2350]
    )
    def test_kill_at_any_tick_recovers_bit_identical(
        self, tmp_path, reference, crash_at
    ):
        ref_report, ref_journal = reference
        journal = tmp_path / "crash.jsonl"
        config = soak_config(snapshot_every=250)
        crash_run(journal, config, crash_at=crash_at)
        report = recover_service(fleet(), config, journal_path=journal)
        assert_identical(report, ref_report, journal, ref_journal)

    def test_no_snapshots_full_replay(self, tmp_path, reference):
        ref_report, ref_journal = reference
        journal = tmp_path / "crash.jsonl"
        crash_run(journal, soak_config(), crash_at=1200)
        assert list_snapshots(journal) == []
        report = recover_service(
            fleet(), soak_config(), journal_path=journal
        )
        assert_identical(report, ref_report, journal, ref_journal)

    def test_snapshot_cadence_does_not_change_journal_bytes(
        self, tmp_path, reference
    ):
        _, ref_journal = reference
        journal = tmp_path / "snapped.jsonl"
        run_service(
            fleet(),
            soak_config(snapshot_every=200),
            journal_path=journal,
        )
        assert journal.read_bytes() == ref_journal.read_bytes()

    def test_snapshots_pruned_to_newest_three(self, tmp_path):
        journal = tmp_path / "soak.jsonl"
        run_service(
            fleet(),
            soak_config(snapshot_every=150),
            journal_path=journal,
        )
        assert 0 < len(list_snapshots(journal)) <= 3

    def test_recovered_run_emits_observability_events(
        self, tmp_path, reference
    ):
        ref_report, ref_journal = reference
        journal = tmp_path / "crash.jsonl"
        config = soak_config(snapshot_every=250)
        crash_run(journal, config, crash_at=1200)
        tracer = RecordingTracer()
        report = recover_service(
            fleet(), config, journal_path=journal, tracer=tracer
        )
        recovered = [
            e for e in tracer if isinstance(e, ServiceRecovered)
        ]
        assert len(recovered) == 1
        assert recovered[0].source == "snapshot"
        assert 0 < recovered[0].resume_tick < 1200
        assert_identical(report, ref_report, journal, ref_journal)

    def test_snapshot_events_emitted_while_running(self, tmp_path):
        journal = tmp_path / "soak.jsonl"
        tracer = RecordingTracer()
        run_service(
            fleet(),
            soak_config(snapshot_every=300),
            journal_path=journal,
            tracer=tracer,
        )
        written = [e for e in tracer if isinstance(e, SnapshotWritten)]
        assert written
        assert all(e.journal_offset > 0 for e in written)

    def test_recovery_under_open_breaker(self, tmp_path, reference):
        # Tick 750 is inside the fault storm's cooldown: the breaker is
        # open in the restored state and must reopen identically.
        ref_report, ref_journal = reference
        journal = tmp_path / "crash.jsonl"
        config = soak_config(snapshot_every=120)
        crash_run(journal, config, crash_at=750)
        report = recover_service(fleet(), config, journal_path=journal)
        assert_identical(report, ref_report, journal, ref_journal)

    def test_crash_before_any_event_recovers(self, tmp_path, reference):
        ref_report, ref_journal = reference
        journal = tmp_path / "crash.jsonl"
        crash_run(journal, soak_config(), crash_at=0)
        # Only the header survived; recovery replays the whole run.
        assert len(journal.read_text().splitlines()) == 1
        report = recover_service(
            fleet(), soak_config(), journal_path=journal
        )
        assert_identical(report, ref_report, journal, ref_journal)

    def test_recovering_a_completed_journal_is_idempotent(
        self, tmp_path, reference
    ):
        ref_report, ref_journal = reference
        journal = tmp_path / "done.jsonl"
        journal.write_bytes(ref_journal.read_bytes())
        report = recover_service(
            fleet(), soak_config(), journal_path=journal
        )
        assert_identical(report, ref_report, journal, ref_journal)

    def test_cold_private_cache_recovers_identically(self, tmp_path):
        config = soak_config(snapshot_every=250)
        ref_journal = tmp_path / "ref.jsonl"
        ref_report = run_service(
            fleet(),
            config,
            cache=ResultCache(tmp_path / "cache_ref"),
            journal_path=ref_journal,
        )
        journal = tmp_path / "crash.jsonl"
        cache = ResultCache(tmp_path / "cache_crash")
        crash_run(journal, config, crash_at=1200, cache=cache)
        report = recover_service(
            fleet(), config, cache=cache, journal_path=journal
        )
        assert_identical(report, ref_report, journal, ref_journal)

    def test_warm_cache_divergence_is_detected_not_silent(self, tmp_path):
        # A cache warmed *before* the crashed run started served
        # admission-free hits recovery cannot reconstruct (disk reads
        # are suppressed during replay).  The contract is detection:
        # RecoveryError, never a silently forked journal.
        config = soak_config(snapshot_every=250)
        cache = ResultCache(tmp_path / "cache")
        run_service(fleet(), config, cache=cache)  # warms the cache
        journal = tmp_path / "crash.jsonl"
        crash_run(journal, config, crash_at=1200, cache=cache)
        with pytest.raises(RecoveryError, match="diverged"):
            recover_service(
                fleet(), config, cache=cache, journal_path=journal
            )


# -- recovery edges --------------------------------------------------------


class TestRecoveryEdges:
    def crashed_journal(self, tmp_path, snapshot_every=250, crash_at=1200):
        journal = tmp_path / "crash.jsonl"
        crash_run(
            journal, soak_config(snapshot_every=snapshot_every),
            crash_at=crash_at,
        )
        return journal

    def test_torn_snapshot_falls_back(self, tmp_path, reference):
        ref_report, ref_journal = reference
        config = soak_config(snapshot_every=250)
        journal = self.crashed_journal(tmp_path)
        snaps = list_snapshots(journal)
        assert snaps
        newest = snaps[-1]
        newest.write_text(newest.read_text()[: len(newest.read_text()) // 2])
        report = recover_service(fleet(), config, journal_path=journal)
        assert_identical(report, ref_report, journal, ref_journal)

    def test_all_snapshots_corrupt_full_replay(self, tmp_path, reference):
        ref_report, ref_journal = reference
        config = soak_config(snapshot_every=250)
        journal = self.crashed_journal(tmp_path)
        for snap in list_snapshots(journal):
            snap.write_text("not json at all")
        report = recover_service(fleet(), config, journal_path=journal)
        assert_identical(report, ref_report, journal, ref_journal)

    def test_torn_journal_tail_is_trimmed(self, tmp_path, reference):
        ref_report, ref_journal = reference
        config = soak_config(snapshot_every=250)
        journal = self.crashed_journal(tmp_path)
        with journal.open("a") as handle:
            handle.write('{"kind": "complete", "tick": 99')  # torn line
        report = recover_service(fleet(), config, journal_path=journal)
        assert_identical(report, ref_report, journal, ref_journal)

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="does not exist"):
            recover_service(
                fleet(),
                soak_config(),
                journal_path=tmp_path / "nope.jsonl",
            )

    def test_empty_journal_raises(self, tmp_path):
        journal = tmp_path / "empty.jsonl"
        journal.write_text("")
        with pytest.raises(RecoveryError, match="empty"):
            recover_service(fleet(), soak_config(), journal_path=journal)

    def test_config_mismatch_raises(self, tmp_path):
        journal = self.crashed_journal(tmp_path)
        with pytest.raises(RecoveryError, match="fingerprint"):
            recover_service(
                fleet(),
                soak_config(seed=1999),
                journal_path=journal,
            )

    def test_foreign_format_raises(self, tmp_path):
        journal = self.crashed_journal(tmp_path)
        lines = journal.read_text().splitlines()
        header = json.loads(lines[0])
        header["format"] = 1
        lines[0] = json.dumps(header, sort_keys=True)
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecoveryError, match="format"):
            recover_service(fleet(), soak_config(), journal_path=journal)

    def test_tampered_tail_divergence_detected(self, tmp_path):
        journal = self.crashed_journal(tmp_path, snapshot_every=0)
        lines = journal.read_text().splitlines()
        # Flip a mid-journal line: re-execution regenerates the true
        # line and must refuse to silently fork history.
        index = len(lines) // 2
        doc = json.loads(lines[index])
        doc["tick"] = doc.get("tick", 0) + 1
        lines[index] = json.dumps(doc, sort_keys=True)
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecoveryError, match="diverged"):
            recover_service(fleet(), soak_config(), journal_path=journal)

    def test_snapshot_loader_rejects_bad_anchor(self, tmp_path):
        config = soak_config(snapshot_every=250)
        journal = self.crashed_journal(tmp_path)
        data = journal.read_bytes()
        fingerprint = config_fingerprint(fleet(), config)
        snaps = list_snapshots(journal)
        state = json.loads(snaps[-1].read_text())
        salt = state["salt"]
        assert (
            load_latest_snapshot(
                journal,
                salt=salt,
                fingerprint=fingerprint,
                journal_bytes=data,
            )
            is not None
        )
        # Truncate the journal below *every* snapshot's anchor: each
        # offset is now out of bounds, so all candidates are rejected.
        oldest = json.loads(snaps[0].read_text())
        short = data[: min(10, oldest["journal_offset"] - 1)]
        assert (
            load_latest_snapshot(
                journal,
                salt=salt,
                fingerprint=fingerprint,
                journal_bytes=short,
            )
            is None
        )
        # A prefix of the right length but the wrong bytes is rejected
        # too (anchor SHA mismatch).
        mangled = bytearray(data)
        mangled[5] ^= 0xFF  # inside the header: within every anchor
        assert (
            load_latest_snapshot(
                journal,
                salt=salt,
                fingerprint=fingerprint,
                journal_bytes=bytes(mangled),
            )
            is None
        )

    def test_write_snapshot_roundtrip(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        state = {
            "format": 1,
            "salt": "s",
            "fingerprint": "f",
            "tick": 7,
            "journal_offset": 1,
            "journal_sha": "x",
        }
        path = write_snapshot(journal, state)
        assert path.parent == snapshot_dir(journal)
        assert json.loads(path.read_text())["tick"] == 7


# -- live reconfiguration --------------------------------------------------


class TestLiveReconfiguration:
    def test_full_schedule_never_drop(self, reconfig_reference):
        report, _ = reconfig_reference
        assert report.dropped_admitted == 0
        assert report.submitted == (
            report.admitted + report.cache_hits + report.shed_total
        )
        assert sorted(report.tenants) == [
            "latecomer",
            "tenant00",
            "tenant01",
            "tenant02",
            "tenant03",
        ]

    def test_schedule_is_deterministic(
        self, tmp_path, reconfig_reference
    ):
        ref_report, ref_journal = reconfig_reference
        journal = tmp_path / "again.jsonl"
        report = run_service(
            fleet(),
            soak_config(),
            journal_path=journal,
            control_events=control_schedule(),
        )
        assert_identical(report, ref_report, journal, ref_journal)

    def test_joined_tenant_is_served(self, reconfig_reference):
        report, journal = reconfig_reference
        stats = report.tenants["latecomer"]
        assert stats.submitted > 0
        assert stats.completed + stats.cache_hits > 0
        assert '"action":"tenant_join"' in journal.read_text()

    def test_leaver_drains_gracefully(self, reconfig_reference):
        report, journal = reconfig_reference
        stats = report.tenants["tenant00"]
        assert stats.shed.get("draining", 0) > 0
        assert "draining" in SHED_REASONS
        # Admitted-before-leave work still completed: never dropped.
        assert stats.admitted == stats.completed
        drained = [
            json.loads(line)
            for line in journal.read_text().splitlines()
            if '"kind":"drained"' in line
        ]
        assert [d["tenant"] for d in drained] == ["tenant00"]
        assert drained[0]["tick"] >= 900

    def test_ac_remove_preempts_with_retire_reason(
        self, reconfig_reference
    ):
        _, journal = reconfig_reference
        lines = [
            json.loads(line)
            for line in journal.read_text().splitlines()
        ]
        removes = [
            l for l in lines
            if l.get("kind") == "control"
            and l.get("action") == "ac_remove"
        ]
        assert len(removes) == 3
        assert all(l["tick"] == 1500 for l in removes)

    def test_reconfig_events_traced(self, tmp_path):
        tracer = RecordingTracer()
        run_service(
            fleet(),
            soak_config(),
            control_events=control_schedule(),
            tracer=tracer,
        )
        joined = [e for e in tracer if isinstance(e, TenantJoined)]
        drained = [e for e in tracer if isinstance(e, TenantDrained)]
        retired = [e for e in tracer if isinstance(e, AcRetired)]
        assert [e.tenant for e in joined] == ["latecomer"]
        assert [e.tenant for e in drained] == ["tenant00"]
        assert len(retired) == 3

    def test_crash_during_reconfig_recovers_bit_identical(
        self, tmp_path, reconfig_reference
    ):
        ref_report, ref_journal = reconfig_reference
        config = soak_config(snapshot_every=250)
        for crash_at in (450, 950, 1550):
            journal = tmp_path / f"crash{crash_at}.jsonl"
            crash_run(
                journal,
                config,
                control_events=control_schedule(),
                crash_at=crash_at,
            )
            report = recover_service(
                fleet(),
                config,
                journal_path=journal,
                control_events=control_schedule(),
            )
            assert_identical(report, ref_report, journal, ref_journal)

    def test_recover_with_wrong_schedule_raises(
        self, tmp_path, reconfig_reference
    ):
        config = soak_config(snapshot_every=250)
        journal = tmp_path / "crash.jsonl"
        crash_run(
            journal,
            config,
            control_events=control_schedule(),
            crash_at=1200,
        )
        with pytest.raises(RecoveryError, match="fingerprint"):
            recover_service(fleet(), config, journal_path=journal)

    def test_ac_remove_beyond_capacity_stops_at_empty_fabric(self):
        report = run_service(
            fleet(),
            ServiceConfig(num_acs=2, duration=600, seed=2008),
            control_events=[
                ControlEvent(tick=100, action="ac_remove", count=5)
            ],
        )
        assert report.dropped_admitted == 0


class TestControlEventValidation:
    def test_actions_vocabulary(self):
        assert CONTROL_ACTIONS == (
            "tenant_join",
            "tenant_leave",
            "ac_add",
            "ac_remove",
        )

    def test_parse_round_trips(self):
        event = parse_reconfig_spec("400:tenant_join:newbie")
        assert (event.tick, event.action, event.name) == (
            400,
            "tenant_join",
            "newbie",
        )
        assert parse_reconfig_spec("10:ac_add").count == 1
        assert parse_reconfig_spec("10:ac_remove:3").count == 3

    @pytest.mark.parametrize(
        "text",
        [
            "nope",
            "x:ac_add",
            "10:fly_away",
            "10:tenant_join",
            "10:tenant_leave:",
            "10:ac_add:lots",
            "10:ac_add:2:extra",
        ],
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ServiceError):
            parse_reconfig_spec(text)

    def test_derive_join_tenant_is_deterministic(self):
        assert derive_join_tenant("x", 2008) == derive_join_tenant(
            "x", 2008
        )
        assert derive_join_tenant("x", 2008) != derive_join_tenant(
            "y", 2008
        )

    def test_join_needs_spec(self):
        with pytest.raises(ServiceError, match="no TenantSpec"):
            validate_control_events(
                ["a"],
                [ControlEvent(tick=1, action="tenant_join", name="b")],
            )

    def test_join_rejects_taken_name(self):
        spec = derive_join_tenant("a", 2008)
        with pytest.raises(ServiceError, match="already taken"):
            validate_control_events(
                ["a"],
                [
                    ControlEvent(
                        tick=1,
                        action="tenant_join",
                        name="a",
                        spec=spec,
                    )
                ],
            )

    def test_leave_rejects_unknown_tenant(self):
        with pytest.raises(ServiceError, match="not an active tenant"):
            validate_control_events(
                ["a"],
                [ControlEvent(tick=1, action="tenant_leave", name="b")],
            )

    def test_names_never_reused_after_leave(self):
        spec = derive_join_tenant("a", 2008)
        with pytest.raises(ServiceError, match="already taken"):
            validate_control_events(
                ["a"],
                [
                    ControlEvent(
                        tick=1, action="tenant_leave", name="a"
                    ),
                    ControlEvent(
                        tick=2,
                        action="tenant_join",
                        name="a",
                        spec=spec,
                    ),
                ],
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tick": -1, "action": "ac_add"},
            {"tick": 1, "action": "warp_drive"},
            {"tick": 1, "action": "tenant_leave"},
            {"tick": 1, "action": "ac_add", "count": 0},
        ],
    )
    def test_malformed_events_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            ControlEvent(**kwargs)

    def test_join_spec_name_must_match(self):
        with pytest.raises(ServiceError, match="spec name"):
            ControlEvent(
                tick=1,
                action="tenant_join",
                name="a",
                spec=derive_join_tenant("b", 2008),
            )

    def test_run_service_rejects_bad_schedule(self):
        with pytest.raises(ServiceError, match="not an active tenant"):
            run_service(
                fleet(),
                soak_config(),
                control_events=[
                    ControlEvent(
                        tick=1, action="tenant_leave", name="ghost"
                    )
                ],
            )

    def test_run_service_rejects_bad_crash_mode(self):
        with pytest.raises(ServiceError, match="crash_mode"):
            run_service(
                fleet(),
                soak_config(),
                crash_at_tick=1,
                crash_mode="gently",
            )


# -- fabric retire/add extensions ------------------------------------------


class TestFabricReshaping:
    def test_retired_containers_shrink_usable_only(self):
        from repro.fabric.fabric import Fabric
        from repro.h264.silibrary import build_atom_registry

        fabric = Fabric(build_atom_registry(), 4)
        fabric.retire_container(3)
        assert fabric.usable_acs == 3
        assert fabric.retired_count == 1
        assert fabric.dead_count == 0
        assert not fabric.is_degraded  # retirement is not a fault

    def test_retire_dead_container_rejected(self):
        from repro.fabric.fabric import Fabric
        from repro.h264.silibrary import build_atom_registry

        fabric = Fabric(build_atom_registry(), 2)
        fabric.kill_container(0)
        with pytest.raises(FabricError):
            fabric.retire_container(0)

    def test_add_containers_extends_indices(self):
        from repro.fabric.fabric import Fabric
        from repro.h264.silibrary import build_atom_registry

        fabric = Fabric(build_atom_registry(), 2)
        assert fabric.add_containers(2) == (2, 3)
        assert fabric.num_acs == 4
        assert fabric.usable_acs == 4
        with pytest.raises(FabricError):
            fabric.add_containers(-1)


# -- breaker half-open pins ------------------------------------------------


class TestBreakerHalfOpenEdges:
    def tripped(self):
        breaker = CircuitBreaker(threshold=2, window=100, cooldown=50)
        assert breaker.on_fault(10) is None
        assert breaker.on_fault(20) == "open"
        return breaker

    def test_fault_during_half_open_reopens_with_full_cooldown(self):
        breaker = self.tripped()
        assert breaker.poll(70) == "half_open"
        assert breaker.on_fault(71) == "open"
        assert breaker.trips == 2
        # The new open window is a *full* cooldown from the reopening
        # fault, not the remainder of the old one.
        assert breaker.is_open(120)
        assert not breaker.is_open(121)

    def test_single_window_fault_reopens_half_open(self):
        # One fault suffices in half_open, even below the threshold.
        breaker = self.tripped()
        assert breaker.poll(200) == "half_open"  # old faults long gone
        assert breaker.faults_in_window(200) == 0
        assert breaker.on_fault(201) == "open"

    def test_probe_successes_not_double_counted(self):
        breaker = self.tripped()
        assert breaker.poll(70) == "half_open"
        assert breaker.on_success(71) == "closed"
        # Further successes are no-ops: no transition, no state change.
        assert breaker.on_success(72) is None
        assert breaker.state == "closed"
        assert breaker.trips == 1

    def test_success_while_closed_is_noop(self):
        breaker = CircuitBreaker(threshold=2, window=100, cooldown=50)
        assert breaker.on_success(5) is None
        assert breaker.state == "closed"

    def test_close_clears_fault_window(self):
        breaker = self.tripped()
        breaker.poll(70)
        breaker.on_success(71)
        # The cleared window means the next fault starts from zero.
        assert breaker.on_fault(72) is None
        assert breaker.faults_in_window(72) == 1


# -- the subprocess SIGKILL gate (the CI job's shape) ----------------------


class TestSigkillSubprocess:
    SERVE = [
        "--tenants", "3",
        "--duration", "1500",
        "--service-acs", "6",
        "--mean-gap", "60",
        "--deadline-slack", "400",
        "--kills", "2",
        "--kill-at", "500",
        "--no-cache",
    ]

    def run_cli(self, *extra, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", "serve", *self.SERVE, *extra],
            cwd=cwd,
            env=env,
            capture_output=True,
            text=True,
        )

    def test_sigkill_then_recover_matches_uninterrupted(self, tmp_path):
        ref = self.run_cli(
            "--journal", "ref.jsonl",
            "--report-json", "ref.json",
            "--digest-only",
            cwd=tmp_path,
        )
        assert ref.returncode == 0, ref.stderr
        killed = self.run_cli(
            "--journal", "crash.jsonl",
            "--snapshot-every", "200",
            "--chaos-kill-at", "700",
            cwd=tmp_path,
        )
        assert killed.returncode in (-signal.SIGKILL, 137)
        assert list_snapshots(tmp_path / "crash.jsonl")
        recovered = self.run_cli(
            "--journal", "crash.jsonl",
            "--snapshot-every", "200",
            "--recover",
            "--report-json", "rec.json",
            "--digest-only",
            cwd=tmp_path,
        )
        assert recovered.returncode == 0, recovered.stderr
        assert recovered.stdout == ref.stdout
        assert (tmp_path / "crash.jsonl").read_bytes() == (
            tmp_path / "ref.jsonl"
        ).read_bytes()
        assert json.loads((tmp_path / "rec.json").read_text()) == (
            json.loads((tmp_path / "ref.json").read_text())
        )

    def test_recover_without_journal_flag_errors(self, tmp_path):
        result = self.run_cli("--recover", cwd=tmp_path)
        assert result.returncode == 1
        assert "--journal" in result.stderr
