"""Tests for the experiment drivers and report formatting."""

import pytest

from repro.analysis import (
    ExperimentScale,
    format_figure2,
    format_figure4,
    format_figure8,
    format_fig7_table,
    format_table1,
    format_table2,
    format_table3,
    run_figure2,
    run_figure4,
    run_figure7,
    run_figure8,
    speedup_table,
)
from repro.analysis.figures import ascii_series


@pytest.fixture(scope="module")
def tiny_sweep():
    """A very small Figure 7 sweep (3 frames, 4 AC points)."""
    scale = ExperimentScale(frames=3, ac_counts=(6, 10, 16, 24))
    return run_figure7(scale=scale)


class TestFigure2:
    def test_upgrade_finishes_earlier(self):
        result = run_figure2(num_acs=10)
        assert result.with_total_cycles <= result.without_total_cycles
        assert result.upgrade_speedup >= 1.0

    def test_upgrade_ramps_before_no_upgrade(self):
        """The paper's key claim: with gradual upgrades the execution
        rate rises before the full molecules finish loading."""
        result = run_figure2(num_acs=10)
        # First bin where each series exceeds half its peak rate.
        half_with = result.with_upgrade.max() / 2
        half_without = result.without_upgrade.max() / 2
        ramp_with = next(
            i for i, v in enumerate(result.with_upgrade) if v > half_with
        )
        ramp_without = next(
            i
            for i, v in enumerate(result.without_upgrade)
            if v > half_without
        )
        assert ramp_with < ramp_without

    def test_formatting(self):
        result = run_figure2(num_acs=8)
        text = format_figure2(result)
        assert "with upgrade" in text and "without upgrade" in text


class TestFigure4:
    def test_good_schedule_upgrades_stepwise(self):
        result = run_figure4()
        hef = result.availability["HEF"]
        # HEF reaches an intermediate molecule before the end...
        assert hef[1] == "m1"
        assert hef[3] == "m2"
        assert hef[-1] == "m3"

    def test_naive_schedule_stays_software_longer(self):
        result = run_figure4()
        naive = result.latencies["naive"]
        hef = result.latencies["HEF"]
        # Cumulative latency along the path is worse for naive.
        assert sum(naive) > sum(hef)
        assert naive[-1] == hef[-1] == 30  # both end at m3

    def test_formatting(self):
        text = format_figure4(run_figure4())
        assert "m3" in text and "HEF" in text


class TestFigure7AndTable2:
    def test_hef_never_slower_than_other_schedulers(self, tiny_sweep):
        hef = tiny_sweep.mcycles["HEF"]
        for name in ("ASF", "FSFR", "SJF"):
            for h, other in zip(hef, tiny_sweep.mcycles[name]):
                assert h <= other * 1.01  # 1% tie tolerance

    def test_molen_always_slowest_baseline(self, tiny_sweep):
        hef = tiny_sweep.mcycles["HEF"]
        molen = tiny_sweep.mcycles["Molen"]
        assert all(m >= h for h, m in zip(hef, molen))

    def test_more_acs_help_hef(self, tiny_sweep):
        hef = tiny_sweep.mcycles["HEF"]
        assert hef[-1] < hef[0]

    def test_all_faster_than_software(self, tiny_sweep):
        for series in tiny_sweep.mcycles.values():
            assert all(v < tiny_sweep.software_mcycles for v in series)

    def test_speedup_table_rows(self, tiny_sweep):
        table = speedup_table(tiny_sweep)
        assert set(table) == {
            "HEF vs ASF",
            "ASF vs Molen",
            "HEF vs Molen",
        }
        assert all(v > 0.99 for v in table["HEF vs Molen"])

    def test_hef_vs_molen_grows_with_acs(self, tiny_sweep):
        ratios = speedup_table(tiny_sweep)["HEF vs Molen"]
        assert ratios[-1] > ratios[0]

    def test_formatting(self, tiny_sweep):
        assert "Figure 7" in format_fig7_table(tiny_sweep)
        assert "HEF vs Molen" in format_table2(tiny_sweep)


class TestFigure8:
    def test_latency_steps_decrease(self):
        result = run_figure8(num_acs=10)
        for name, (cycles, lats) in result.latency_series.items():
            if len(lats) >= 2:
                # Within the observed window, upgrades only lower the
                # latency of ME/EE SIs.
                diffs = [b - a for a, b in zip(lats, lats[1:])]
                assert min(diffs) <= 0, name

    def test_all_four_sis_reported(self):
        result = run_figure8(num_acs=10)
        assert set(result.executions) == {"SAD", "SATD", "MC", "DCT"}

    def test_me_then_ee_activity(self):
        """SAD/SATD execute in the first part of the span, MC/DCT later
        — the hot spots of Figure 1 in order."""
        result = run_figure8(num_acs=10)
        sad = result.executions["SAD"]
        dct = result.executions["DCT"]
        first_sad = next(i for i, v in enumerate(sad) if v > 0)
        first_dct = next(i for i, v in enumerate(dct) if v > 0)
        assert first_sad < first_dct

    def test_formatting(self):
        text = format_figure8(run_figure8(num_acs=10))
        assert "Figure 8" in text and "SATD" in text


class TestStaticTables:
    def test_table1_contains_every_si(self, h264_library):
        text = format_table1(h264_library)
        for label in ("SATD", "(I)DCT", "MC 4", "LF_BS4"):
            assert label in text

    def test_table3_matches_paper(self):
        text = format_table3()
        assert "549" in text
        assert "30,769" in text
        assert "12.596" in text

    def test_ascii_series(self):
        bars = ascii_series([0, 5, 10], width=10)
        assert bars == ["", "#####", "##########"]


class TestAsciiPlot:
    def test_plot_renders_all_markers(self, tiny_sweep):
        from repro.analysis import ascii_plot_fig7

        text = ascii_plot_fig7(tiny_sweep)
        for marker in ("H", "M"):
            assert marker in text
        assert "Figure 7 (ASCII)" in text

    def test_plot_row_count(self, tiny_sweep):
        from repro.analysis import ascii_plot_fig7

        text = ascii_plot_fig7(tiny_sweep, height=10)
        rows = [row for row in text.splitlines()
                if row.lstrip().startswith("|") or "M |" in row]
        assert len(rows) == 10
