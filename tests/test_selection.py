"""Tests for the profit-greedy molecule selection."""

import pytest

from repro import SelectionError, select_molecules, sup


@pytest.fixture
def sis(toy_library):
    return toy_library.subset(["SI1", "SI2"])


EXPECTED = {"SI1": 1000.0, "SI2": 300.0}


class TestFeasibility:
    def test_respects_ac_budget(self, sis):
        for num_acs in range(0, 12):
            selection = select_molecules(sis, EXPECTED, num_acs)
            assert selection.num_atoms <= num_acs

    def test_zero_budget_all_software(self, sis):
        selection = select_molecules(sis, EXPECTED, 0)
        assert all(
            impl.is_software
            for impl in selection.implementations.values()
        )

    def test_meta_is_sup_of_hardware(self, sis):
        selection = select_molecules(sis, EXPECTED, 6)
        hw = selection.hardware_selection()
        if hw:
            space = sis[0].space
            assert selection.meta == sup(
                [impl.atoms for impl in hw.values()], space
            )

    def test_negative_budget_rejected(self, sis):
        with pytest.raises(SelectionError):
            select_molecules(sis, EXPECTED, -1)

    def test_empty_hot_spot_rejected(self):
        with pytest.raises(SelectionError):
            select_molecules([], EXPECTED, 4)


class TestGreedyBehaviour:
    def test_bigger_budget_never_slower(self, sis):
        previous = None
        for num_acs in range(0, 12):
            selection = select_molecules(sis, EXPECTED, num_acs)
            total = sum(
                EXPECTED[name] * selection.latency(name)
                for name in EXPECTED
            )
            if previous is not None:
                assert total <= previous + 1e-9
            previous = total

    def test_bigger_budget_selects_bigger_molecules(self, sis):
        small = select_molecules(sis, EXPECTED, 2)
        large = select_molecules(sis, EXPECTED, 10)
        assert large.num_atoms >= small.num_atoms

    def test_full_budget_selects_fastest(self, sis):
        selection = select_molecules(sis, EXPECTED, 100)
        assert selection.implementations["SI1"].name == "m3"
        assert selection.implementations["SI2"].name == "n3"

    def test_zero_expectation_gets_no_atoms(self, sis):
        selection = select_molecules(
            sis, {"SI1": 1000.0, "SI2": 0.0}, 10
        )
        assert selection.implementations["SI2"].is_software

    def test_shared_atoms_are_free(self, sis, space):
        # SI1's m2 = (A2,B2); SI2's n2 = (B1,C1) shares B with m2, so
        # once m2 is selected, n2 only costs one container.
        selection = select_molecules(sis, EXPECTED, 5)
        hw = selection.hardware_selection()
        if "SI1" in hw and hw["SI1"].name == "m2" and "SI2" in hw:
            assert selection.num_atoms <= 5

    def test_important_si_prioritised(self, sis):
        # Tight budget: the heavily-executed SI gets the atoms.
        selection = select_molecules(
            sis, {"SI1": 10_000.0, "SI2": 1.0}, 2
        )
        assert not selection.implementations["SI1"].is_software

    def test_expectation_flip_changes_selection(self, sis):
        a = select_molecules(sis, {"SI1": 10_000.0, "SI2": 1.0}, 2)
        b = select_molecules(sis, {"SI1": 1.0, "SI2": 10_000.0}, 2)
        assert (
            a.implementations["SI1"].name
            != b.implementations["SI1"].name
            or a.implementations["SI2"].name
            != b.implementations["SI2"].name
        )

    def test_deterministic(self, sis):
        a = select_molecules(sis, EXPECTED, 7)
        b = select_molecules(sis, EXPECTED, 7)
        assert {k: v.name for k, v in a.implementations.items()} == {
            k: v.name for k, v in b.implementations.items()
        }


class TestH264Selection:
    def test_me_selection_fits_every_budget(self, h264_library):
        sis = h264_library.subset(["SAD", "SATD"])
        expected = {"SAD": 19_800.0, "SATD": 12_177.0}
        for num_acs in range(5, 25):
            selection = select_molecules(sis, expected, num_acs)
            assert selection.num_atoms <= num_acs

    def test_ee_rare_sis_enter_at_big_budgets(self, h264_library):
        sis = h264_library.subset(
            ["DCT", "HT2x2", "HT4x4", "MC", "IPredHDC", "IPredVDC"]
        )
        expected = {
            "DCT": 5544.0,
            "HT2x2": 396.0,
            "HT4x4": 792.0,
            "MC": 2633.0,
            "IPredHDC": 416.0,
            "IPredVDC": 416.0,
        }
        small = select_molecules(sis, expected, 6)
        large = select_molecules(sis, expected, 24)
        small_hw = set(small.hardware_selection())
        large_hw = set(large.hardware_selection())
        assert small_hw <= large_hw
        assert len(large_hw) > len(small_hw)
