"""Tests for the pluggable eviction policies."""

import pytest

from repro import (
    FabricError,
    Fabric,
    FIFOEviction,
    LFUEviction,
    LRUEviction,
    MRUEviction,
    get_eviction_policy,
)
from repro.fabric.container import AtomContainer


def make_container(index, loaded_at, last_used, use_count):
    container = AtomContainer(index)
    container.begin_load("X", now=loaded_at)
    container.complete_load(now=loaded_at)
    container.last_used = last_used
    container.use_count = use_count
    return container


@pytest.fixture
def candidates():
    return [
        make_container(0, loaded_at=10, last_used=50, use_count=9),
        make_container(1, loaded_at=30, last_used=20, use_count=1),
        make_container(2, loaded_at=5, last_used=40, use_count=3),
    ]


class TestPolicies:
    def test_lru_picks_least_recently_used(self, candidates):
        assert LRUEviction().choose(candidates).index == 1

    def test_fifo_picks_oldest_load(self, candidates):
        assert FIFOEviction().choose(candidates).index == 2

    def test_lfu_picks_least_used(self, candidates):
        assert LFUEviction().choose(candidates).index == 1

    def test_mru_picks_most_recently_used(self, candidates):
        assert MRUEviction().choose(candidates).index == 0

    def test_registry_lookup(self):
        assert isinstance(get_eviction_policy("lru"), LRUEviction)
        assert isinstance(get_eviction_policy("FIFO"), FIFOEviction)

    def test_unknown_policy_rejected(self):
        with pytest.raises(FabricError):
            get_eviction_policy("magic")


class TestFabricIntegration:
    def test_fabric_uses_configured_policy(self, toy_registry):
        fabric = Fabric(toy_registry, 2, eviction_policy=FIFOEviction())
        space = fabric.space
        a = fabric.begin_load("A", 0, space.zero())
        a.complete_load(1)
        b = fabric.begin_load("B", 10, space.zero())
        b.complete_load(11)
        # Touch A recently: LRU would evict B, FIFO still evicts A
        # (loaded first).
        fabric.touch_atoms(space.unit("A"), 100)
        victim_holder = fabric.begin_load("C", 200, space.zero())
        assert victim_holder.atom_type == "C"
        assert fabric.loaded_count("A") == 0  # FIFO evicted A

    def test_use_count_tracked(self, toy_registry):
        fabric = Fabric(toy_registry, 1)
        a = fabric.begin_load("A", 0, fabric.space.zero())
        a.complete_load(1)
        fabric.touch_atoms(fabric.space.unit("A"), 5)
        fabric.touch_atoms(fabric.space.unit("A"), 6)
        assert fabric.containers[0].use_count == 2

    def test_policies_yield_valid_runs(
        self, h264_library, h264_registry, small_workload
    ):
        from repro import HEFScheduler, RisppSimulator

        totals = {}
        reference = None
        for name in ("LRU", "FIFO", "LFU", "MRU"):
            sim = RisppSimulator(
                h264_library,
                h264_registry,
                HEFScheduler(),
                num_acs=9,
                eviction_policy=get_eviction_policy(name),
            )
            result = sim.run(small_workload)
            totals[name] = result.total_cycles
            if reference is None:
                reference = result.si_executions
            assert result.si_executions == reference
        # All policies complete; with hot-spot churn they land close
        # together (the scheduler dominates) — a reproduction finding.
        spread = max(totals.values()) / min(totals.values())
        assert spread < 1.2
