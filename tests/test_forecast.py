"""Tests for the forecasting strategies."""

import pytest

from repro import (
    CalibrationError,
    EwmaPredictor,
    ExecutionMonitor,
    LastValuePredictor,
    SlidingWindowPredictor,
    TrendPredictor,
    predictor_factory,
)


class TestEwma:
    def test_initial(self):
        assert EwmaPredictor(10.0, alpha=0.5).predict() == 10.0

    def test_halfway_step(self):
        p = EwmaPredictor(0.0, alpha=0.5)
        p.update(100.0)
        assert p.predict() == 50.0

    def test_alpha_validation(self):
        with pytest.raises(CalibrationError):
            EwmaPredictor(1.0, alpha=0.0)

    def test_negative_initial_rejected(self):
        with pytest.raises(CalibrationError):
            EwmaPredictor(-1.0)


class TestLastValue:
    def test_tracks_exactly(self):
        p = LastValuePredictor(5.0)
        p.update(42.0)
        assert p.predict() == 42.0
        p.update(7.0)
        assert p.predict() == 7.0


class TestSlidingWindow:
    def test_initial_before_any_update(self):
        assert SlidingWindowPredictor(9.0, window=3).predict() == 9.0

    def test_mean_of_window(self):
        p = SlidingWindowPredictor(0.0, window=3)
        for v in (10, 20, 30):
            p.update(v)
        assert p.predict() == 20.0

    def test_old_values_fall_out(self):
        p = SlidingWindowPredictor(0.0, window=2)
        for v in (100, 10, 20):
            p.update(v)
        assert p.predict() == 15.0

    def test_window_validation(self):
        with pytest.raises(CalibrationError):
            SlidingWindowPredictor(0.0, window=0)


class TestTrend:
    def test_extrapolates_a_ramp(self):
        p = TrendPredictor(0.0, alpha=0.8, beta=0.8)
        for v in (10, 20, 30, 40, 50):
            p.update(v)
        # A ramp forecast should overshoot the last value towards 60.
        assert p.predict() > 50.0

    def test_never_negative(self):
        p = TrendPredictor(10.0, alpha=1.0, beta=1.0)
        p.update(100.0)
        p.update(0.0)
        assert p.predict() >= 0.0

    def test_beats_ewma_on_linear_drift(self):
        drift = [100 + 10 * i for i in range(20)]
        trend = TrendPredictor(100.0, alpha=0.5, beta=0.5)
        ewma = EwmaPredictor(100.0, alpha=0.5)
        trend_err = ewma_err = 0.0
        for v in drift:
            trend_err += abs(trend.predict() - v)
            ewma_err += abs(ewma.predict() - v)
            trend.update(v)
            ewma.update(v)
        assert trend_err < ewma_err


class TestFactory:
    def test_named_factories(self):
        assert isinstance(predictor_factory("ewma")(1.0), EwmaPredictor)
        assert isinstance(
            predictor_factory("window", window=8)(1.0),
            SlidingWindowPredictor,
        )

    def test_kwargs_forwarded(self):
        make = predictor_factory("ewma", alpha=0.25)
        assert make(10.0).alpha == 0.25

    def test_unknown_rejected(self):
        with pytest.raises(CalibrationError):
            predictor_factory("oracle")

    def test_monitor_accepts_factory(self):
        monitor = ExecutionMonitor(
            predictor_factory=predictor_factory("last")
        )
        monitor.update("ME", {"SAD": 123})
        assert monitor.estimate("ME", "SAD") == 123.0

    def test_monitor_window_strategy(self):
        monitor = ExecutionMonitor(
            predictor_factory=predictor_factory("window", window=2)
        )
        monitor.update("ME", {"SAD": 10})
        monitor.update("ME", {"SAD": 30})
        assert monitor.estimate("ME", "SAD") == 20.0
