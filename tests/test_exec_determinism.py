"""Determinism of the parallel sweep engine.

The engine's contract is that a cell is a pure function of its
configuration: a ``--jobs 4`` run must produce bit-identical
``SimulationResult`` payloads to a serial run (any hidden global-RNG or
ordering dependence would surface here), and a cache replay must be
bit-identical to both while being much cheaper.
"""

import pytest

from repro.exec import (
    ResultCache,
    SweepSpec,
    WorkloadSpec,
    canonical_json,
    run_sweep,
)


@pytest.fixture(scope="module")
def fig7_like_spec():
    """A reduced Figure 7 grid: schedulers x AC counts + baselines.

    Small enough for CI, but it exercises every system, molecule
    upgrades, evictions at the small AC counts, and the software run.
    """
    return SweepSpec(
        schedulers=("HEF", "SJF", "ASF", "FSFR"),
        ac_counts=(5, 10),
        workload=WorkloadSpec(frames=3, seed=2008),
        include_molen=True,
        include_software=True,
    )


@pytest.fixture(scope="module")
def serial_report(fig7_like_spec):
    return run_sweep(fig7_like_spec, jobs=1)


def payload_bytes(outcome):
    """The canonical byte encoding of one cell's full result."""
    return canonical_json(outcome.result.to_json_dict()).encode("ascii")


def test_parallel_matches_serial_bit_for_bit(fig7_like_spec, serial_report):
    parallel = run_sweep(fig7_like_spec, jobs=4)
    assert len(parallel) == len(serial_report)
    for ser, par in zip(serial_report, parallel):
        assert ser.cell == par.cell
        assert payload_bytes(ser) == payload_bytes(par), (
            f"cell {ser.cell.label} differs between serial and --jobs 4"
        )


def test_parallel_matches_serial_with_faults():
    """Fault injection is seed-driven, so it must parallelise too."""
    spec = SweepSpec(
        schedulers=("HEF",),
        ac_counts=(5, 8),
        workload=WorkloadSpec(frames=2, seed=2008),
        include_molen=True,
        fault_rate=0.2,
        fault_seed=7,
        max_retries=2,
    )
    serial = run_sweep(spec, jobs=1)
    parallel = run_sweep(spec, jobs=4)
    assert [payload_bytes(o) for o in serial] == [
        payload_bytes(o) for o in parallel
    ]
    # The fault schedule actually fired (otherwise this test is vacuous).
    assert any(o.result.loads_failed for o in serial)


def test_repeated_serial_runs_are_identical(fig7_like_spec, serial_report):
    again = run_sweep(fig7_like_spec, jobs=1)
    assert [payload_bytes(o) for o in serial_report] == [
        payload_bytes(o) for o in again
    ]


def test_report_preserves_cell_enumeration_order(
    fig7_like_spec, serial_report
):
    cells = fig7_like_spec.cells()
    assert [o.cell for o in serial_report] == cells


def test_parallel_cached_sweep_acceptance(
    fig7_like_spec, serial_report, tmp_path
):
    """The PR's acceptance criterion, end to end.

    A Figure-7-scale sweep with ``jobs=4`` produces byte-identical
    per-cell results to the serial run; a second invocation completes
    with 100% cache hits and, by the recorded per-cell timings, at
    least 5x lower wall time.
    """
    cache = ResultCache(tmp_path / "sweep-cache")
    first = run_sweep(fig7_like_spec, jobs=4, cache=cache)
    assert first.cache_hits == 0
    # Byte-identical to serial, cell by cell.
    assert [payload_bytes(o) for o in first] == [
        payload_bytes(o) for o in serial_report
    ]

    second = run_sweep(fig7_like_spec, jobs=4, cache=cache)
    # 100% cache hits...
    assert second.cache_hits == len(fig7_like_spec.cells())
    assert second.cache_misses == 0
    # ...still byte-identical...
    assert [payload_bytes(o) for o in second] == [
        payload_bytes(o) for o in first
    ]
    # ...and >= 5x cheaper by the recorded per-cell wall times.
    assert first.total_wall_time >= 5 * second.total_wall_time, (
        f"cache replay not 5x cheaper: first {first.total_wall_time:.3f}s, "
        f"second {second.total_wall_time:.3f}s"
    )


def test_cache_hit_payloads_match_parallel_worker_payloads(tmp_path):
    """What the cache serves is exactly what a worker computed."""
    spec = SweepSpec(
        schedulers=("HEF",),
        ac_counts=(6,),
        workload=WorkloadSpec(frames=2, seed=2008),
        record_segments=True,
    )
    cache = ResultCache(tmp_path / "cache")
    fresh = run_sweep(spec, jobs=1, cache=cache)
    replay = run_sweep(spec, jobs=1, cache=cache)
    assert replay.cache_hits == 1
    assert payload_bytes(fresh.outcomes[0]) == payload_bytes(
        replay.outcomes[0]
    )
    # Segments survived the round trip (Figure 2/8 style runs).
    assert replay.outcomes[0].result.segments is not None
    assert (
        replay.outcomes[0].result.segments
        == fresh.outcomes[0].result.segments
    )
