"""Tests for the behavioural system simulators."""

import numpy as np
import pytest

from repro import (
    BaseProcessor,
    HEFScheduler,
    HotSpotTrace,
    MolenSimulator,
    RisppSimulator,
    Workload,
    simulate_software,
)
from repro.calibration import RECONFIG_CYCLES_PER_ATOM


@pytest.fixture
def platform(h264_library, h264_registry):
    return h264_library, h264_registry


def make_sim(platform, num_acs=10, **kwargs):
    library, registry = platform
    return RisppSimulator(
        library, registry, HEFScheduler(), num_acs, **kwargs
    )


class TestSoftwareBaseline:
    def test_matches_trace_accounting(self, platform, small_workload):
        library, _ = platform
        proc = BaseProcessor()
        result = simulate_software(library, small_workload, proc)
        manual = small_workload.software_cycles(
            {si.name: si.software_latency for si in library},
            trap_overhead=proc.trap_overhead,
        )
        manual += len(small_workload.traces) * proc.hot_spot_entry_overhead
        assert result.total_cycles == manual

    def test_per_frame_cycles_sum_to_total(self, platform, small_workload):
        library, _ = platform
        result = simulate_software(library, small_workload)
        assert sum(result.per_frame_cycles) == result.total_cycles

    def test_si_executions_recorded(self, platform, small_workload):
        library, _ = platform
        result = simulate_software(library, small_workload)
        assert result.si_executions == small_workload.totals()


class TestRisppSimulator:
    def test_beats_software(self, platform, small_workload):
        library, _ = platform
        hw = make_sim(platform, num_acs=10).run(small_workload)
        sw = simulate_software(library, small_workload)
        assert hw.total_cycles < sw.total_cycles

    def test_deterministic(self, platform, small_workload):
        a = make_sim(platform).run(small_workload)
        b = make_sim(platform).run(small_workload)
        assert a.total_cycles == b.total_cycles

    def test_rerun_resets_state(self, platform, small_workload):
        sim = make_sim(platform)
        a = sim.run(small_workload)
        b = sim.run(small_workload)
        assert a.total_cycles == b.total_cycles

    def test_more_acs_never_hurt_hef_much(self, platform, small_workload):
        # HEF with twice the fabric should not be slower (small slack for
        # selection-induced bigger molecules on a tiny run).
        few = make_sim(platform, num_acs=6).run(small_workload)
        many = make_sim(platform, num_acs=20).run(small_workload)
        assert many.total_cycles < few.total_cycles * 1.05

    def test_zero_acs_equals_software(self, platform, small_workload):
        library, _ = platform
        hw = make_sim(platform, num_acs=0).run(small_workload)
        sw = simulate_software(library, small_workload)
        assert hw.total_cycles == sw.total_cycles

    def test_validated_schedules(self, platform, small_workload):
        sim = make_sim(platform, num_acs=10, validate_schedules=True)
        sim.run(small_workload)  # raises on any invalid schedule

    def test_loads_bounded_by_port_time(self, platform, small_workload):
        result = make_sim(platform, num_acs=10).run(small_workload)
        assert (
            result.loads_completed * RECONFIG_CYCLES_PER_ATOM * 0.9
            <= result.total_cycles
        )

    def test_segments_recorded_on_request(self, platform, small_workload):
        result = make_sim(
            platform, num_acs=10, record_segments=True
        ).run(small_workload)
        assert result.segments
        assert result.latency_events

    def test_segments_cover_run_contiguously(self, platform, small_workload):
        result = make_sim(
            platform, num_acs=10, record_segments=True
        ).run(small_workload)
        segments = sorted(result.segments, key=lambda s: s.t0)
        for a, b in zip(segments, segments[1:]):
            assert a.t1 <= b.t0
        assert segments[-1].t1 == result.total_cycles

    def test_segment_executions_sum_to_workload(
        self, platform, small_workload
    ):
        result = make_sim(
            platform, num_acs=10, record_segments=True
        ).run(small_workload)
        per_si = {}
        for segment in result.segments:
            for name, count in zip(segment.si_names, segment.executions):
                per_si[name] = per_si.get(name, 0) + count
        assert per_si == small_workload.totals()

    def test_no_segments_by_default(self, platform, small_workload):
        result = make_sim(platform, num_acs=10).run(small_workload)
        assert result.segments is None
        with pytest.raises(ValueError):
            result.executions_per_window("SAD")


class TestMolenBaseline:
    def test_hef_never_slower_than_molen(self, platform, small_workload):
        library, registry = platform
        hef = make_sim(platform, num_acs=12).run(small_workload)
        molen = MolenSimulator(library, registry, 12).run(small_workload)
        assert hef.total_cycles <= molen.total_cycles

    def test_molen_beats_software(self, platform, small_workload):
        library, registry = platform
        molen = MolenSimulator(library, registry, 12).run(small_workload)
        sw = simulate_software(library, small_workload)
        assert molen.total_cycles < sw.total_cycles

    def test_molen_never_uses_intermediate_molecules(
        self, platform, small_workload
    ):
        library, registry = platform
        molen = MolenSimulator(
            library, registry, 12, record_segments=True
        )
        result = molen.run(small_workload)
        # Latencies observed must be either software(+trap) or a final
        # molecule latency per SI — never an intermediate upgrade level
        # that the selection did not choose.  We verify the weaker, exact
        # invariant: per (frame, hot spot), each SI shows at most TWO
        # distinct latencies (software, then the selected molecule).
        seen = {}
        for segment in result.segments:
            key = (segment.frame_index, segment.hot_spot)
            for name, latency in zip(segment.si_names, segment.latencies):
                seen.setdefault(key, {}).setdefault(name, set()).add(
                    latency
                )
        for per_si in seen.values():
            for latencies in per_si.values():
                assert len(latencies) <= 2


class TestCycleAccountingExactness:
    def test_single_trace_manual_accounting(self, toy_library,
                                            toy_registry):
        """One SI, one molecule, hand-computed cycle count."""
        proc = BaseProcessor(trap_overhead=10, hot_spot_entry_overhead=0)
        counts = np.full((100, 2), 0, dtype=np.int64)
        counts[:, 0] = 2  # two SI1 executions per iteration
        trace = HotSpotTrace(
            hot_spot="HS",
            si_names=("SI1", "SI2"),
            counts=counts,
            overhead_per_iteration=5,
        )
        workload = Workload("manual", [trace])
        sim = RisppSimulator(
            toy_library, toy_registry, HEFScheduler(), num_acs=1,
            processor=proc,
        )
        result = sim.run(workload)
        # With one AC only SI1/m1 (A1, 400 cycles) fits.  The atom loads
        # in RECONFIG cycles; before that SI1 runs at 1000+10.
        load_cycles = toy_registry.reconfig_cycles("A")
        slow_iteration = 2 * 1010 + 5
        fast_iteration = 2 * 400 + 5
        done = 0
        now = 0
        while done < 100:
            if now < load_cycles:
                now += slow_iteration
            else:
                now += fast_iteration
            done += 1
        assert result.total_cycles == now
