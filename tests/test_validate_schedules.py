"""Every scheduler must produce condition-(1)+(2)-valid schedules.

``RuntimeManager(validate_schedules=True)`` re-checks each schedule
against :func:`repro.core.schedule.validate_schedule` before returning
it.  These tests run every registered scheduler across the benchmark
H.264 SI library — from cold fabric and from partial availability — and
verify that a deliberately corrupted schedule is rejected.
"""

import pytest

from repro import (
    HOT_SPOT_ORDER,
    HOT_SPOT_SIS,
    InvalidScheduleError,
    RisppSimulator,
    RuntimeManager,
    Schedule,
    available_schedulers,
    get_scheduler,
    validate_schedule,
)

ALL_SCHEDULERS = available_schedulers()


class TestAllSchedulersValidate:
    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    @pytest.mark.parametrize("hot_spot", HOT_SPOT_ORDER)
    def test_plans_validate_from_cold_fabric(
        self, h264_library, h264_registry, name, hot_spot
    ):
        manager = RuntimeManager(
            h264_library, get_scheduler(name), num_acs=10,
            validate_schedules=True,
        )
        plan = manager.plan_hot_spot(
            hot_spot,
            HOT_SPOT_SIS[hot_spot],
            h264_library.space.zero(),
        )
        assert plan.hot_spot == hot_spot

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_plans_validate_from_partial_availability(
        self, h264_library, h264_registry, name
    ):
        """Re-planning on a warm fabric (a_0 != 0) must also validate."""
        manager = RuntimeManager(
            h264_library, get_scheduler(name), num_acs=8,
            validate_schedules=True,
        )
        space = h264_library.space
        # Leftovers from a previous hot spot: a few loaded atoms.
        available = space.molecule({space.names[0]: 2, space.names[1]: 1})
        for hot_spot in HOT_SPOT_ORDER:
            manager.plan_hot_spot(
                hot_spot, HOT_SPOT_SIS[hot_spot], available
            )

    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_full_simulation_with_validation(
        self, h264_library, h264_registry, small_workload, name
    ):
        """A whole workload replay with validation on never raises."""
        sim = RisppSimulator(
            h264_library,
            h264_registry,
            get_scheduler(name),
            num_acs=10,
            validate_schedules=True,
        )
        result = sim.run(small_workload)
        assert result.total_cycles > 0


class TestCorruptedScheduleRejected:
    @pytest.fixture
    def plan(self, h264_library):
        manager = RuntimeManager(
            h264_library, get_scheduler("HEF"), num_acs=10
        )
        plan = manager.plan_hot_spot(
            "EE", HOT_SPOT_SIS["EE"], h264_library.space.zero()
        )
        assert len(plan.schedule) > 1
        return plan

    def test_dropped_load_raises(self, h264_library, plan):
        corrupted = Schedule(
            h264_library.space, plan.schedule.loads[:-1], ()
        )
        with pytest.raises(InvalidScheduleError, match="condition"):
            validate_schedule(
                corrupted,
                plan.selection.hardware_selection(),
                h264_library.space.zero(),
            )

    def test_duplicated_load_raises(self, h264_library, plan):
        loads = list(plan.schedule.loads)
        corrupted = Schedule(h264_library.space, loads + [loads[0]], ())
        with pytest.raises(InvalidScheduleError):
            validate_schedule(
                corrupted,
                plan.selection.hardware_selection(),
                h264_library.space.zero(),
            )

    def test_wrong_initial_availability_raises(self, h264_library, plan):
        # Claim an atom the schedule actually loads was already present:
        # the load multiset then exceeds what condition (2) requires.
        space = h264_library.space
        scheduled_atom = plan.schedule.loads[0].atom_type
        with pytest.raises(InvalidScheduleError):
            validate_schedule(
                plan.schedule,
                plan.selection.hardware_selection(),
                space.molecule({scheduled_atom: 1}),
            )
