"""Whole-program lint rules (RL008–RL011) and their engine.

Three kinds of coverage:

* **fixture packages** under ``tests/lint_fixtures/program/`` — each a
  miniature source tree with ``# expect: <RULE>`` tags on deliberately
  bad lines; the tests require findings to match the tags exactly;
* **real-tree regression** — every whole-program rule must be *clean*
  on the repository's actual source tree (violations are fixed by
  refactor, not allowlisted);
* **unit tests** for the building blocks: the import-graph builder,
  the symbol table, the dataflow summaries and the result cache.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.lint import (
    RULE_DEFAULTS,
    ImportEdge,
    IterationSemantics,
    LintCache,
    LintConfig,
    ModuleSymbols,
    Semantics,
    Summary,
    SymbolDef,
    assign_layers,
    build_program,
    collect_references,
    module_symbols,
    run_analysis,
    ruleset_fingerprint,
)
from repro.lint.cache import CACHE_VERSION
from repro.lint.dataflow import TAINTED, UNORDERED, DataflowEngine, FloatSemantics
from repro.lint.graph import module_dotted_name

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_SRC = REPO_ROOT / "src"
FIXTURES = Path(__file__).parent / "lint_fixtures" / "program"

_EXPECT = re.compile(r"#\s*expect:\s*([A-Z0-9 ]+?)\s*$")

#: Layer contract matching the layering fixture's two-layer shape.
FIXTURE_LAYERS = {
    "RL008": {
        "layers": {
            "core": ["repro/core/*"],
            "exec": ["repro/exec/*"],
            "pkg": ["repro/__init__.py"],
        },
        "imports": {
            "core": [],
            "exec": ["core"],
            "pkg": ["core", "exec"],
        },
    }
}


def expected_triples(root):
    """``(relpath, line, rule)`` for every ``# expect:`` tag under root."""
    expected = []
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines, start=1):
            match = _EXPECT.search(line)
            if match:
                for rule_id in match.group(1).split():
                    expected.append((relpath, lineno, rule_id))
    return sorted(expected)


def finding_triples(findings):
    return sorted((f.path, f.line, f.rule_id) for f in findings)


def run_fixture(name, rule_id, overrides=None):
    config = LintConfig(overrides)
    return run_analysis(FIXTURES / name, config, select={rule_id})


class TestLayeringFixture:
    def test_violations_match_expect_tags(self):
        findings = run_fixture("layering", "RL008", FIXTURE_LAYERS)
        want = expected_triples(FIXTURES / "layering")
        assert want, "fixture has no '# expect:' tags"
        assert finding_triples(findings) == want

    def test_type_checking_import_is_exempt(self):
        findings = run_fixture("layering", "RL008", FIXTURE_LAYERS)
        assert all("types.py" not in f.path for f in findings)

    def test_unassigned_module_is_reported(self):
        overrides = {
            "RL008": {
                "layers": {
                    "core": ["repro/core/*"],
                    "exec": ["repro/exec/*"],
                    # repro/__init__.py deliberately unassigned
                },
                "imports": {"core": [], "exec": ["core"]},
            }
        }
        findings = run_fixture("layering", "RL008", overrides)
        assert any(
            f.path == "repro/__init__.py"
            and "not covered by any declared layer" in f.message
            for f in findings
        )

    def test_cyclic_contract_is_rejected(self):
        overrides = {
            "RL008": {
                "layers": FIXTURE_LAYERS["RL008"]["layers"],
                "imports": {
                    "core": ["exec"],
                    "exec": ["core"],
                    "pkg": [],
                },
            }
        }
        findings = run_fixture("layering", "RL008", overrides)
        assert any("cyclic" in f.message for f in findings)
        assert all(f.path == "pyproject.toml" for f in findings)

    def test_unknown_layer_in_contract_is_rejected(self):
        overrides = {
            "RL008": {
                "layers": FIXTURE_LAYERS["RL008"]["layers"],
                "imports": {
                    "core": [],
                    "exec": ["core", "nonexistent"],
                    "pkg": ["core", "exec"],
                },
            }
        }
        findings = run_fixture("layering", "RL008", overrides)
        assert any("nonexistent" in f.message for f in findings)


class TestTaintFixture:
    def test_cross_module_taint_matches_expect_tags(self):
        findings = run_fixture("taint", "RL009")
        want = expected_triples(FIXTURES / "taint")
        assert want, "fixture has no '# expect:' tags"
        assert finding_triples(findings) == want

    def test_sorted_pipelines_are_clean(self):
        findings = run_fixture("taint", "RL009")
        messages = [f.message for f in findings]
        assert all("write_sorted" not in m for m in messages)


class TestFloatFlowFixture:
    OVERRIDES = {"RL010": {"include": ["repro/*"]}}

    def test_cross_module_float_flow_matches_expect_tags(self):
        findings = run_fixture("floatflow", "RL010", self.OVERRIDES)
        want = expected_triples(FIXTURES / "floatflow")
        assert want, "fixture has no '# expect:' tags"
        assert finding_triples(findings) == want


class TestDeadcodeFixture:
    def test_dead_exports_match_expect_tags(self):
        findings = run_fixture("deadcode", "RL011")
        want = expected_triples(FIXTURES / "deadcode")
        assert want, "fixture has no '# expect:' tags"
        assert finding_triples(findings) == want

    def test_drift_messages_name_the_problems(self):
        findings = run_fixture("deadcode", "RL011")
        messages = " ".join(f.message for f in findings)
        assert "'gone_helper'" in messages  # stale __all__ entry
        assert "twice" in messages  # duplicate __all__ entry
        assert "'dead_helper'" in messages  # unreferenced public def


class TestRealTreeIsClean:
    """The PR's contract: violations were fixed by refactor."""

    def _run(self, rule_id):
        config = LintConfig.load(REPO_ROOT / "pyproject.toml")
        return run_analysis(REPO_SRC, config, select={rule_id})

    def test_rl008_layering_clean(self):
        assert self._run("RL008") == []

    def test_rl009_iteration_taint_clean(self):
        assert self._run("RL009") == []

    def test_rl010_float_contamination_clean(self):
        assert self._run("RL010") == []

    def test_rl011_dead_exports_clean(self):
        assert self._run("RL011") == []


class TestImportGraph:
    def test_module_dotted_name(self):
        assert module_dotted_name("repro/core/__init__.py") == (
            "repro.core",
            True,
        )
        assert module_dotted_name("repro/sim/engine.py") == (
            "repro.sim.engine",
            False,
        )

    def test_edges_resolve_relative_imports(self):
        program = build_program(FIXTURES / "layering")
        edges = [
            e
            for e in program.edges()
            if e.source == "repro/core/engine.py"
        ]
        targets = {e.target for e in edges}
        assert "repro/exec/runner.py" in targets
        assert "repro/core/api.py" in targets
        assert all(isinstance(e, ImportEdge) for e in edges)
        assert all(not e.type_checking for e in edges)

    def test_type_checking_flag_is_set(self):
        program = build_program(FIXTURES / "layering")
        edges = [
            e
            for e in program.edges()
            if e.source == "repro/core/types.py"
            and e.target == "repro/exec/runner.py"
        ]
        assert edges
        assert all(e.type_checking for e in edges)

    def test_layer_assignment_first_match_wins(self):
        layers = {
            "special": ["repro/core/engine.py"],
            "core": ["repro/core/*"],
        }
        assert assign_layers(layers, "repro/core/engine.py") == "special"
        assert assign_layers(layers, "repro/core/api.py") == "core"
        assert assign_layers(layers, "elsewhere.py") is None


class TestSymbolTable:
    def test_module_symbols_defs_and_dunder_all(self):
        program = build_program(FIXTURES / "deadcode")
        symbols = module_symbols(program.modules["repro/api.py"])
        assert isinstance(symbols, ModuleSymbols)
        assert set(symbols.defs) == {
            "used_helper",
            "dead_helper",
            "_private_helper",
        }
        assert isinstance(symbols.defs["used_helper"], SymbolDef)
        assert symbols.defs["used_helper"].public
        assert not symbols.defs["_private_helper"].public
        assert symbols.dunder_all == [
            "used_helper",
            "gone_helper",
            "used_helper",
        ]

    def test_collect_references_sees_imports_and_strings(self):
        tree = ast.parse(
            "from pkg import alpha\n"
            "beta.gamma()\n"
            "name = 'delta'\n"
        )
        refs = collect_references(tree)
        assert {"alpha", "beta", "gamma", "delta"} <= refs


class TestDataflowCore:
    def test_summary_call_flags(self):
        summary = Summary(returns=0, returns_when_args_flagged=TAINTED)
        assert summary.call_flags(any_arg_flagged=False) == 0
        assert summary.call_flags(any_arg_flagged=True) == TAINTED

    def test_iteration_semantics_is_a_semantics(self):
        assert issubclass(IterationSemantics, Semantics)
        assert issubclass(FloatSemantics, Semantics)

    def test_taint_summaries_cross_fixture_modules(self):
        program = build_program(FIXTURES / "taint")
        engine = DataflowEngine(program, IterationSemantics())
        engine.compute_summaries()
        unstable = engine.summaries[("repro/pool.py", "unstable_names")]
        stable = engine.summaries[("repro/pool.py", "stable_names")]
        assert unstable.returns & TAINTED
        assert stable.returns == 0

    def test_float_summaries_cross_fixture_modules(self):
        program = build_program(FIXTURES / "floatflow")
        engine = DataflowEngine(program, FloatSemantics())
        engine.compute_summaries()
        scale = engine.summaries[("repro/model.py", "scale_factor")]
        whole = engine.summaries[("repro/model.py", "whole_steps")]
        assert scale.returns & TAINTED
        assert whole.returns == 0

    def test_set_literal_is_unordered_not_tainted(self):
        semantics = IterationSemantics()
        shell = ast.parse("{1, 2}", mode="eval").body
        assert semantics.display_flags(shell, 0) == UNORDERED


class TestResultCache:
    def _write_tree(self, root, body):
        (root / "repro").mkdir(parents=True, exist_ok=True)
        (root / "repro" / "mod.py").write_text(body, encoding="utf-8")

    def test_warm_run_hits_and_content_change_invalidates(self, tmp_path):
        src = tmp_path / "src"
        self._write_tree(src, "import time\n")
        config = LintConfig()
        cache = LintCache(tmp_path / "cachedir", "fp-1")
        first = run_analysis(src, config, select={"RL001"}, cache=cache)
        assert [f.rule_id for f in first] == ["RL001"]
        assert cache.misses > 0

        warm = LintCache(tmp_path / "cachedir", "fp-1")
        second = run_analysis(src, config, select={"RL001"}, cache=warm)
        assert second == first
        assert warm.hits > 0
        assert warm.misses == 0

        # Changing the file's content must invalidate its entry.
        self._write_tree(src, "import os\nimport time\n")
        third_cache = LintCache(tmp_path / "cachedir", "fp-1")
        third = run_analysis(
            src, config, select={"RL001"}, cache=third_cache
        )
        assert third_cache.misses > 0
        assert [f.line for f in third] == [2]

    def test_fingerprint_change_invalidates(self, tmp_path):
        src = tmp_path / "src"
        self._write_tree(src, "import time\n")
        config = LintConfig()
        run_analysis(
            src,
            config,
            select={"RL001"},
            cache=LintCache(tmp_path / "cachedir", "fp-1"),
        )
        other = LintCache(tmp_path / "cachedir", "fp-2")
        run_analysis(src, config, select={"RL001"}, cache=other)
        assert other.hits == 0
        assert other.misses > 0

    def test_cache_entries_are_versioned_json(self, tmp_path):
        src = tmp_path / "src"
        self._write_tree(src, "x = 1\n")
        cache = LintCache(tmp_path / "cachedir", "fp-1")
        run_analysis(src, LintConfig(), select={"RL001"}, cache=cache)
        entries = list((tmp_path / "cachedir").glob("*.json"))
        assert entries
        import json

        for entry in entries:
            payload = json.loads(entry.read_text(encoding="utf-8"))
            assert payload["version"] == CACHE_VERSION
            assert payload["fingerprint"] == "fp-1"

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        src = tmp_path / "src"
        self._write_tree(src, "import time\n")
        config = LintConfig()
        cache = LintCache(tmp_path / "cachedir", "fp-1")
        run_analysis(src, config, select={"RL001"}, cache=cache)
        for entry in (tmp_path / "cachedir").glob("*.json"):
            entry.write_text("{not json", encoding="utf-8")
        again = LintCache(tmp_path / "cachedir", "fp-1")
        findings = run_analysis(
            src, config, select={"RL001"}, cache=again
        )
        assert [f.rule_id for f in findings] == ["RL001"]
        assert again.hits == 0

    def test_ruleset_fingerprint_tracks_options_and_select(self):
        base = ruleset_fingerprint(RULE_DEFAULTS, None)
        assert base == ruleset_fingerprint(RULE_DEFAULTS, None)
        tweaked = dict(RULE_DEFAULTS)
        tweaked["RL001"] = dict(RULE_DEFAULTS["RL001"], enabled=False)
        assert ruleset_fingerprint(tweaked, None) != base
        assert ruleset_fingerprint(RULE_DEFAULTS, ["RL001"]) != base
