"""Golden trace-schema tests.

The committed files under ``tests/data/`` pin the event-log schema *and*
the simulation's determinism: the same pinned run (HEF, 6 ACs, 1 frame,
seed 2008) must produce byte-for-byte the same serialised events on
every machine.  If an intentional change breaks this, regenerate the
goldens **and bump** ``OBS_SCHEMA_VERSION`` — consumers of stored logs
rely on the version gate, never on silent drift.
"""

import copy
import json
from pathlib import Path

import pytest

from repro import RecordingTracer, generate_workload
from repro.core.schedulers import get_scheduler
from repro.errors import ObservabilityError
from repro.obs import (
    OBS_SCHEMA,
    OBS_SCHEMA_VERSION,
    events_from_json_dict,
    events_to_json_dict,
    read_event_log,
    to_chrome_trace,
    validate_chrome_trace,
    write_event_log,
)
from repro.sim.rispp import RisppSimulator

DATA = Path(__file__).parent / "data"
GOLDEN_LOG = DATA / "golden_event_log.json"
GOLDEN_CHROME = DATA / "golden_chrome_trace.json"
GOLDEN_PREFETCH_LOG = DATA / "golden_prefetch_event_log.json"


@pytest.fixture(scope="module")
def pinned_events(h264_library, h264_registry):
    """The events of the pinned golden run."""
    tracer = RecordingTracer()
    sim = RisppSimulator(
        h264_library, h264_registry, get_scheduler("HEF"), 6, tracer=tracer
    )
    sim.run(generate_workload(num_frames=1, seed=2008))
    return list(tracer)


@pytest.fixture(scope="module")
def pinned_prefetch_events(h264_library, h264_registry):
    """The pinned speculative run (PREFETCH, 16 ACs, 2 frames).

    16 ACs because that is where the h264 selection leaves fabric slack
    and speculative loads actually reach the bus — the golden must pin
    the *speculating* code path, not an all-drops no-op.
    """
    tracer = RecordingTracer()
    sim = RisppSimulator(
        h264_library,
        h264_registry,
        get_scheduler("PREFETCH", confidence=0.3, budget=4),
        16,
        tracer=tracer,
    )
    sim.run(generate_workload(num_frames=2, seed=2008))
    return list(tracer)


def _canonical(obj):
    return json.dumps(obj, sort_keys=True)


def test_golden_event_log_matches(pinned_events):
    golden = json.loads(GOLDEN_LOG.read_text())
    assert _canonical(events_to_json_dict(pinned_events)) == (
        _canonical(golden)
    )


def test_golden_log_round_trips(pinned_events):
    assert events_from_json_dict(json.loads(GOLDEN_LOG.read_text())) == (
        pinned_events
    )


def test_golden_chrome_trace_matches(pinned_events):
    golden = json.loads(GOLDEN_CHROME.read_text())
    assert _canonical(to_chrome_trace(pinned_events)) == _canonical(golden)


def test_golden_chrome_trace_validates():
    validate_chrome_trace(json.loads(GOLDEN_CHROME.read_text()))


def test_schema_envelope_fields(pinned_events):
    log = events_to_json_dict(pinned_events)
    assert log["schema"] == OBS_SCHEMA
    assert log["schema_version"] == OBS_SCHEMA_VERSION
    assert log["num_events"] == len(log["events"]) == len(pinned_events)


def test_unknown_schema_version_rejected(pinned_events):
    log = events_to_json_dict(pinned_events)
    bumped = copy.deepcopy(log)
    bumped["schema_version"] = OBS_SCHEMA_VERSION + 1
    with pytest.raises(ObservabilityError):
        events_from_json_dict(bumped)


def test_previous_schema_version_rejected(pinned_events):
    # v3 logs predate the prefetch events; replaying one against the v4
    # reader must fail loudly, not silently drop or misread events.
    log = events_to_json_dict(pinned_events)
    downgraded = copy.deepcopy(log)
    downgraded["schema_version"] = OBS_SCHEMA_VERSION - 1
    with pytest.raises(ObservabilityError):
        events_from_json_dict(downgraded)


def test_golden_prefetch_event_log_matches(pinned_prefetch_events):
    golden = json.loads(GOLDEN_PREFETCH_LOG.read_text())
    assert _canonical(events_to_json_dict(pinned_prefetch_events)) == (
        _canonical(golden)
    )


def test_golden_prefetch_log_round_trips(pinned_prefetch_events):
    events = events_from_json_dict(
        json.loads(GOLDEN_PREFETCH_LOG.read_text())
    )
    assert events == pinned_prefetch_events


def test_golden_prefetch_log_exercises_speculation():
    # Guard against regenerating the golden from a configuration where
    # speculation never fires: the pinned log must contain the whole
    # prefetch event family, including flagged speculative load starts.
    golden = json.loads(GOLDEN_PREFETCH_LOG.read_text())
    kinds = [event["kind"] for event in golden["events"]]
    issued = kinds.count("prefetch_issued")
    hits = kinds.count("prefetch_hit")
    wasted = kinds.count("prefetch_wasted")
    assert issued > 0 and hits > 0
    assert issued == hits + wasted
    assert any(
        event["kind"] == "load_start" and event.get("speculative")
        for event in golden["events"]
    )


def test_wrong_schema_name_rejected(pinned_events):
    log = events_to_json_dict(pinned_events)
    renamed = copy.deepcopy(log)
    renamed["schema"] = "somebody-elses-log"
    with pytest.raises(ObservabilityError):
        events_from_json_dict(renamed)


def test_unknown_event_kind_rejected(pinned_events):
    log = events_to_json_dict(pinned_events)
    mutated = copy.deepcopy(log)
    mutated["events"][0]["kind"] = "not-an-event"
    with pytest.raises(ObservabilityError):
        events_from_json_dict(mutated)


def test_event_log_file_round_trip(pinned_events, tmp_path):
    path = tmp_path / "log.json"
    write_event_log(pinned_events, path)
    assert read_event_log(path) == pinned_events
