"""Golden regression tests for the Figure 7 sweep.

Two layers of pinning:

* **Artifact scalars** — key numbers derived from the committed
  ``artifacts/full_sweep_results.json`` (the 140-frame paper-scale
  sweep):
  per-scheduler speedups and the HEF > SJF > ASF > FSFR quality
  ordering.  These fail if the artifact is edited or regenerated
  inconsistently.
* **Live goldens** — exact ``total_cycles`` of a small pinned sweep
  (8 frames, seed 2008, three AC counts) re-simulated through the sweep
  engine on every test run.  Any code change that moves simulation
  behaviour fails here with a readable expected/got diff.

When a *deliberate* behaviour change moves the live goldens: re-generate
them (the test failure prints the new values), update ``_GOLDEN_CYCLES``
below, regenerate ``artifacts/full_sweep_results.json`` at paper scale,
and bump
the cache salt (``repro.exec.cache.CODE_VERSION_SALT``).
"""

import json
import statistics
from pathlib import Path

import pytest

from repro.exec import SweepSpec, WorkloadSpec, run_sweep

ARTIFACT = (
    Path(__file__).resolve().parent.parent
    / "artifacts"
    / "full_sweep_results.json"
)


def _diff(expected, actual, tolerance=0.0):
    """Readable expected-vs-got lines for every moved scalar."""
    lines = []
    for name, want in expected.items():
        got = actual[name]
        if isinstance(want, float):
            moved = abs(got - want) > tolerance
        else:
            moved = got != want
        if moved:
            lines.append(f"  {name}: expected {want!r}, got {got!r}")
    return lines


# ---------------------------------------------------------------------------
# Layer 1: scalars pinned from the committed paper-scale artifact
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def artifact():
    return json.loads(ARTIFACT.read_text())


class TestArtifactScalars:
    def test_pinned_speedup_scalars(self, artifact):
        speedups = artifact["speedups"]
        actual = {
            "software Mcycles": artifact["software"],
            "HEF vs Molen max": max(speedups["HEF vs Molen"]),
            "HEF vs Molen avg": statistics.mean(speedups["HEF vs Molen"]),
            "HEF vs ASF max": max(speedups["HEF vs ASF"]),
            "HEF vs ASF avg": statistics.mean(speedups["HEF vs ASF"]),
            "ASF vs Molen max": max(speedups["ASF vs Molen"]),
            "ASF vs Molen avg": statistics.mean(speedups["ASF vs Molen"]),
        }
        expected = {
            "software Mcycles": 7402.894219,
            "HEF vs Molen max": 1.4462,
            "HEF vs Molen avg": 1.2448,
            "HEF vs ASF max": 1.1186,
            "HEF vs ASF avg": 1.0472,
            "ASF vs Molen max": 1.2929,
            "ASF vs Molen avg": 1.1868,
        }
        lines = _diff(expected, actual, tolerance=5e-4)
        assert not lines, (
            "artifacts/full_sweep_results.json speedup scalars moved:\n"
            + "\n".join(lines)
        )

    def test_scheduler_quality_ordering(self, artifact):
        """Figure 7's takeaway: HEF > SJF > ASF > FSFR (> Molen) once
        the fabric is big enough, by mean Mcycles over ACs >= 10."""
        ac_counts = artifact["ac_counts"]
        mcycles = artifact["mcycles"]
        big = [i for i, ac in enumerate(ac_counts) if ac >= 10]
        mean = {
            name: statistics.mean(series[i] for i in big)
            for name, series in mcycles.items()
        }
        order = ["HEF", "SJF", "ASF", "FSFR", "Molen"]
        ranked = sorted(order, key=lambda name: mean[name])
        assert ranked == order, (
            "scheduler quality ordering moved: expected "
            f"{' < '.join(order)} by mean Mcycles (ACs >= 10), got "
            f"{' < '.join(ranked)} "
            f"({ {n: round(mean[n], 2) for n in ranked} })"
        )

    def test_speedups_consistent_with_mcycles(self, artifact):
        """The artifact's speedup rows must equal the Mcycles ratios —
        catches half-regenerated artifacts."""
        mcycles = artifact["mcycles"]
        pairs = {
            "HEF vs ASF": ("ASF", "HEF"),
            "ASF vs Molen": ("Molen", "ASF"),
            "HEF vs Molen": ("Molen", "HEF"),
        }
        for row, (slow, fast) in pairs.items():
            derived = [
                s / f for s, f in zip(mcycles[slow], mcycles[fast])
            ]
            stored = artifact["speedups"][row]
            assert stored == pytest.approx(derived, rel=1e-9), (
                f"speedup row {row!r} inconsistent with mcycles series"
            )


# ---------------------------------------------------------------------------
# Layer 2: live goldens — exact cycle counts of a small pinned sweep
# ---------------------------------------------------------------------------

_GOLDEN_SPEC = SweepSpec(
    schedulers=("FSFR", "ASF", "SJF", "HEF"),
    ac_counts=(6, 10, 14),
    workload=WorkloadSpec(frames=8, seed=2008),
    include_molen=True,
    include_software=True,
)

#: Exact total_cycles per cell, generated by running _GOLDEN_SPEC
#: through the sweep engine.  All quantities are integer cycle counts,
#: so equality is exact across platforms.
_GOLDEN_CYCLES = dict([
    ("FSFR@6AC/8f", 45455170),
    ("ASF@6AC/8f", 45126855),
    ("SJF@6AC/8f", 45126855),
    ("HEF@6AC/8f", 45101747),
    ("Molen@6AC/8f", 47244923),
    ("FSFR@10AC/8f", 33964264),
    ("ASF@10AC/8f", 33696901),
    ("SJF@10AC/8f", 33696901),
    ("HEF@10AC/8f", 32627289),
    ("Molen@10AC/8f", 38426586),
    ("FSFR@14AC/8f", 32893771),
    ("ASF@14AC/8f", 31601811),
    ("SJF@14AC/8f", 31548331),
    ("HEF@14AC/8f", 29829759),
    ("Molen@14AC/8f", 37773723),
    ("Software@0AC/8f", 435873470),
])


@pytest.fixture(scope="module")
def live_report():
    return run_sweep(_GOLDEN_SPEC, jobs=1)


class TestLiveGoldens:
    def test_total_cycles_pinned(self, live_report):
        actual = {
            o.cell.label: o.result.total_cycles for o in live_report
        }
        assert set(actual) == set(_GOLDEN_CYCLES)
        lines = _diff(_GOLDEN_CYCLES, actual)
        assert not lines, (
            "simulation behaviour moved (update _GOLDEN_CYCLES and bump "
            "the cache salt if this is deliberate):\n" + "\n".join(lines)
        )

    def test_live_ordering_matches_paper(self, live_report):
        """HEF fastest at every swept AC count; Molen slowest."""
        by_label = {
            o.cell.label: o.result.total_cycles for o in live_report
        }
        for ac in (6, 10, 14):
            cells = {
                name: by_label[f"{name}@{ac}AC/8f"]
                for name in ("FSFR", "ASF", "SJF", "HEF", "Molen")
            }
            assert min(cells, key=cells.get) == "HEF", (
                f"HEF is not the fastest scheduler at {ac} ACs: {cells}"
            )
            assert max(cells, key=cells.get) == "Molen", (
                f"Molen baseline is not the slowest at {ac} ACs: {cells}"
            )
