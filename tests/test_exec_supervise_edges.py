"""Supervisor edge cases: truncated journal *headers* and signals that
arrive before any cell is dispatched.

The happy-path chaos coverage lives in ``test_exec_supervise.py`` /
``test_exec_resume.py``; these tests pin the two rarer corners of the
crash-recovery contract:

* A journal whose very first (header) line was cut off mid-write must
  read as an *empty* state with crash evidence (``truncated_tail``) —
  resuming from it re-runs the whole grid instead of erroring out.  A
  cut-off header followed by intact records, on the other hand, is
  corruption and must raise.
* SIGTERM landing when zero cells are in flight must drain instantly:
  interrupted report, no outcomes, an empty failures report, and CLI
  exit code 4.
"""

import json

import pytest

from repro import cli
from repro.errors import JournalError
from repro.exec import (
    SupervisorPolicy,
    SweepSpec,
    WorkloadSpec,
    read_journal,
    run_supervised,
)
from repro.exec.journal import JOURNAL_FORMAT, SweepJournal
from repro.exec.cache import CODE_VERSION_SALT


def small_spec(ac_counts=(2, 3)):
    return SweepSpec(
        schedulers=("HEF",),
        ac_counts=ac_counts,
        workload=WorkloadSpec(frames=1, seed=2008),
    )


def header_line() -> str:
    return json.dumps(
        {
            "kind": "header",
            "format": JOURNAL_FORMAT,
            "salt": CODE_VERSION_SALT,
        },
        sort_keys=True,
    )


class TestTruncatedHeader:
    def test_truncated_header_reads_as_empty_state(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text(header_line()[:25])  # writer died mid-header
        state = read_journal(path)
        assert state.truncated_tail
        assert state.completed == {}
        assert state.quarantined == {}
        assert not state.interrupted

    def test_truncated_header_before_records_is_corruption(
        self, tmp_path
    ):
        path = tmp_path / "sweep.jsonl"
        path.write_text(
            header_line()[:25]
            + "\n"
            + json.dumps({"kind": "retry"})
            + "\n"
        )
        with pytest.raises(JournalError):
            read_journal(path)

    def test_resume_from_truncated_header_reruns_everything(
        self, tmp_path
    ):
        journal = tmp_path / "sweep.jsonl"
        journal.write_text(header_line()[:25])
        report = run_supervised(
            small_spec(),
            policy=SupervisorPolicy(),
            journal_path=journal,
            resume_from=journal,
        )
        assert report.resume_hits == 0
        assert len(report.outcomes) == 2
        assert not report.interrupted
        # The journal was rewritten from scratch and is intact again.
        state = read_journal(journal)
        assert not state.truncated_tail
        assert len(state.completed) == 2

    def test_empty_journal_resumes_cleanly(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        journal.write_text("")
        state = read_journal(journal)
        assert state.completed == {}
        assert not state.truncated_tail


class TestSignalWithNothingInFlight:
    @pytest.fixture()
    def preinterrupted(self, monkeypatch):
        """Deliver the signal before the first dispatch ever happens."""

        def fake_install(supervisor):
            supervisor.interrupts = 1
            return {}

        monkeypatch.setattr(
            "repro.exec.supervise._install_signal_handlers",
            fake_install,
        )

    def test_drains_immediately_with_no_outcomes(
        self, preinterrupted, tmp_path
    ):
        journal = tmp_path / "sweep.jsonl"
        report = run_supervised(
            small_spec(),
            policy=SupervisorPolicy(),
            journal_path=journal,
        )
        assert report.interrupted
        assert report.outcomes == []
        assert report.quarantined == []
        failures = report.failure_report()
        assert failures["interrupted"] is True
        assert failures["completed"] == 0
        assert failures["quarantined"] == []
        # The journal records the drained interrupt with every cell
        # still pending, so --resume re-runs the full grid.
        state = read_journal(journal)
        assert state.interrupted
        assert state.completed == {}

    def test_interrupted_journal_then_resume_completes(
        self, preinterrupted, monkeypatch, tmp_path
    ):
        journal = tmp_path / "sweep.jsonl"
        run_supervised(
            small_spec(),
            policy=SupervisorPolicy(),
            journal_path=journal,
        )
        # Second run: signals behave normally again.
        monkeypatch.undo()
        report = run_supervised(
            small_spec(),
            policy=SupervisorPolicy(),
            journal_path=journal,
            resume_from=journal,
        )
        assert not report.interrupted
        assert len(report.outcomes) == 2

    def test_cli_exits_4_with_empty_failures_report(
        self, preinterrupted, tmp_path, capsys
    ):
        journal = tmp_path / "sweep.jsonl"
        code = cli.main(
            [
                "sweep",
                "--ac-list",
                "2,3",
                "--frames",
                "1",
                "--no-cache",
                "--journal",
                str(journal),
            ]
        )
        assert code == 4
        out = capsys.readouterr().out
        assert "INTERRUPTED" in out
        failures = json.loads(
            (tmp_path / "sweep.jsonl.failures.json").read_text()
        )
        assert failures["interrupted"] is True
        assert failures["completed"] == 0
        assert failures["quarantined"] == []


class TestSignalJournalLifecycle:
    def test_journal_header_written_even_when_nothing_ran(
        self, tmp_path
    ):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record_interrupted(pending=5)
        journal.close()
        state = read_journal(tmp_path / "j.jsonl")
        assert state.interrupted
        assert state.completed == {}
