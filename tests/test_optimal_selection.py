"""Tests for the branch-and-bound optimal molecule selection."""

import pytest

from repro import SelectionError, select_molecules, select_molecules_optimal


def cost(selection, expected):
    return sum(
        expected[name] * selection.latency(name) for name in expected
    )


@pytest.fixture
def sis(toy_library):
    return toy_library.subset(["SI1", "SI2"])


EXPECTED = {"SI1": 1000.0, "SI2": 300.0}


class TestOptimal:
    def test_respects_budget(self, sis):
        for num_acs in range(0, 12):
            selection = select_molecules_optimal(sis, EXPECTED, num_acs)
            assert selection.num_atoms <= num_acs

    def test_never_worse_than_greedy(self, sis):
        for num_acs in range(0, 12):
            greedy = select_molecules(sis, EXPECTED, num_acs)
            optimal = select_molecules_optimal(sis, EXPECTED, num_acs)
            assert cost(optimal, EXPECTED) <= cost(greedy, EXPECTED) + 1e-9

    def test_zero_budget_software(self, sis):
        selection = select_molecules_optimal(sis, EXPECTED, 0)
        assert all(
            impl.is_software for impl in selection.implementations.values()
        )

    def test_full_budget_fastest(self, sis):
        selection = select_molecules_optimal(sis, EXPECTED, 100)
        assert selection.implementations["SI1"].name == "m3"
        assert selection.implementations["SI2"].name == "n3"

    def test_monotone_in_budget(self, sis):
        previous = None
        for num_acs in range(0, 12):
            value = cost(
                select_molecules_optimal(sis, EXPECTED, num_acs), EXPECTED
            )
            if previous is not None:
                assert value <= previous + 1e-9
            previous = value

    def test_validation(self, sis):
        with pytest.raises(SelectionError):
            select_molecules_optimal([], EXPECTED, 4)
        with pytest.raises(SelectionError):
            select_molecules_optimal(sis, EXPECTED, -1)


class TestGreedyGap:
    def test_greedy_can_be_suboptimal_on_me(self, h264_library):
        """At 4 ACs the greedy picks SAD first and cannot afford SATD's
        4-atom entry molecule; the optimal selection takes SATD.  This
        documents the known limitation of ratio-greedy selection."""
        sis = h264_library.subset(["SAD", "SATD"])
        expected = {"SAD": 19_800.0, "SATD": 12_177.0}
        greedy = select_molecules(sis, expected, 4)
        optimal = select_molecules_optimal(sis, expected, 4)
        assert cost(optimal, expected) < cost(greedy, expected)
        assert not optimal.implementations["SATD"].is_software

    def test_greedy_matches_optimal_at_moderate_budgets(self, h264_library):
        sis = h264_library.subset(["SAD", "SATD"])
        expected = {"SAD": 19_800.0, "SATD": 12_177.0}
        for num_acs in (6, 8, 12, 20):
            greedy = select_molecules(sis, expected, num_acs)
            optimal = select_molecules_optimal(sis, expected, num_acs)
            assert cost(greedy, expected) <= 1.25 * cost(optimal, expected)
