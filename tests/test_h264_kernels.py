"""Tests for the functional H.264 kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TraceError
from repro.h264.deblock import alpha_beta, deblock_vertical_edge, filter_edge_bs4
from repro.h264.intra import predict_dc, predict_hdc, predict_vdc
from repro.h264.mc import compensate, half_pel_filter, interpolate_block
from repro.h264.quant import dequantise4x4, quant_step, quantise4x4
from repro.h264.sad import sad16x16, sad_block
from repro.h264.satd import satd16x16, satd4x4
from repro.h264.transform import (
    forward_dct4x4,
    hadamard2x2,
    hadamard4x4,
    inverse_dct4x4,
    inverse_hadamard4x4,
)

blocks4 = st.lists(
    st.integers(min_value=-255, max_value=255), min_size=16, max_size=16
).map(lambda v: np.array(v).reshape(4, 4))


class TestSad:
    def test_identical_blocks_zero(self):
        block = np.arange(256).reshape(16, 16) % 255
        assert sad16x16(block, block) == 0

    def test_known_value(self):
        a = np.zeros((16, 16), dtype=np.int64)
        b = np.full((16, 16), 3, dtype=np.int64)
        assert sad16x16(a, b) == 3 * 256

    def test_symmetry(self):
        rng = np.random.RandomState(1)
        a = rng.randint(0, 256, (16, 16))
        b = rng.randint(0, 256, (16, 16))
        assert sad16x16(a, b) == sad16x16(b, a)

    def test_triangle_inequality(self):
        rng = np.random.RandomState(2)
        a, b, c = (rng.randint(0, 256, (16, 16)) for _ in range(3))
        assert sad_block(a, c) <= sad_block(a, b) + sad_block(b, c)

    def test_shape_checked(self):
        with pytest.raises(TraceError):
            sad16x16(np.zeros((8, 8)), np.zeros((8, 8)))
        with pytest.raises(TraceError):
            sad_block(np.zeros((4, 4)), np.zeros((4, 5)))


class TestSatd:
    def test_identical_blocks_zero(self):
        block = np.arange(16).reshape(4, 4)
        assert satd4x4(block, block) == 0

    def test_dc_difference(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 2)
        # Only the DC coefficient differs: |H (a-b) H| = 16*2, halved.
        assert satd4x4(a, b) == 16

    def test_satd_positive_for_different_blocks(self):
        a = np.zeros((4, 4))
        b = np.eye(4) * 10
        assert satd4x4(a, b) > 0

    def test_satd16_is_sum_of_4x4(self):
        rng = np.random.RandomState(3)
        a = rng.randint(0, 256, (16, 16))
        b = rng.randint(0, 256, (16, 16))
        manual = sum(
            satd4x4(a[y:y+4, x:x+4], b[y:y+4, x:x+4])
            for y in range(0, 16, 4)
            for x in range(0, 16, 4)
        )
        assert satd16x16(a, b) == manual

    def test_shape_checked(self):
        with pytest.raises(TraceError):
            satd4x4(np.zeros((2, 2)), np.zeros((2, 2)))


class TestTransforms:
    @settings(max_examples=50, deadline=None)
    @given(blocks4)
    def test_dct_roundtrip_lossless(self, block):
        assert (inverse_dct4x4(forward_dct4x4(block)) == block).all()

    @settings(max_examples=50, deadline=None)
    @given(blocks4)
    def test_hadamard_roundtrip_lossless(self, block):
        assert (
            inverse_hadamard4x4(hadamard4x4(block)) == block
        ).all()

    def test_dct_linearity(self):
        a = np.arange(16).reshape(4, 4)
        b = np.ones((4, 4), dtype=np.int64)
        assert (
            forward_dct4x4(a + b)
            == forward_dct4x4(a) + forward_dct4x4(b)
        ).all()

    def test_dct_dc_of_constant_block(self):
        block = np.full((4, 4), 5, dtype=np.int64)
        coefficients = forward_dct4x4(block)
        assert coefficients[0, 0] == 5 * 16
        assert (coefficients.ravel()[1:] == 0).all()

    def test_hadamard2x2_self_structure(self):
        block = np.array([[1, 2], [3, 4]])
        twice = hadamard2x2(hadamard2x2(block))
        assert (twice == 4 * block).all()

    def test_shape_checked(self):
        with pytest.raises(TraceError):
            forward_dct4x4(np.zeros((5, 5)))
        with pytest.raises(TraceError):
            hadamard2x2(np.zeros((4, 4)))


class TestQuant:
    def test_step_doubles_every_six_qp(self):
        assert quant_step(12) == pytest.approx(2 * quant_step(6))

    def test_qp_range_checked(self):
        with pytest.raises(TraceError):
            quant_step(52)

    def test_quant_roundtrip_error_bounded(self):
        rng = np.random.RandomState(4)
        for qp in (0, 16, 28, 40):
            step = quant_step(qp)
            coefficients = rng.randint(-500, 500, (4, 4))
            restored = dequantise4x4(quantise4x4(coefficients, qp), qp)
            assert np.abs(restored - coefficients).max() <= step

    def test_zero_preserved(self):
        zeros = np.zeros((4, 4), dtype=np.int64)
        assert (quantise4x4(zeros, 30) == 0).all()

    def test_high_qp_coarser(self):
        coefficients = np.full((4, 4), 100, dtype=np.int64)
        fine = quantise4x4(coefficients, 4)
        coarse = quantise4x4(coefficients, 44)
        assert abs(fine[0, 0]) > abs(coarse[0, 0])


class TestMotionCompensation:
    def test_half_pel_constant_signal(self):
        samples = np.full(20, 100, dtype=np.int64)
        assert (half_pel_filter(samples) == 100).all()

    def test_half_pel_known_edge(self):
        # Step edge: the 6-tap filter overshoots a plain average.
        samples = np.array([0, 0, 0, 100, 100, 100], dtype=np.int64)
        out = half_pel_filter(samples)
        assert out.shape == (1,)
        assert 0 <= out[0] <= 255

    def test_too_few_samples_rejected(self):
        with pytest.raises(TraceError):
            half_pel_filter(np.zeros(5))

    def test_full_pel_copy(self):
        rng = np.random.RandomState(5)
        ref = rng.randint(0, 256, (64, 64))
        block = interpolate_block(ref, 8, 8, 16, False, False)
        assert (block == ref[8:24, 8:24]).all()

    def test_half_pel_of_constant_plane(self):
        ref = np.full((64, 64), 77, dtype=np.int64)
        for hy, hx in ((True, False), (False, True), (True, True)):
            block = interpolate_block(ref, 8, 8, 16, hy, hx)
            assert (block == 77).all()

    def test_compensate_full_pel_si_count(self):
        ref = np.zeros((64, 64), dtype=np.int64)
        _, count = compensate(ref, 16, 16, (0, 0))
        assert count == 4  # one MC-4 execution per four rows

    def test_compensate_half_pel_si_count(self):
        ref = np.zeros((64, 64), dtype=np.int64)
        _, count = compensate(ref, 16, 16, (1, 0))
        assert count == 16

    def test_compensate_clamps_at_border(self):
        ref = np.arange(64 * 64).reshape(64, 64) % 256
        block, _ = compensate(ref, 0, 0, (-8, -8))
        assert block.shape == (16, 16)


class TestIntra:
    def test_hdc_repeats_left_column(self):
        left = np.arange(16)
        pred = predict_hdc(left)
        assert (pred[:, 0] == left).all()
        assert (pred[:, 15] == left).all()

    def test_vdc_repeats_top_row(self):
        top = np.arange(16)
        pred = predict_vdc(top)
        assert (pred[0, :] == top).all()
        assert (pred[15, :] == top).all()

    def test_no_neighbours_mid_grey(self):
        assert (predict_hdc(None) == 128).all()
        assert (predict_vdc(None) == 128).all()
        assert (predict_dc(None, None) == 128).all()

    def test_dc_averages_neighbours(self):
        left = np.full(16, 10)
        top = np.full(16, 30)
        assert (predict_dc(left, top) == 20).all()

    def test_wrong_neighbour_size_rejected(self):
        with pytest.raises(TraceError):
            predict_hdc(np.arange(8))


class TestDeblock:
    def test_alpha_beta_grow_with_qp(self):
        a0, b0 = alpha_beta(10)
        a1, b1 = alpha_beta(40)
        assert a1 > a0 and b1 > b0

    def test_smooth_edge_not_filtered(self):
        # A hard edge with a big step exceeds alpha: no filtering.
        line = np.array([10, 10, 10, 10, 250, 250, 250, 250])
        out, fired = filter_edge_bs4(line, qp=20)
        assert not fired
        assert (out == line).all()

    def test_blocky_edge_filtered(self):
        # Small step within thresholds: the strong filter smooths it.
        line = np.array([100, 100, 100, 100, 108, 108, 108, 108])
        out, fired = filter_edge_bs4(line, qp=40)
        assert fired
        assert abs(int(out[3]) - int(out[4])) < 8

    def test_flat_line_unchanged_by_filter(self):
        line = np.full(8, 90)
        out, fired = filter_edge_bs4(line, qp=40)
        assert fired  # conditions hold trivially
        assert (out == 90).all()

    def test_deblock_vertical_edge_counts(self):
        plane = np.full((16, 16), 100, dtype=np.uint8)
        plane[:, 8:] = 106
        fired = deblock_vertical_edge(plane, 8, 0, qp=40)
        assert fired == 1

    def test_border_edge_rejected(self):
        plane = np.zeros((16, 16), dtype=np.uint8)
        with pytest.raises(TraceError):
            deblock_vertical_edge(plane, 2, 0, qp=30)

    def test_wrong_line_length_rejected(self):
        with pytest.raises(TraceError):
            filter_edge_bs4(np.zeros(7), qp=30)
