"""Zero-overhead-by-default guard.

Instrumentation must be free when nobody listens: a run with the
explicit :class:`NullTracer` is bit-identical to a tracer-free run, a
recorded run is bit-identical to both, and the null path costs no
measurable wall time (all event construction sits behind
``tracer.enabled`` checks).
"""

import time

from repro import NULL_TRACER, NullTracer, RecordingTracer, generate_workload
from repro.core.schedulers import get_scheduler
from repro.sim.rispp import RisppSimulator


def _run(h264_library, h264_registry, tracer=None):
    sim = RisppSimulator(
        h264_library, h264_registry, get_scheduler("HEF"), 8, tracer=tracer
    )
    workload = generate_workload(num_frames=1, seed=2008)
    start = time.perf_counter()
    result = sim.run(workload)
    return result, time.perf_counter() - start


def test_null_tracer_is_bit_identical(h264_library, h264_registry):
    plain, _ = _run(h264_library, h264_registry)
    null, _ = _run(h264_library, h264_registry, NullTracer())
    recorded, _ = _run(h264_library, h264_registry, RecordingTracer())
    assert null.to_json_dict() == plain.to_json_dict()
    assert recorded.to_json_dict() == plain.to_json_dict()


def test_null_tracer_is_the_default(h264_library, h264_registry):
    sim = RisppSimulator(
        h264_library, h264_registry, get_scheduler("HEF"), 8
    )
    assert sim.tracer is NULL_TRACER
    assert not sim.tracer.enabled
    assert sim.fabric.tracer is NULL_TRACER
    assert sim.port.tracer is NULL_TRACER


def test_null_tracer_wall_time_overhead_is_negligible(
    h264_library, h264_registry
):
    """Best-of-five comparison: the NullTracer run must stay within 5%
    of the tracer-free run (plus a small absolute slack against timer
    noise on loaded CI machines)."""
    plain = min(
        _run(h264_library, h264_registry)[1] for _ in range(5)
    )
    null = min(
        _run(h264_library, h264_registry, NullTracer())[1] for _ in range(5)
    )
    assert null <= plain * 1.05 + 0.005, (
        f"NullTracer run took {null:.4f}s vs {plain:.4f}s tracer-free"
    )


def test_null_tracer_emit_is_a_no_op():
    tracer = NullTracer()
    assert tracer.enabled is False
    tracer.emit(object())  # accepts anything, stores nothing
