"""Differential harness: the vector engine vs the reference engine.

The ``engine="vector"`` fast path (:mod:`repro.sim.vector` +
:mod:`repro.core.scoring`) promises *bit-identical* results to the
reference per-span loop — not approximately equal, field-for-field
equal on every :class:`~repro.sim.results.SimulationResult`.  This
module drives both engines over the full scheduler grid, two AC counts,
and two fault configurations (clean and a noisy retry-heavy one), plus
the Molen and software baselines, and compares every result field.

Any mismatch here means the vector path diverged from the reference
semantics — a correctness bug by definition, never an acceptable
"performance tradeoff".
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.schedulers import available_schedulers, get_scheduler
from repro.exec.runner import execute_cell
from repro.exec.spec import SweepSpec, WorkloadSpec
from repro.fabric.faults import BernoulliLoadFaults, RetryPolicy
from repro.h264.silibrary import build_atom_registry, build_si_library
from repro.obs import RecordingTracer
from repro.sim.molen import MolenSimulator
from repro.sim.rispp import RisppSimulator

FRAMES = 3

#: (fault_rate, fault_seed, max_retries): a clean fabric and a noisy one
#: whose retries/abandons exercise the degraded-accounting paths.
FAULT_CONFIGS = [(0.0, 2008, 3), (0.12, 7, 2)]

AC_COUNTS = (4, 10)


@pytest.fixture(scope="module")
def registry():
    return build_atom_registry()


@pytest.fixture(scope="module")
def library(registry):
    return build_si_library(registry)


@pytest.fixture(scope="module")
def workload():
    from repro.workload.model import generate_workload

    return generate_workload(num_frames=FRAMES, seed=2008)


def _fault_args(config):
    rate, seed, max_retries = config
    fault_model = BernoulliLoadFaults(rate, seed=seed) if rate else None
    retry_policy = RetryPolicy(max_retries=max_retries)
    return fault_model, retry_policy


def assert_results_identical(ref, vec, label):
    """Field-by-field equality over the full SimulationResult."""
    for field in dataclasses.fields(ref):
        r = getattr(ref, field.name)
        v = getattr(vec, field.name)
        assert r == v, (
            f"{label}: field {field.name!r} diverged between engines:\n"
            f"  reference: {r!r}\n  vector:    {v!r}"
        )


def _rispp_pair(library, registry, workload, scheduler, acs, config,
                record_segments):
    results = []
    for engine in ("reference", "vector"):
        fault_model, retry_policy = _fault_args(config)
        sim = RisppSimulator(
            library,
            registry,
            get_scheduler(scheduler),
            acs,
            record_segments=record_segments,
            fault_model=fault_model,
            retry_policy=retry_policy,
            engine=engine,
        )
        results.append(sim.run(workload))
    return results


@pytest.mark.parametrize("scheduler", available_schedulers())
@pytest.mark.parametrize("acs", AC_COUNTS)
@pytest.mark.parametrize(
    "config", FAULT_CONFIGS, ids=["clean", "faulty"]
)
def test_rispp_grid_bit_identical(
    library, registry, workload, scheduler, acs, config
):
    ref, vec = _rispp_pair(
        library, registry, workload, scheduler, acs, config,
        record_segments=True,
    )
    label = f"RISPP/{scheduler}@{acs}ACs faults={config}"
    assert_results_identical(ref, vec, label)
    # Segments were recorded — make sure the comparison saw them.
    assert ref.segments, label


@pytest.mark.parametrize("config", FAULT_CONFIGS, ids=["clean", "faulty"])
def test_rispp_without_segments_bit_identical(
    library, registry, workload, config
):
    """The untraced, unsegmented fast path (the common sweep shape)."""
    ref, vec = _rispp_pair(
        library, registry, workload, "HEF", 10, config,
        record_segments=False,
    )
    assert ref.segments is None and vec.segments is None
    assert_results_identical(ref, vec, f"RISPP/HEF@10ACs faults={config}")


@pytest.mark.parametrize("acs", AC_COUNTS)
@pytest.mark.parametrize("config", FAULT_CONFIGS, ids=["clean", "faulty"])
def test_molen_bit_identical(library, registry, workload, acs, config):
    results = []
    for engine in ("reference", "vector"):
        fault_model, retry_policy = _fault_args(config)
        sim = MolenSimulator(
            library,
            registry,
            acs,
            record_segments=True,
            fault_model=fault_model,
            retry_policy=retry_policy,
            engine=engine,
        )
        results.append(sim.run(workload))
    assert_results_identical(
        results[0], results[1], f"Molen@{acs}ACs faults={config}"
    )


def test_sweep_cells_identical_across_engines():
    """Cell-level parity including the software baseline.

    ``execute_cell`` is what sweeps, figure drivers, and the CLI run;
    identical results here mean identical content-addressed cache keys,
    so the engines share cache entries.
    """
    spec = SweepSpec(
        schedulers=("HEF", "SJF"),
        ac_counts=(4, 10),
        workload=WorkloadSpec(frames=FRAMES, seed=2008),
        include_molen=True,
        include_software=True,
    )
    for cell in spec.cells():
        ref = execute_cell(dataclasses.replace(cell, engine="reference"))
        vec = execute_cell(dataclasses.replace(cell, engine="vector"))
        assert_results_identical(ref, vec, cell.label)


def test_auto_engine_matches_both(library, registry, workload):
    """``auto`` must agree with both explicit engines (it is one of them)."""
    ref, vec = _rispp_pair(
        library, registry, workload, "HEF", 10, FAULT_CONFIGS[1],
        record_segments=True,
    )
    fault_model, retry_policy = _fault_args(FAULT_CONFIGS[1])
    auto = RisppSimulator(
        library,
        registry,
        get_scheduler("HEF"),
        10,
        record_segments=True,
        fault_model=fault_model,
        retry_policy=retry_policy,
        engine="auto",
    ).run(workload)
    assert_results_identical(ref, auto, "auto vs reference")
    assert_results_identical(vec, auto, "auto vs vector")


def test_auto_falls_back_to_reference_when_traced(
    library, registry, workload
):
    """A tracer forces the reference loop; results still match vector."""
    tracer = RecordingTracer()
    sim = RisppSimulator(
        library,
        registry,
        get_scheduler("HEF"),
        10,
        tracer=tracer,
        engine="auto",
    )
    assert sim._resolve_engine() == "reference"
    traced = sim.run(workload)
    assert len(tracer) > 0
    untraced_vec = RisppSimulator(
        library,
        registry,
        get_scheduler("HEF"),
        10,
        engine="vector",
    ).run(workload)
    assert_results_identical(traced, untraced_vec, "traced-auto vs vector")


def test_vector_engine_resolution(library, registry):
    sim = RisppSimulator(
        library, registry, get_scheduler("HEF"), 10, engine="vector"
    )
    assert sim._resolve_engine() == "vector"
    sim = RisppSimulator(
        library, registry, get_scheduler("HEF"), 10, engine="reference"
    )
    assert sim._resolve_engine() == "reference"


def test_unknown_engine_rejected(library, registry):
    with pytest.raises(Exception):
        RisppSimulator(
            library, registry, get_scheduler("HEF"), 10, engine="warp"
        )
