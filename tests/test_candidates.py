"""Tests for candidate expansion (eq. 3) and cleaning (eq. 4)."""

import pytest

from repro import clean_candidates, expand_candidates
from repro.core.candidates import best_latency_map


@pytest.fixture
def sis(toy_library):
    return {si.name: si for si in toy_library}


@pytest.fixture
def selection(toy_library):
    si1 = toy_library.get("SI1")
    si2 = toy_library.get("SI2")
    return {"SI1": si1.molecule("m3"), "SI2": si2.molecule("n3")}


class TestExpand:
    def test_candidates_bounded_by_selected(self, selection, sis):
        candidates = expand_candidates(selection, sis)
        for cand in candidates:
            assert cand.atoms <= selection[cand.si_name].atoms

    def test_selected_molecule_is_candidate(self, selection, sis):
        candidates = expand_candidates(selection, sis)
        names = {(c.si_name, c.name) for c in candidates}
        assert ("SI1", "m3") in names
        assert ("SI2", "n3") in names

    def test_smaller_molecules_included(self, selection, sis):
        candidates = expand_candidates(selection, sis)
        names = {(c.si_name, c.name) for c in candidates}
        assert ("SI1", "m1") in names
        assert ("SI1", "m2") in names
        assert ("SI1", "m4") in names  # non-Pareto stays in M'

    def test_software_never_a_candidate(self, selection, sis):
        candidates = expand_candidates(selection, sis)
        assert all(not c.is_software for c in candidates)

    def test_small_selection_limits_candidates(self, toy_library, sis):
        si1 = toy_library.get("SI1")
        selection = {"SI1": si1.molecule("m2")}
        candidates = expand_candidates(selection, sis)
        names = {c.name for c in candidates}
        assert names == {"m1", "m2"}  # m3 and m4 exceed the selection

    def test_deterministic_order(self, selection, sis):
        a = expand_candidates(selection, sis)
        b = expand_candidates(selection, sis)
        assert [(c.si_name, c.name) for c in a] == [
            (c.si_name, c.name) for c in b
        ]


class TestBestLatencyMap:
    def test_cold_start_is_software(self, space, selection, sis):
        latencies = best_latency_map(selection, sis, space.zero())
        assert latencies == {"SI1": 1000, "SI2": 600}

    def test_warm_start_uses_available(self, space, selection, sis):
        available = space.molecule({"A": 1, "C": 1})
        latencies = best_latency_map(selection, sis, available)
        assert latencies == {"SI1": 400, "SI2": 250}


class TestClean:
    def test_available_candidates_removed(self, space, selection, sis):
        candidates = expand_candidates(selection, sis)
        available = space.molecule({"A": 1})
        best = best_latency_map(selection, sis, available)
        cleaned = clean_candidates(candidates, available, best)
        assert ("SI1", "m1") not in {(c.si_name, c.name) for c in cleaned}

    def test_non_improving_candidates_removed(self, space, selection, sis):
        # With (2, 2) available, m2 (120) is the best; m4 (150) must go
        # even though its vector (1, 3) is not covered.
        candidates = expand_candidates(selection, sis)
        available = space.molecule({"A": 2, "B": 2})
        best = best_latency_map(selection, sis, available)
        cleaned = clean_candidates(candidates, available, best)
        names = {(c.si_name, c.name) for c in cleaned}
        assert ("SI1", "m4") not in names
        assert ("SI1", "m3") in names

    def test_nonpareto_survives_when_it_helps(self, space, selection, sis):
        # The paper's point: with a = (0, 3), m4 = (1, 3) needs one atom
        # while m2 = (2, 2) needs two — m4 must NOT be removed.
        candidates = expand_candidates(selection, sis)
        available = space.molecule({"B": 3})
        best = best_latency_map(selection, sis, available)
        cleaned = clean_candidates(candidates, available, best)
        names = {(c.si_name, c.name) for c in cleaned}
        assert ("SI1", "m4") in names

    def test_clean_empty_when_everything_loaded(self, space, selection, sis):
        candidates = expand_candidates(selection, sis)
        available = space.molecule({"A": 4, "B": 4, "C": 2})
        best = best_latency_map(selection, sis, available)
        assert clean_candidates(candidates, available, best) == []

    def test_clean_keeps_everything_on_cold_start(
        self, space, selection, sis
    ):
        candidates = expand_candidates(selection, sis)
        best = best_latency_map(selection, sis, space.zero())
        cleaned = clean_candidates(candidates, space.zero(), best)
        assert len(cleaned) == len(candidates)
