"""Tests for the fabric substrate: atoms, containers, AC array."""

import pytest

from repro import (
    AtomRegistry,
    AtomType,
    CapacityError,
    Fabric,
    FabricError,
    InvalidMoleculeError,
)
from repro.calibration import bitstream_bytes_to_cycles
from repro.fabric.container import AtomContainer


class TestAtomType:
    def test_reconfig_cycles_from_bitstream(self):
        atom = AtomType("X", bitstream_bytes=66_000_000)
        # 66 MB at 66 MB/s = 1 s = 100M cycles at 100 MHz.
        assert atom.reconfig_cycles == 100_000_000

    def test_defaults_match_paper_average(self):
        atom = AtomType("X")
        assert atom.bitstream_bytes == 60_488

    def test_invalid_sizes_rejected(self):
        with pytest.raises(InvalidMoleculeError):
            AtomType("X", bitstream_bytes=0)
        with pytest.raises(InvalidMoleculeError):
            AtomType("X", slices=0)
        with pytest.raises(InvalidMoleculeError):
            AtomType("")


class TestAtomRegistry:
    def test_space_induced_in_order(self, toy_registry):
        assert toy_registry.space.names == ("A", "B", "C")

    def test_uniform_constructor(self):
        registry = AtomRegistry.uniform(["X", "Y"], bitstream_bytes=1000)
        assert all(t.bitstream_bytes == 1000 for t in registry)

    def test_duplicate_rejected(self):
        with pytest.raises(InvalidMoleculeError):
            AtomRegistry([AtomType("X"), AtomType("X")])

    def test_empty_rejected(self):
        with pytest.raises(InvalidMoleculeError):
            AtomRegistry([])

    def test_unknown_lookup(self, toy_registry):
        from repro import UnknownAtomTypeError

        with pytest.raises(UnknownAtomTypeError):
            toy_registry.get("NOPE")

    def test_average_reconfig_cycles(self):
        registry = AtomRegistry(
            [AtomType("X", bitstream_bytes=1_000),
             AtomType("Y", bitstream_bytes=3_000)]
        )
        expected = (
            bitstream_bytes_to_cycles(1_000)
            + bitstream_bytes_to_cycles(3_000)
        ) / 2
        assert registry.average_reconfig_cycles() == expected


class TestContainer:
    def test_lifecycle(self):
        ac = AtomContainer(0)
        assert ac.is_empty
        ac.begin_load("X", now=10)
        assert ac.is_loading and ac.atom_type == "X"
        ac.complete_load(now=110)
        assert ac.is_loaded and ac.loaded_at == 110
        ac.evict()
        assert ac.is_empty and ac.atom_type is None

    def test_begin_load_while_loading_rejected(self):
        ac = AtomContainer(0)
        ac.begin_load("X", now=0)
        with pytest.raises(FabricError):
            ac.begin_load("Y", now=1)

    def test_complete_without_loading_rejected(self):
        ac = AtomContainer(0)
        with pytest.raises(FabricError):
            ac.complete_load(now=0)

    def test_evict_empty_rejected(self):
        ac = AtomContainer(0)
        with pytest.raises(FabricError):
            ac.evict()

    def test_reload_overwrites_previous_atom(self):
        ac = AtomContainer(0)
        ac.begin_load("X", now=0)
        ac.complete_load(now=10)
        ac.begin_load("Y", now=20)
        # Partial reconfiguration overwrites: the old atom is unusable
        # the moment writing starts.
        assert ac.is_loading and ac.atom_type == "Y"


class TestFabric:
    def test_available_counts_only_loaded(self, toy_registry):
        fabric = Fabric(toy_registry, 3)
        fabric.begin_load("A", 0, fabric.space.zero())
        assert fabric.available().is_zero
        fabric.containers[0].complete_load(10)
        assert fabric.available() == fabric.space.unit("A")

    def test_prefers_empty_containers(self, toy_registry):
        fabric = Fabric(toy_registry, 2)
        c0 = fabric.begin_load("A", 0, fabric.space.zero())
        c0.complete_load(1)
        c1 = fabric.begin_load("B", 2, fabric.space.zero())
        assert c1.index != c0.index

    def test_evicts_stale_lru(self, toy_registry):
        fabric = Fabric(toy_registry, 2)
        space = fabric.space
        a = fabric.begin_load("A", 0, space.zero())
        a.complete_load(1)
        b = fabric.begin_load("B", 2, space.zero())
        b.complete_load(3)
        fabric.touch_atoms(space.unit("A"), 10)  # A recently used
        retained = space.unit("A")  # plan keeps A, B is stale
        c = fabric.begin_load("C", 20, retained)
        assert c.index == b.index  # B was evicted
        assert fabric.num_evictions == 1

    def test_retained_atoms_not_evicted(self, toy_registry):
        fabric = Fabric(toy_registry, 1)
        space = fabric.space
        a = fabric.begin_load("A", 0, space.zero())
        a.complete_load(1)
        with pytest.raises(CapacityError):
            fabric.begin_load("B", 2, retained=space.unit("A"))

    def test_capacity_error_when_full_of_loading(self, toy_registry):
        fabric = Fabric(toy_registry, 1)
        fabric.begin_load("A", 0, fabric.space.zero())
        with pytest.raises(CapacityError):
            fabric.begin_load("B", 1, fabric.space.zero())

    def test_multiset_retention(self, toy_registry):
        # Two A atoms loaded, plan retains only one: the other is
        # evictable.
        fabric = Fabric(toy_registry, 2)
        space = fabric.space
        for now in (0, 1):
            fabric.begin_load("A", now, space.zero()).complete_load(now + 1)
        retained = space.unit("A")
        fabric.begin_load("B", 5, retained)
        assert fabric.loaded_count("A") == 1

    def test_occupancy_and_repr(self, toy_registry):
        fabric = Fabric(toy_registry, 3)
        fabric.begin_load("A", 0, fabric.space.zero()).complete_load(1)
        assert fabric.occupancy() == {"A": 1}
        assert "1 loaded" in repr(fabric)

    def test_reset(self, toy_registry):
        fabric = Fabric(toy_registry, 2)
        fabric.begin_load("A", 0, fabric.space.zero()).complete_load(1)
        fabric.reset()
        assert fabric.available().is_zero
        assert fabric.num_evictions == 0

    def test_negative_ac_count_rejected(self, toy_registry):
        with pytest.raises(FabricError):
            Fabric(toy_registry, -1)

    def test_unknown_atom_rejected(self, toy_registry):
        fabric = Fabric(toy_registry, 2)
        with pytest.raises(FabricError):
            fabric.begin_load("NOPE", 0, fabric.space.zero())
