"""Calibration constants taken from the paper, with provenance.

Every quantitative statement the paper makes about its platform is captured
here as a named constant, together with the derived quantities the
behavioural simulator needs (most importantly the reconfiguration time of
one atom expressed in *cycles*).

Provenance notes
----------------
* ``RECONFIG_TIME_US`` — Section 5: "This results in an average
  reconfiguration time of 874.03 us [23] (for 66 MB/s reconfiguration
  bandwidth via the SelectMap/ICAP [6] interface)".
* ``BITSTREAM_BYTES_AVG`` — Section 5: "the partial Bitstream requires in
  average only 60,488 Bytes".
* ``RECONFIG_BANDWIDTH_MBPS`` — Section 5, same sentence: 66 MB/s.
* ``CLOCK_MHZ`` — not stated explicitly; derived.  Figure 2 shows the SAD
  reconfiguration (a two-atom molecule) finishing around 160K cycles and
  the SATD reconfiguration (six further atoms, eight in total) around 700K
  cycles; both are consistent with roughly 87K cycles per atom, i.e.
  874.03 us at a 100 MHz core clock.  The Leon2/DLX prototypes of the
  RISPP project ran in that frequency band.
* ``SOFTWARE_TOTAL_MCYCLES`` — Section 5: "down to the execution speed of a
  general-purpose processor in case of zero ACs: 7,403M cycles" for
  encoding 140 CIF frames.
* ``CIF_WIDTH/HEIGHT``, ``NUM_FRAMES`` — Section 5: "a CIF-video (352x288)
  with 140 frames".
* ``ME_SI_EXECUTIONS_PER_FRAME`` — Figure 2 annotation: "The 31,977
  executions of two Special Instructions in the Motion Estimation (ME) hot
  spot".
* ``AC_SLICES`` — Section 5: "would therefore fit into one AC (1024
  slices)"; average atom size 421 slices (Table 3).
"""

from __future__ import annotations

from .errors import CalibrationError

__all__ = [
    "CLOCK_MHZ",
    "RECONFIG_TIME_US",
    "RECONFIG_BANDWIDTH_MBPS",
    "BITSTREAM_BYTES_AVG",
    "RECONFIG_CYCLES_PER_ATOM",
    "SOFTWARE_TOTAL_MCYCLES",
    "CIF_WIDTH",
    "CIF_HEIGHT",
    "NUM_FRAMES",
    "MACROBLOCK_SIZE",
    "MACROBLOCKS_PER_CIF_FRAME",
    "ME_SI_EXECUTIONS_PER_FRAME",
    "AC_SLICES",
    "AVG_ATOM_SLICES",
    "AC_COUNT_SWEEP",
    "PAPER_HEF_VS_ASF",
    "PAPER_ASF_VS_MOLEN",
    "PAPER_HEF_VS_MOLEN",
    "PAPER_FIG7_SCHEDULERS",
    "bitstream_bytes_to_cycles",
    "reconfig_cycles",
]

#: Core clock of the modelled prototype in MHz (derived, see module docs).
CLOCK_MHZ = 100.0

#: Average partial-reconfiguration time of one atom, in microseconds.
RECONFIG_TIME_US = 874.03

#: Configuration-port bandwidth (SelectMap/ICAP) in MB/s.
RECONFIG_BANDWIDTH_MBPS = 66.0

#: Average partial-bitstream size of one atom, in bytes.
BITSTREAM_BYTES_AVG = 60_488

#: Average atom reconfiguration time expressed in core-clock cycles.
RECONFIG_CYCLES_PER_ATOM = int(round(RECONFIG_TIME_US * CLOCK_MHZ))

#: Pure-software execution time for the whole 140-frame benchmark (Mcycles).
SOFTWARE_TOTAL_MCYCLES = 7_403

#: CIF luma resolution used throughout the evaluation.
CIF_WIDTH = 352
CIF_HEIGHT = 288

#: Number of encoded frames in the paper's benchmark runs.
NUM_FRAMES = 140

#: H.264 macroblock edge length in luma pixels.
MACROBLOCK_SIZE = 16

#: 22 x 18 macroblocks for a CIF frame.
MACROBLOCKS_PER_CIF_FRAME = (CIF_WIDTH // MACROBLOCK_SIZE) * (
    CIF_HEIGHT // MACROBLOCK_SIZE
)

#: Combined SAD + SATD executions inside one frame's ME hot spot (Figure 2).
ME_SI_EXECUTIONS_PER_FRAME = 31_977

#: Slices provided by a single Atom Container (Section 5).
AC_SLICES = 1024

#: Average atom size in slices (Table 3).
AVG_ATOM_SLICES = 421

#: The Atom-Container counts swept in Figure 7 and Table 2.
AC_COUNT_SWEEP = tuple(range(5, 25))

#: Table 2, row "HEF vs ASF" (speedup per AC count, 5..24).
PAPER_HEF_VS_ASF = (
    1.00, 1.04, 1.04, 1.06, 1.05, 1.08, 1.06, 1.06, 1.13, 1.18,
    1.21, 1.26, 1.36, 1.48, 1.45, 1.52, 1.51, 1.39, 1.26, 1.52,
)

#: Table 2, row "ASF vs Molen".
PAPER_ASF_VS_MOLEN = (
    1.08, 1.07, 1.12, 1.12, 1.21, 1.22, 1.26, 1.38, 1.39, 1.34,
    1.40, 1.36, 1.41, 1.50, 1.54, 1.56, 1.54, 1.58, 1.67, 1.57,
)

#: Table 2, row "HEF vs Molen" (up to 2.38x, average 1.71x).
PAPER_HEF_VS_MOLEN = (
    1.09, 1.12, 1.16, 1.19, 1.28, 1.31, 1.34, 1.46, 1.57, 1.58,
    1.70, 1.70, 1.92, 2.22, 2.23, 2.38, 2.32, 2.21, 2.11, 2.38,
)

#: Scheduler names in the order Figure 7 lists them.
PAPER_FIG7_SCHEDULERS = ("ASF", "FSFR", "SJF", "HEF")


def bitstream_bytes_to_cycles(num_bytes: int, clock_mhz: float = CLOCK_MHZ,
                              bandwidth_mbps: float = RECONFIG_BANDWIDTH_MBPS) -> int:
    """Convert a partial-bitstream size to a reconfiguration latency in cycles.

    The configuration port streams ``num_bytes`` at ``bandwidth_mbps``
    (decimal MB/s, as in the paper's "66 MB/s"); the resulting wall-clock
    time is expressed in core-clock cycles at ``clock_mhz``.

    >>> bitstream_bytes_to_cycles(60_488)
    91648
    """
    if num_bytes < 0:
        raise CalibrationError(f"bitstream size must be >= 0, got {num_bytes}")
    if clock_mhz <= 0 or bandwidth_mbps <= 0:
        raise CalibrationError("clock and bandwidth must be positive")
    seconds = num_bytes / (bandwidth_mbps * 1_000_000.0)
    return int(round(seconds * clock_mhz * 1_000_000.0))


def reconfig_cycles(num_atoms: int) -> int:
    """Cycles needed to sequentially reconfigure ``num_atoms`` average atoms.

    Atoms are loaded strictly one after another through the single
    configuration port, so the total is linear in the atom count.
    """
    if num_atoms < 0:
        raise CalibrationError(f"atom count must be >= 0, got {num_atoms}")
    return num_atoms * RECONFIG_CYCLES_PER_ATOM
