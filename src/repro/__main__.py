"""``python -m repro`` — regenerate the paper's tables and figures."""

from __future__ import annotations

import sys

from .cli import main

sys.exit(main())
