"""``python -m repro`` — regenerate the paper's tables and figures."""

import sys

from .cli import main

sys.exit(main())
