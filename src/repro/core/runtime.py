"""The Run-Time Manager (Section 3.1).

The Run-Time Manager controls the run-time behaviour of the RISPP
pipeline.  Its three tasks, and where they live here:

I.   *Controlling the execution of SIs* — :meth:`RuntimeManager.dispatch`
     either returns the fastest available hardware molecule for an SI or
     the software implementation (the synchronous-exception / trap path
     on the base ISA).
II.  *Observing and adapting to changing constraints* — the
     :class:`~repro.core.monitor.ExecutionMonitor` predicts per-hot-spot
     SI execution frequencies and is updated after each hot-spot run.
III. *Determining atom re-loading decisions* — molecule selection picks
     the target implementation per SI, and the pluggable atom scheduler
     (Section 4) orders the loads.

The manager is a pure decision component: it never advances time.  The
behavioural simulators in :mod:`repro.sim` own the clock and feed the
manager's decisions into the fabric model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence

from ..errors import SelectionError, UnknownSpecialInstructionError
from .molecule import Molecule
from .monitor import ExecutionMonitor
from .schedule import Schedule, validate_schedule
from .scoring import ScoringCache, fast_schedule, select_molecules_fast

if TYPE_CHECKING:  # annotation-only: keeps core below the schedulers
    from .schedulers.base import AtomScheduler
from .selection import MoleculeSelection, select_molecules
from .si import MoleculeImpl, SILibrary

__all__ = ["HotSpotPlan", "RuntimeManager"]


@dataclass(frozen=True)
class HotSpotPlan:
    """Everything the Run-Time Manager decided at a hot-spot entry."""

    hot_spot: str
    expected: Mapping[str, float]
    selection: MoleculeSelection
    schedule: Schedule

    @property
    def num_scheduled_atoms(self) -> int:
        return len(self.schedule)


class RuntimeManager:
    """Decision core of the run-time system.

    Parameters
    ----------
    library:
        The application's SI library.
    scheduler:
        The atom-scheduling strategy (FSFR/ASF/SJF/HEF/...).
    num_acs:
        Number of atom containers of the fabric.
    monitor:
        The execution-frequency forecaster; a fresh default monitor is
        created when omitted.
    validate_schedules:
        When True, every schedule is checked against conditions (1)+(2)
        before being returned — useful in tests, off by default for
        speed.
    """

    def __init__(
        self,
        library: SILibrary,
        scheduler: AtomScheduler,
        num_acs: int,
        monitor: Optional[ExecutionMonitor] = None,
        validate_schedules: bool = False,
    ) -> None:
        self.library = library
        self.scheduler = scheduler
        self.num_acs = int(num_acs)
        self.monitor = monitor if monitor is not None else ExecutionMonitor()
        self.validate_schedules = bool(validate_schedules)
        self._sis_by_name = {si.name: si for si in library}
        # Static-array memo for the fast planning path (repro.core.scoring);
        # keyed by immutable library objects, so it never needs clearing.
        self._scoring_cache: ScoringCache = {}

    # -- task III: re-loading decisions --------------------------------------

    def plan_hot_spot(
        self,
        hot_spot: str,
        si_names: Sequence[str],
        available: Molecule,
        num_acs: Optional[int] = None,
        fast: bool = False,
    ) -> HotSpotPlan:
        """Select molecules and schedule atom loads for a hot-spot entry.

        ``available`` is the fabric's current atom content; atoms already
        loaded are reused (both by the selection's tie-break and by the
        scheduler's ``a_0``).

        ``num_acs`` overrides the configured AC budget for this plan —
        the simulators pass the fabric's *effective* budget
        (:attr:`~repro.fabric.fabric.Fabric.usable_acs`) so that plans
        keep fitting after permanent container faults.  The override
        never exceeds the configured budget.

        ``fast`` routes selection and scheduling through the
        array-friendly implementations in :mod:`repro.core.scoring`
        (used by the vector simulation engine).  The resulting plan is
        identical either way.
        """
        budget = self.num_acs
        if num_acs is not None:
            budget = max(0, min(budget, int(num_acs)))
        sis = self.library.subset(si_names)
        expected = self.monitor.predict(hot_spot, si_names)
        if fast:
            selection = select_molecules_fast(
                sis, expected, budget, available=available,
                cache=self._scoring_cache,
            )
        else:
            selection = select_molecules(
                sis, expected, budget, available=available
            )
        hardware = selection.hardware_selection()
        if hardware:
            sis_map = {si.name: si for si in sis}
            if fast:
                schedule = fast_schedule(
                    self.scheduler, hardware, sis_map, available, expected,
                    cache=self._scoring_cache,
                )
            else:
                schedule = self.scheduler.schedule(
                    hardware, sis_map, available, expected
                )
            if self.validate_schedules:
                validate_schedule(schedule, hardware, available)
        else:
            schedule = Schedule(self.library.space)
        return HotSpotPlan(
            hot_spot=hot_spot,
            expected=expected,
            selection=selection,
            schedule=schedule,
        )

    def plan_with_lease(
        self,
        hot_spot: str,
        si_names: Sequence[str],
        available: Molecule,
        lease: int,
    ) -> HotSpotPlan:
        """Plan a hot-spot entry against a *leased* AC budget.

        The multi-tenant arbiter (:mod:`repro.service`) grants each
        tenant a lease of the shared fabric and plans against exactly
        that many containers, regardless of the fabric's full size.  A
        zero lease is legal and yields a pure-software plan (the cISA
        trap path) — that is the degraded answer the service returns
        while its circuit breaker is open.

        Raises
        ------
        SelectionError
            For a negative lease: leases are granted, never owed.
        """
        if lease < 0:
            raise SelectionError(f"negative AC lease: {lease}")
        return self.plan_hot_spot(
            hot_spot, si_names, available, num_acs=lease
        )

    # -- task II: observation / adaptation ------------------------------------

    def finish_hot_spot(
        self, hot_spot: str, measured: Mapping[str, float]
    ) -> None:
        """Feed the measured SI execution counts back into the monitor."""
        self.monitor.update(hot_spot, measured)

    # -- task I: SI execution control -----------------------------------------

    def dispatch(self, si_name: str, available: Molecule) -> MoleculeImpl:
        """Resolve one SI execution against the current atom availability.

        Returns the fastest available implementation; when that is the
        software implementation the caller must account for the trap into
        the base ISA (see :mod:`repro.isa.processor`).
        """
        try:
            si = self._sis_by_name[si_name]
        except KeyError:
            raise UnknownSpecialInstructionError(
                f"dispatch of unknown SI {si_name!r}"
            ) from None
        return si.fastest_available(available)

    def latencies(
        self, si_names: Sequence[str], available: Molecule
    ) -> Dict[str, int]:
        """Current per-SI latencies under ``available`` (no trap cost)."""
        return {
            name: self._sis_by_name[name].available_latency(available)
            for name in si_names
        }

    def __repr__(self) -> str:
        return (
            f"RuntimeManager({self.scheduler.name}, {self.num_acs} ACs, "
            f"{len(self._sis_by_name)} SIs)"
        )
