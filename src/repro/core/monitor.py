"""Online monitoring of SI execution frequencies (Section 3.1, point II).

The Run-Time Manager observes how often every SI executes within a hot
spot.  After executing the hot spot, the measured value is compared to
the previous expectation to update the expectation for the next execution
iteration of this hot spot — the light-weight error-feedback scheme whose
hardware implementation the authors demonstrated in [24].

We model it as a per-(hot spot, SI) predictor — exponential smoothing by
default::

    estimate <- estimate + alpha * (measured - estimate)

seeded from an offline profile (or a neutral default) on the first
encounter of a hot spot.  Alternative forecasting strategies from
:mod:`repro.core.forecast` (last-value, sliding window, trend) can be
plugged in via ``predictor_factory``.  The monitor also keeps simple
error statistics so experiments can report prediction quality.

On top of the per-SI frequency forecasts the monitor tracks the
*hot-spot transition history*: :meth:`record_transition` feeds observed
``prev -> next`` phase changes into per-edge predictors of the same
forecast family (EWMA over 0/1 indicators, i.e. a recency-weighted
transition frequency), and :meth:`predict_next` answers "which hot spot
comes after this one, and how sure are we?" — the signal the PREFETCH
scheduler speculates on (:mod:`repro.core.schedulers.prefetch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Set, Tuple

from ..errors import CalibrationError
from .forecast import EwmaPredictor, Predictor, PredictorFactory

__all__ = ["ExecutionMonitor", "MonitorStats"]


@dataclass
class MonitorStats:
    """Prediction-quality statistics for one (hot spot, SI) pair."""

    num_updates: int = 0
    abs_error_sum: float = 0.0
    measured_sum: float = 0.0

    @property
    def mean_abs_error(self) -> float:
        return self.abs_error_sum / self.num_updates if self.num_updates else 0.0

    @property
    def mean_measured(self) -> float:
        return self.measured_sum / self.num_updates if self.num_updates else 0.0

    @property
    def relative_error(self) -> float:
        """Mean absolute error relative to the mean measured value."""
        return (
            self.mean_abs_error / self.mean_measured
            if self.mean_measured
            else 0.0
        )


class ExecutionMonitor:
    """Per-hot-spot SI execution-frequency forecaster.

    Parameters
    ----------
    alpha:
        Smoothing factor in (0, 1]; 1.0 means "expect exactly what was
        measured last time".
    profile:
        Optional offline profile: hot-spot name -> SI name -> expected
        executions, used before the first measurement of a hot spot.
    default_estimate:
        First-encounter estimate for SIs without a profile entry.  A
        positive value ensures every SI initially looks worth
        accelerating.
    predictor_factory:
        Optional forecasting strategy (see :mod:`repro.core.forecast`);
        defaults to exponential smoothing with ``alpha``.
    """

    def __init__(
        self,
        alpha: float = 0.5,
        profile: Optional[Mapping[str, Mapping[str, float]]] = None,
        default_estimate: float = 1.0,
        predictor_factory: Optional["PredictorFactory"] = None,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise CalibrationError(f"alpha must be in (0, 1], got {alpha}")
        if default_estimate < 0.0:
            raise CalibrationError(
                f"default estimate must be >= 0, got {default_estimate}"
            )
        self.alpha = float(alpha)
        self.default_estimate = float(default_estimate)
        self._factory: "PredictorFactory" = (
            predictor_factory
            if predictor_factory is not None
            else (lambda initial: EwmaPredictor(initial, alpha=self.alpha))
        )
        self._profile: Dict[str, Dict[str, float]] = {
            hs: dict(entries) for hs, entries in (profile or {}).items()
        }
        self._predictors: Dict[Tuple[str, str], Predictor] = {}
        self._stats: Dict[Tuple[str, str], MonitorStats] = {}
        #: Transition predictors, one per observed ``(prev, next)`` edge:
        #: an EWMA over 0/1 indicators — the recency-weighted frequency
        #: with which ``prev`` was followed by ``next``.
        self._transitions: Dict[Tuple[str, str], Predictor] = {}
        #: Successor sets per hot spot (keys of the edges seen so far).
        self._successors: Dict[str, Set[str]] = {}
        #: The SI names last measured per hot spot — what a speculative
        #: plan for a predicted phase should plan for.
        self._seen_sis: Dict[str, Tuple[str, ...]] = {}

    # -- prediction ----------------------------------------------------------

    def _initial(self, hot_spot: str, si_name: str) -> float:
        return self._profile.get(hot_spot, {}).get(
            si_name, self.default_estimate
        )

    def _predictor(self, hot_spot: str, si_name: str) -> Predictor:
        key = (hot_spot, si_name)
        predictor = self._predictors.get(key)
        if predictor is None:
            predictor = self._factory(self._initial(hot_spot, si_name))
            self._predictors[key] = predictor
        return predictor

    def predict(
        self, hot_spot: str, si_names: Sequence[str]
    ) -> Dict[str, float]:
        """Expected executions of each SI in the next run of ``hot_spot``."""
        return {
            si_name: self._predictor(hot_spot, si_name).predict()
            for si_name in si_names
        }

    # -- feedback ------------------------------------------------------------

    def update(self, hot_spot: str, measured: Mapping[str, float]) -> None:
        """Feed the measured execution counts of a finished hot spot back.

        Implements the error feedback: the estimate moves towards the
        measurement by a factor ``alpha``.
        """
        for si_name, value in measured.items():
            if value < 0:
                raise CalibrationError(
                    f"negative execution count for {si_name}: {value}"
                )
            key = (hot_spot, si_name)
            predictor = self._predictor(hot_spot, si_name)
            stats = self._stats.setdefault(key, MonitorStats())
            stats.num_updates += 1
            stats.abs_error_sum += abs(value - predictor.predict())
            stats.measured_sum += float(value)
            predictor.update(float(value))
        self._seen_sis[hot_spot] = tuple(sorted(measured))

    # -- hot-spot transition prediction ----------------------------------------

    def record_transition(self, prev: str, nxt: str) -> None:
        """Feed one observed hot-spot transition ``prev -> nxt``.

        Every known edge out of ``prev`` receives a 0/1 indicator update
        (1 for the edge taken, 0 for the others), so each edge predictor
        converges to the recency-weighted frequency of that transition.
        """
        successors = self._successors.setdefault(prev, set())
        successors.add(nxt)
        for succ in successors:
            key = (prev, succ)
            predictor = self._transitions.get(key)
            if predictor is None:
                predictor = self._factory(0.0)
                self._transitions[key] = predictor
            predictor.update(1.0 if succ == nxt else 0.0)

    def predict_next(self, hot_spot: str) -> Optional[Tuple[str, float]]:
        """The most likely successor of ``hot_spot`` and its confidence.

        Returns ``None`` before any transition out of ``hot_spot`` was
        observed.  Ties break deterministically towards the
        lexicographically smallest successor name.
        """
        successors = self._successors.get(hot_spot)
        if not successors:
            return None
        best: Optional[Tuple[str, float]] = None
        for succ in sorted(successors):
            score = self._transitions[(hot_spot, succ)].predict()
            if best is None or score > best[1]:
                best = (succ, score)
        return best

    def si_names_for(self, hot_spot: str) -> Tuple[str, ...]:
        """SI names last measured in ``hot_spot`` (empty if never run).

        A speculative plan for a predicted phase needs its SI set; the
        monitor only knows it once the phase has executed at least once,
        which is exactly when transition prediction can fire anyway.
        """
        return self._seen_sis.get(hot_spot, ())

    # -- inspection ------------------------------------------------------------

    def estimate(self, hot_spot: str, si_name: str) -> float:
        """Current estimate for one (hot spot, SI) pair."""
        return self._predictor(hot_spot, si_name).predict()

    def stats(self, hot_spot: str, si_name: str) -> MonitorStats:
        """Prediction-error statistics (zeroed if never updated)."""
        return self._stats.get((hot_spot, si_name), MonitorStats())

    def known_hot_spots(self) -> Tuple[str, ...]:
        """Hot spots for which at least one measurement arrived."""
        return tuple(sorted({hs for hs, _ in self._stats}))

    def reset(self) -> None:
        """Forget all measurements (profile entries are kept)."""
        self._predictors.clear()
        self._stats.clear()
        self._transitions.clear()
        self._successors.clear()
        self._seen_sis.clear()

    def __repr__(self) -> str:
        return (
            f"ExecutionMonitor(alpha={self.alpha}, "
            f"{len(self._predictors)} live predictors)"
        )
