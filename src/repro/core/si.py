"""Special Instructions and their molecule implementations.

A **Special Instruction (SI)** is an instruction-set extension (e.g. the
``SATD`` sum of absolute transformed differences of the H.264 motion
estimation).  Each SI owns

* a *software* implementation: the trap-activated execution on the base
  processor's instruction set (the all-zero molecule — always available),
* a set of *hardware molecules*: alternative implementations that trade
  atom instances against latency.

The :class:`SILibrary` bundles the SIs of an application over one shared
:class:`~repro.core.molecule.AtomSpace`; it is the static input to
molecule selection and atom scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from ..errors import (
    InvalidMoleculeError,
    UnknownSpecialInstructionError,
)
from .molecule import AtomSpace, Molecule

__all__ = ["MoleculeImpl", "SpecialInstruction", "SILibrary"]


@dataclass(frozen=True)
class MoleculeImpl:
    """One implementation alternative of a Special Instruction.

    Attributes
    ----------
    si_name:
        Name of the SI this molecule implements (``getSI()`` in the
        paper's pseudo code).
    name:
        A human-readable identifier, unique within the SI.
    atoms:
        The atom-count vector.  The all-zero vector denotes the software
        implementation.
    latency:
        Cycles for one execution of the SI with this implementation.
    """

    si_name: str
    name: str
    atoms: Molecule
    latency: int

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise InvalidMoleculeError(
                f"molecule {self.si_name}/{self.name}: latency must be positive, "
                f"got {self.latency}"
            )

    @property
    def is_software(self) -> bool:
        """True for the trap-based base-ISA implementation."""
        return self.atoms.is_zero

    @property
    def determinant(self) -> int:
        """``|m|`` — total atom instances of this implementation."""
        return self.atoms.determinant

    def get_si(self) -> str:
        """Paper-pseudocode alias for :attr:`si_name` (``m.getSI()``)."""
        return self.si_name

    def get_latency(self) -> int:
        """Paper-pseudocode alias for :attr:`latency` (``m.getLatency()``)."""
        return self.latency

    def __repr__(self) -> str:
        kind = "sw" if self.is_software else f"|{self.determinant}|"
        return f"MoleculeImpl({self.si_name}/{self.name}, {kind}, {self.latency}cyc)"


class SpecialInstruction:
    """A Special Instruction with its implementation alternatives.

    Parameters
    ----------
    name:
        The SI mnemonic (unique within a library).
    space:
        The shared atom space.
    software_latency:
        Cycles of one trap-based execution on the base ISA (excluding the
        trap entry/exit overhead, which the base-processor model adds).
    molecules:
        The hardware molecules.  All must use at least one atom, have
        unique names and vectors, and be *faster* than the software
        implementation (a hardware implementation slower than software
        would never be selected nor built).
    """

    def __init__(
        self,
        name: str,
        space: AtomSpace,
        software_latency: int,
        molecules: Iterable[MoleculeImpl],
    ) -> None:
        if not name:
            raise InvalidMoleculeError("SI name must be non-empty")
        if software_latency <= 0:
            raise InvalidMoleculeError(
                f"SI {name}: software latency must be positive, got {software_latency}"
            )
        self._name = name
        self._space = space
        self._software = MoleculeImpl(
            si_name=name,
            name="software",
            atoms=space.zero(),
            latency=int(software_latency),
        )
        mols: List[MoleculeImpl] = []
        seen_names = {"software"}
        seen_vectors = set()
        for impl in molecules:
            if impl.si_name != name:
                raise InvalidMoleculeError(
                    f"molecule {impl.name} declares SI {impl.si_name!r}, "
                    f"expected {name!r}"
                )
            if impl.atoms.space != space:
                raise InvalidMoleculeError(
                    f"molecule {name}/{impl.name} uses a different atom space"
                )
            if impl.atoms.is_zero:
                raise InvalidMoleculeError(
                    f"molecule {name}/{impl.name}: hardware molecules must use "
                    f"at least one atom"
                )
            if impl.name in seen_names:
                raise InvalidMoleculeError(
                    f"duplicate molecule name {name}/{impl.name}"
                )
            if impl.atoms in seen_vectors:
                raise InvalidMoleculeError(
                    f"duplicate molecule vector {impl.atoms!r} in SI {name}"
                )
            if impl.latency >= software_latency:
                raise InvalidMoleculeError(
                    f"molecule {name}/{impl.name}: hardware latency "
                    f"{impl.latency} is not faster than software "
                    f"({software_latency})"
                )
            seen_names.add(impl.name)
            seen_vectors.add(impl.atoms)
            mols.append(impl)
        if not mols:
            raise InvalidMoleculeError(f"SI {name} has no hardware molecules")
        # Stable order: by determinant, then latency, then name — useful for
        # deterministic scheduling tie-breaks.
        mols.sort(key=lambda m: (m.determinant, m.latency, m.name))
        self._molecules: Tuple[MoleculeImpl, ...] = tuple(mols)
        self._by_name: Dict[str, MoleculeImpl] = {m.name: m for m in mols}

    # -- accessors ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def space(self) -> AtomSpace:
        return self._space

    @property
    def software(self) -> MoleculeImpl:
        """The always-available trap implementation (zero molecule)."""
        return self._software

    @property
    def software_latency(self) -> int:
        return self._software.latency

    @property
    def molecules(self) -> Tuple[MoleculeImpl, ...]:
        """The hardware molecules (sorted by determinant, latency, name)."""
        return self._molecules

    @property
    def implementations(self) -> Tuple[MoleculeImpl, ...]:
        """Software implementation followed by all hardware molecules."""
        return (self._software,) + self._molecules

    @property
    def atom_types(self) -> Tuple[str, ...]:
        """Atom types used by at least one molecule of this SI."""
        used = [False] * self._space.size
        for impl in self._molecules:
            for i, c in enumerate(impl.atoms.counts):
                if c:
                    used[i] = True
        return tuple(
            name for name, flag in zip(self._space.names, used) if flag
        )

    @property
    def num_atom_types(self) -> int:
        """Number of distinct atom types (Table 1, column 2)."""
        return len(self.atom_types)

    @property
    def num_molecules(self) -> int:
        """Number of hardware molecules (Table 1, column 3)."""
        return len(self._molecules)

    @property
    def fastest(self) -> MoleculeImpl:
        """The molecule with the globally lowest latency."""
        return min(self.implementations, key=lambda m: m.latency)

    def molecule(self, name: str) -> MoleculeImpl:
        """Look a hardware molecule up by name (or ``"software"``)."""
        if name == "software":
            return self._software
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownSpecialInstructionError(
                f"SI {self._name} has no molecule {name!r}"
            ) from None

    def __iter__(self) -> Iterator[MoleculeImpl]:
        return iter(self._molecules)

    def __repr__(self) -> str:
        return (
            f"SpecialInstruction({self._name}, {self.num_atom_types} atom types, "
            f"{self.num_molecules} molecules, sw={self.software_latency}cyc)"
        )

    # -- availability queries ------------------------------------------------

    def fastest_available(self, available: Molecule) -> MoleculeImpl:
        """The fastest implementation whose atoms are all available.

        The paper's ``getFastestAvailableMolecule(a)``: among all
        implementations ``m`` with ``m <= a`` (the software one always
        qualifies) the one with minimal latency is returned; ties are
        broken towards fewer atoms, then by name, for determinism.
        """
        best = self._software
        for impl in self._molecules:
            if impl.atoms <= available and (
                impl.latency < best.latency
                or (
                    impl.latency == best.latency
                    and (impl.determinant, impl.name)
                    < (best.determinant, best.name)
                )
            ):
                best = impl
        return best

    def available_latency(self, available: Molecule) -> int:
        """Latency of the fastest available implementation."""
        return self.fastest_available(available).latency


class SILibrary:
    """The Special Instructions of one application over a shared atom space.

    The library is the static description the run-time system works with:
    molecule selection, candidate expansion and atom scheduling all take
    the library (or a per-hot-spot subset of its SIs) as input.
    """

    def __init__(self, space: AtomSpace, sis: Iterable[SpecialInstruction]) -> None:
        self._space = space
        self._sis: Dict[str, SpecialInstruction] = {}
        for si in sis:
            if si.space != space:
                raise InvalidMoleculeError(
                    f"SI {si.name} uses a different atom space than the library"
                )
            if si.name in self._sis:
                raise InvalidMoleculeError(f"duplicate SI name {si.name!r}")
            self._sis[si.name] = si
        if not self._sis:
            raise InvalidMoleculeError("an SI library needs at least one SI")

    @property
    def space(self) -> AtomSpace:
        return self._space

    @property
    def si_names(self) -> Tuple[str, ...]:
        return tuple(self._sis)

    def __len__(self) -> int:
        return len(self._sis)

    def __iter__(self) -> Iterator[SpecialInstruction]:
        return iter(self._sis.values())

    def __contains__(self, name: object) -> bool:
        return name in self._sis

    def get(self, name: str) -> SpecialInstruction:
        try:
            return self._sis[name]
        except KeyError:
            raise UnknownSpecialInstructionError(
                f"unknown SI {name!r}; known: {list(self._sis)}"
            ) from None

    def subset(self, names: Sequence[str]) -> List[SpecialInstruction]:
        """The SIs of one hot spot, in the given order."""
        return [self.get(name) for name in names]

    def inventory(self) -> List[Tuple[str, int, int]]:
        """(SI name, #atom types, #molecules) rows — the paper's Table 1."""
        return [
            (si.name, si.num_atom_types, si.num_molecules) for si in self
        ]

    def __repr__(self) -> str:
        return f"SILibrary({len(self._sis)} SIs over {self._space.size} atom types)"
