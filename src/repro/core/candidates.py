"""Candidate expansion and cleaning — equations (3) and (4) of the paper.

The schedulers do not work on raw atoms but on *molecule candidates*: all
molecules that are smaller (in the lattice order) than a selected molecule
of the same SI.  These candidates are the possible intermediate upgrade
steps on a scheduling path up to ``sup(M)``.

Equation (3) — expansion::

    M' = { o | exists m in M:  o <= m  and  o.getSI() == m.getSI() }

Equation (4) — cleaning, relative to the currently available *or already
scheduled* atoms ``a``::

    M'' = { o in M' | |a ⊖ o| > 0
                      and o.getLatency() <
                          o.getSI().getFastestAvailableMolecule(a).getLatency() }

i.e. a candidate is dropped once it is already implicitly available, and a
candidate that would not improve on the currently fastest available (or
scheduled) molecule of its SI is never worth loading — even if its vector
is not dominated.  The paper's ``m4 = (1, 3)`` example shows why this
cannot be decided at compile time: whether ``m4`` is useful depends on the
atoms that happen to be available when the schedule is computed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from .molecule import Molecule
from .si import MoleculeImpl, SpecialInstruction

__all__ = ["expand_candidates", "clean_candidates", "best_latency_map"]


def expand_candidates(
    selection: Mapping[str, MoleculeImpl],
    sis: Mapping[str, SpecialInstruction],
) -> List[MoleculeImpl]:
    """Equation (3): all molecules that are intermediate steps towards the
    selected molecules.

    Parameters
    ----------
    selection:
        SI name -> selected molecule (the scheduling input ``M``).
    sis:
        SI name -> :class:`SpecialInstruction` (the library view).

    Returns
    -------
    The candidate list ``M'`` in a deterministic order (selection order,
    then each SI's canonical molecule order).  Only hardware molecules are
    returned — the software implementation is the zero molecule and never
    needs to be scheduled.  The selected molecule itself is always part of
    its SI's candidates.
    """
    candidates: List[MoleculeImpl] = []
    for si_name, selected in selection.items():
        si = sis[si_name]
        for impl in si.molecules:
            if impl.atoms <= selected.atoms:
                candidates.append(impl)
    return candidates


def best_latency_map(
    selection: Mapping[str, MoleculeImpl],
    sis: Mapping[str, SpecialInstruction],
    available: Molecule,
) -> Dict[str, int]:
    """Initialise the paper's ``bestLatency`` array (Figure 6, lines 6-9).

    For every SI of the selection the latency of the fastest *currently
    available* implementation is recorded; the scheduler then updates the
    entry whenever it schedules a faster molecule.
    """
    return {
        si_name: sis[si_name].available_latency(available)
        for si_name in selection
    }


def clean_candidates(
    candidates: Iterable[MoleculeImpl],
    available: Molecule,
    best_latency: Mapping[str, int],
) -> List[MoleculeImpl]:
    """Equation (4): drop candidates that are already available or no
    longer an improvement.

    ``available`` is the meta-molecule of currently available **or already
    scheduled** atoms ``a``; ``best_latency`` maps each SI to the latency
    of its fastest available/scheduled molecule.
    """
    cleaned: List[MoleculeImpl] = []
    for impl in candidates:
        if available.missing(impl.atoms).determinant == 0:
            continue  # already (implicitly) available
        if impl.latency >= best_latency[impl.si_name]:
            continue  # not an improvement over what is available/scheduled
        cleaned.append(impl)
    return cleaned
