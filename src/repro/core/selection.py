"""Molecule selection for an upcoming hot spot.

Before atoms can be scheduled, the Run-Time Manager must decide *which*
molecule shall implement each SI of the hot spot (point III in Section
3.1; the details are "beyond the scope" of the paper and were published
with the RISPP platform paper [23]).  The selection fixes the scheduling
input ``M`` and guarantees its feasibility: ``NA = |sup(M)| <= #ACs``.

We implement the profit-greedy selection of the RISPP project:

1. start with the software implementation for every SI,
2. repeatedly consider every faster molecule ``m`` of every SI and
   compute
   * ``profit(m) = expected[si] * (latency(selected[si]) - latency(m))``
   * ``cost(m)   = |sup(M with m substituted)| - |sup(M)|``
     (the *additional* atom containers the upgrade occupies — atom types
     shared with other selected molecules are free),
3. greedily apply the feasible substitution with the best profit/cost
   ratio (zero-cost improvements are always taken first) until no
   feasible improvement remains.

The selection is deliberately blind to reconfiguration *time*: it answers
"what should eventually run", while making that endpoint cheap to reach
is exactly the scheduler's job.  This division reproduces the paper's
Figure 7 observation that bigger AC counts let the selection pick bigger
molecules, which *punishes* naive schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SelectionError
from .molecule import AtomSpace, Molecule, sup
from .si import MoleculeImpl, SpecialInstruction

__all__ = ["MoleculeSelection", "select_molecules", "select_molecules_optimal"]


@dataclass(frozen=True)
class MoleculeSelection:
    """The result of molecule selection for one hot spot.

    Attributes
    ----------
    implementations:
        SI name -> selected molecule.  SIs that stay in software map to
        their software implementation (and contribute no atoms).
    meta:
        ``sup(M)`` over the selected *hardware* molecules — all atoms the
        hot spot wants loaded.
    num_acs:
        The atom-container budget the selection was computed for.
    """

    implementations: Mapping[str, MoleculeImpl]
    meta: Molecule
    num_acs: int

    @property
    def num_atoms(self) -> int:
        """``NA = |sup(M)|`` — guaranteed ``<= num_acs``."""
        return self.meta.determinant

    def hardware_selection(self) -> Dict[str, MoleculeImpl]:
        """Only the SIs that got a hardware molecule (scheduler input)."""
        return {
            name: impl
            for name, impl in self.implementations.items()
            if not impl.is_software
        }

    def latency(self, si_name: str) -> int:
        """Final latency of ``si_name`` once fully composed."""
        return self.implementations[si_name].latency


def _meta_with(
    selection: Dict[str, MoleculeImpl],
    si_name: str,
    impl: MoleculeImpl,
    space: AtomSpace,
) -> Molecule:
    """``sup`` of the selection with ``si_name`` replaced by ``impl``."""
    atoms = [
        chosen.atoms
        for name, chosen in selection.items()
        if name != si_name and not chosen.is_software
    ]
    if not impl.is_software:
        atoms.append(impl.atoms)
    return sup(atoms, space)


def select_molecules(
    sis: Sequence[SpecialInstruction],
    expected: Mapping[str, float],
    num_acs: int,
    available: Optional[Molecule] = None,
) -> MoleculeSelection:
    """Profit-greedy molecule selection under the AC budget.

    Parameters
    ----------
    sis:
        The Special Instructions of the upcoming hot spot.
    expected:
        Expected executions per SI (from the online monitor).  SIs with
        zero expectation never receive atoms.
    num_acs:
        Number of atom containers — the hard capacity bound for
        ``|sup(M)|``.
    available:
        Currently loaded atoms; used only as a deterministic tie-break
        (prefer upgrades that reuse loaded atoms), never to violate the
        greedy profit order.
    """
    if not sis:
        raise SelectionError("cannot select molecules for an empty hot spot")
    if num_acs < 0:
        raise SelectionError(f"negative atom-container budget: {num_acs}")
    space = sis[0].space
    for si in sis:
        if si.space != space:
            raise SelectionError("hot-spot SIs use different atom spaces")
    zero = space.zero()
    reuse_base = available if available is not None else zero

    selection: Dict[str, MoleculeImpl] = {si.name: si.software for si in sis}
    by_name: Dict[str, SpecialInstruction] = {si.name: si for si in sis}
    meta = zero

    while True:
        best_key: Optional[Tuple[float, float, int, str, str]] = None
        best_choice: Optional[Tuple[str, MoleculeImpl, Molecule]] = None
        # sup of the selection with each SI excluded, computed once per
        # greedy round (every candidate of that SI reuses it).
        others_sup: Dict[str, Molecule] = {
            si.name: _meta_with(selection, si.name, si.software, space)
            for si in sis
        }
        for si in sis:
            exec_weight = float(expected.get(si.name, 0.0))
            if exec_weight <= 0.0:
                continue
            current = selection[si.name]
            base = others_sup[si.name]
            for impl in si.molecules:
                if impl.latency >= current.latency:
                    continue
                new_meta = base | impl.atoms
                if new_meta.determinant > num_acs:
                    continue
                cost = new_meta.determinant - meta.determinant
                profit = exec_weight * (current.latency - impl.latency)
                # Ratio with cost 0 ranks above everything; encode as the
                # pair (-is_free, -ratio) so min() picks the best.
                if cost <= 0:
                    rank = (0.0, -profit)
                else:
                    rank = (1.0, -profit / cost)
                reuse = reuse_base.missing(impl.atoms).determinant
                key = rank + (reuse, si.name, impl.name)
                if best_key is None or key < best_key:
                    best_key = key
                    best_choice = (si.name, impl, new_meta)
        if best_choice is None:
            break
        si_name, impl, meta = best_choice
        selection[si_name] = impl

    if meta.determinant > num_acs:  # pragma: no cover - defensive
        raise SelectionError(
            f"selection uses {meta.determinant} atoms but only "
            f"{num_acs} ACs are available"
        )
    return MoleculeSelection(
        implementations=dict(selection), meta=meta, num_acs=num_acs
    )


def select_molecules_optimal(
    sis: Sequence[SpecialInstruction],
    expected: Mapping[str, float],
    num_acs: int,
) -> MoleculeSelection:
    """Exhaustive (branch-and-bound) molecule selection.

    Finds the selection minimising the expected execution cost
    ``sum_si expected[si] * latency(selected[si])`` subject to
    ``|sup(M)| <= num_acs``.  Exponential in the number of SIs times
    molecules — intended for small instances (tests and the selection
    ablation), where it bounds how much the greedy heuristic gives away.
    """
    if not sis:
        raise SelectionError("cannot select molecules for an empty hot spot")
    if num_acs < 0:
        raise SelectionError(f"negative atom-container budget: {num_acs}")
    space = sis[0].space
    zero = space.zero()

    # Per SI: all implementations (software first), pruned to the Pareto
    # front over (atoms, latency) to keep the search tree small.
    options: List[List[MoleculeImpl]] = []
    weights: List[float] = []
    for si in sis:
        impls = [si.software] + [
            impl for impl in si.molecules if impl.determinant <= num_acs
        ]
        impls.sort(key=lambda m: m.latency)
        options.append(impls)
        weights.append(float(expected.get(si.name, 0.0)))

    best_cost = [float("inf")]
    best_choice: List[Optional[Tuple[MoleculeImpl, ...]]] = [None]

    def lower_bound(index: int) -> float:
        """Cost if every remaining SI got its fastest implementation."""
        return sum(
            weights[i] * options[i][0].latency
            for i in range(index, len(options))
        )

    def recurse(index: int, meta: Molecule, cost: float,
                chosen: Tuple[MoleculeImpl, ...]) -> None:
        if cost + lower_bound(index) >= best_cost[0]:
            return
        if index == len(options):
            best_cost[0] = cost
            best_choice[0] = chosen
            return
        weight = weights[index]
        for impl in options[index]:
            new_meta = meta if impl.is_software else meta | impl.atoms
            if new_meta.determinant > num_acs:
                continue
            recurse(
                index + 1,
                new_meta,
                cost + weight * impl.latency,
                chosen + (impl,),
            )

    recurse(0, zero, 0.0, ())
    assert best_choice[0] is not None  # software-only is always feasible
    implementations = {
        si.name: impl for si, impl in zip(sis, best_choice[0])
    }
    meta = sup(
        [impl.atoms for impl in implementations.values()
         if not impl.is_software],
        space,
    )
    return MoleculeSelection(
        implementations=implementations, meta=meta, num_acs=num_acs
    )
