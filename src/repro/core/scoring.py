"""Array-friendly fast paths for molecule selection and atom scheduling.

The reference decision code (:func:`repro.core.selection.select_molecules`
and the :class:`~repro.core.schedulers.base.SchedulerState` bookkeeping)
spends most of its time in per-candidate :class:`Molecule` lattice calls —
tuple allocations and hashes dominate a profile of any sweep.  This module
re-expresses exactly the same computations over numpy struct-of-arrays
views so the vector simulation engine (:mod:`repro.sim.vector`) can plan
hot spots quickly.

Bit-identity is the contract, not a goal: every operation here either

* uses integer dtypes (atom counts, latencies, determinants — int64,
  exact), or
* evaluates the reference float expressions on the *same Python floats*
  the scalar code sees (``profit = expected * latency_gain`` and
  ``-profit / cost`` run as ordinary CPython arithmetic over values
  pulled out of the int64 arrays), or
* replicates the reference comparison *order* (the sequential HEF
  cross-multiplied scan is order-dependent in near-tie rounding, so it is
  rerun sequentially over precomputed arrays instead of via ``argmax``).

The engines must agree field-for-field on every
:class:`~repro.sim.results.SimulationResult`; the differential harness in
``tests/test_vector_differential.py`` enforces it.

The expensive part of building the array views — stacking every
implementation's atom vector into int64 matrices — depends only on the
SI library objects, which are immutable and recur on every hot-spot plan
of a run.  Callers therefore pass a ``cache`` dict (the Run-Time Manager
owns one per simulator) and the static tables are built once per
distinct SI set / selection instead of once per plan.  Cache entries
hold strong references to the keyed objects, so the ``id()``-based keys
can never alias a recycled object.

Float division appears here deliberately: RL005 (division-free) scopes to
``repro/core/schedulers/*`` and ``repro/sim/vector*`` — the schedulers'
HEF compare stays cross-multiplied, while this module mirrors the
reference *selection* ratio, which lives outside that scope in
``repro/core/selection.py`` and legitimately divides.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import (
    InvalidScheduleError,
    SelectionError,
    UnknownSpecialInstructionError,
)
from .molecule import AtomSpace, Molecule
from .schedule import Schedule
from .schedulers.base import AtomScheduler, SchedulerState
from .selection import MoleculeSelection
from .si import MoleculeImpl, SpecialInstruction

__all__ = [
    "select_molecules_fast",
    "VectorSchedulerState",
    "fast_schedule",
]

#: Latency sentinel for infeasible rows in the best-latency refresh.
_LAT_SENTINEL = np.iinfo(np.int64).max

#: Opaque cache type shared by the fast-path entry points.
ScoringCache = Dict[object, object]


class _SelectionTables:
    """Static arrays for :func:`select_molecules_fast` (one SI set)."""

    __slots__ = (
        "sis", "space", "impls", "rows", "lat", "lat_list", "row_si",
        "row_si_list", "si_names", "impl_names", "software_lat",
        "software_lat_list",
    )

    def __init__(self, sis: Tuple[SpecialInstruction, ...]) -> None:
        space = sis[0].space
        for si in sis:
            if si.space != space:
                raise SelectionError("hot-spot SIs use different atom spaces")
        #: Strong reference pinning the keyed SI objects alive.
        self.sis = sis
        self.space = space
        impls: List[MoleculeImpl] = []
        row_si_list: List[int] = []
        for si_idx, si in enumerate(sis):
            for impl in si.molecules:
                impls.append(impl)
                row_si_list.append(si_idx)
        self.impls = impls
        self.rows = np.array(
            [impl.atoms.counts for impl in impls], dtype=np.int64
        ).reshape(len(impls), space.size)
        self.lat = np.array([impl.latency for impl in impls], dtype=np.int64)
        self.lat_list = [impl.latency for impl in impls]
        self.row_si = np.array(row_si_list, dtype=np.intp)
        self.row_si_list = row_si_list
        self.si_names = [si.name for si in sis]
        self.impl_names = [impl.name for impl in impls]
        self.software_lat = np.array(
            [si.software.latency for si in sis], dtype=np.int64
        )
        self.software_lat_list = [si.software.latency for si in sis]


def _selection_tables(
    sis: Sequence[SpecialInstruction], cache: Optional[ScoringCache]
) -> _SelectionTables:
    if cache is None:
        return _SelectionTables(tuple(sis))
    key = ("select", tuple(id(si) for si in sis))
    tables = cache.get(key)
    if tables is None:
        tables = _SelectionTables(tuple(sis))
        cache[key] = tables
    assert isinstance(tables, _SelectionTables)
    return tables


def select_molecules_fast(
    sis: Sequence[SpecialInstruction],
    expected: Mapping[str, float],
    num_acs: int,
    available: Optional[Molecule] = None,
    cache: Optional[ScoringCache] = None,
) -> MoleculeSelection:
    """Vectorized :func:`repro.core.selection.select_molecules`.

    Produces the identical :class:`MoleculeSelection` — same
    implementations dict (same insertion order), same meta-molecule —
    for every input the reference accepts.  The greedy round structure
    is preserved: the per-candidate lattice math (meta-molecule unions,
    determinants) is batched in int64, while the rank/tie-break cascade
    runs over the masked candidates as ordinary Python tuples with the
    exact reference key ``(rank, reuse, si_name, impl_name)``.

    ``cache`` (any dict the caller keeps alive) memoizes the static
    implementation tables per SI set across calls.
    """
    if not sis:
        raise SelectionError("cannot select molecules for an empty hot spot")
    if num_acs < 0:
        raise SelectionError(f"negative atom-container budget: {num_acs}")
    tables = _selection_tables(sis, cache)
    space = tables.space
    n = space.size
    num_sis = len(sis)
    impls = tables.impls
    rows = tables.rows
    lat = tables.lat
    lat_list = tables.lat_list
    row_si = tables.row_si
    row_si_list = tables.row_si_list
    si_names = tables.si_names
    impl_names = tables.impl_names

    exec_list = [float(expected.get(name, 0.0)) for name in si_names]
    exec_w = np.array(exec_list, dtype=np.float64)
    exec_pos = exec_w[row_si] > 0.0
    if available is not None:
        reuse_counts = np.array(available.counts, dtype=np.int64)
    else:
        reuse_counts = np.zeros(n, dtype=np.int64)
    # Static per candidate: |reuse_base ⊖ impl.atoms|.
    reuse_list = (
        np.maximum(rows - reuse_counts, 0).sum(axis=1).tolist()
    )

    selection: Dict[str, MoleculeImpl] = {si.name: si.software for si in sis}
    current_lat = tables.software_lat.copy()
    cl_list = list(tables.software_lat_list)
    # Selected *hardware* atoms per SI (software rows stay zero).
    selected = np.zeros((num_sis, n), dtype=np.int64)
    meta_det = 0

    while True:
        mask = exec_pos & (lat < current_lat[row_si])
        if not mask.any():
            break
        # sup of the selection with each SI excluded: running maxima from
        # both ends (prefix below, suffix above), combined per SI.
        up = np.zeros((num_sis, n), dtype=np.int64)
        np.maximum.accumulate(selected[:-1], axis=0, out=up[1:])
        down = np.maximum.accumulate(selected[::-1], axis=0)[::-1]
        others = up
        others[:-1] = np.maximum(up[:-1], down[1:])

        new_meta = np.maximum(others[row_si], rows)
        new_det = new_meta.sum(axis=1)
        mask &= new_det <= num_acs
        idx = mask.nonzero()[0]
        if idx.size == 0:
            break
        idx_list = idx.tolist()
        det_list = new_det[idx].tolist()
        # Rank + tie-break over the masked candidates with the exact
        # reference key ``(flag, value, reuse, si_name, impl_name)``; the
        # masked sets are small (a handful of improving, affordable
        # molecules), so a Python scan beats another cascade of
        # tiny-array reductions.  The floats are ordinary Python floats —
        # the arithmetic is the scalar code's, operand for operand.  The
        # lexicographic compare runs in two stages: the numeric prefix
        # decides almost every round, and the string tie-break tuple is
        # only built for rows that tie on it exactly.
        best_flag = 2.0
        best_val = 0.0
        ties: List[int] = []
        for t, j in enumerate(idx_list):
            s = row_si_list[j]
            cost = det_list[t] - meta_det
            profit = exec_list[s] * (cl_list[s] - lat_list[j])
            if cost <= 0:
                flag = 0.0
                val = -profit
            else:
                flag = 1.0
                val = -profit / cost
            if flag < best_flag or (flag == best_flag and val < best_val):
                best_flag = flag
                best_val = val
                ties = [j]
            elif flag == best_flag and val == best_val:
                ties.append(j)
        best_row = ties[0]
        if len(ties) > 1:
            best_tb: Optional[Tuple[int, str, str]] = None
            for j in ties:
                s = row_si_list[j]
                tb = (reuse_list[j], si_names[s], impl_names[j])
                if best_tb is None or tb < best_tb:
                    best_tb = tb
                    best_row = j
        winner = impls[best_row]
        si_idx = row_si_list[best_row]
        selection[winner.si_name] = winner
        current_lat[si_idx] = winner.latency
        cl_list[si_idx] = winner.latency
        selected[si_idx] = rows[best_row]
        meta_det = int(new_det[best_row])

    if meta_det > num_acs:  # pragma: no cover - defensive
        raise SelectionError(
            f"selection uses {meta_det} atoms but only "
            f"{num_acs} ACs are available"
        )
    # sup of the selected hardware molecules — equal to the winning row's
    # ``new_meta`` of the last round (or zero when every SI stayed in
    # software).
    meta = Molecule._make(space, tuple(selected.max(axis=0).tolist()))
    return MoleculeSelection(
        implementations=dict(selection), meta=meta, num_acs=num_acs
    )


class _ScheduleTables:
    """Static arrays for :class:`VectorSchedulerState` (one selection)."""

    __slots__ = (
        "selection", "sis", "space", "candidates", "cand_rows", "cand_lat",
        "cand_lat_list", "cand_si", "cand_si_list", "cand_index",
        "cand_mask", "sel_names", "sel_pos", "impl_rows", "impl_lat",
        "impl_offsets", "software_lat",
    )

    def __init__(
        self,
        selection: Mapping[str, MoleculeImpl],
        sis: Mapping[str, SpecialInstruction],
    ) -> None:
        if not selection:
            raise InvalidScheduleError("cannot schedule an empty selection")
        for si_name in selection:
            if si_name not in sis:
                raise UnknownSpecialInstructionError(
                    f"selection references unknown SI {si_name!r}"
                )
        #: Strong references pinning the keyed objects alive.
        self.selection: Dict[str, MoleculeImpl] = dict(selection)
        self.sis: Dict[str, SpecialInstruction] = dict(sis)
        space: AtomSpace = next(iter(selection.values())).atoms.space
        self.space = space
        n = space.size
        # Equation (3): the full candidate list M' (expand_candidates).
        cands: List[MoleculeImpl] = []
        cand_si_list: List[int] = []
        impl_rows: List[Tuple[int, ...]] = []
        impl_lat: List[int] = []
        offsets: List[int] = [0]
        sel_names: List[str] = list(selection)
        for si_idx, si_name in enumerate(sel_names):
            si = self.sis[si_name]
            sel_atoms = selection[si_name].atoms
            for impl in si.molecules:
                if impl.atoms <= sel_atoms:
                    cands.append(impl)
                    cand_si_list.append(si_idx)
                impl_rows.append(impl.atoms.counts)
                impl_lat.append(impl.latency)
            offsets.append(len(impl_rows))
        self.candidates = cands
        self.cand_rows = np.array(
            [c.atoms.counts for c in cands], dtype=np.int64
        ).reshape(len(cands), n)
        self.cand_lat = np.array([c.latency for c in cands], dtype=np.int64)
        self.cand_lat_list = [c.latency for c in cands]
        self.cand_si = np.array(cand_si_list, dtype=np.intp)
        self.cand_si_list = cand_si_list
        # Frozen-dataclass __hash__ is too slow for the hot path; the
        # candidate objects are pinned above, so identity is a safe key.
        self.cand_index: Dict[int, int] = {
            id(c): j for j, c in enumerate(cands)
        }
        self.cand_mask: Dict[str, np.ndarray] = {
            si_name: np.array(
                [c.si_name == si_name for c in cands], dtype=bool
            )
            for si_name in sel_names
        }
        self.sel_names = sel_names
        self.sel_pos = {name: i for i, name in enumerate(sel_names)}
        # Stacked implementation table for the best-latency refresh (one
        # feasibility reduction instead of per-SI lattice calls).
        self.impl_rows = np.array(impl_rows, dtype=np.int64).reshape(
            len(impl_rows), n
        )
        self.impl_lat = np.array(impl_lat, dtype=np.int64)
        self.impl_offsets = np.array(offsets[:-1], dtype=np.intp)
        self.software_lat = np.array(
            [self.sis[name].software_latency for name in sel_names],
            dtype=np.int64,
        )


def _schedule_tables(
    selection: Mapping[str, MoleculeImpl],
    sis: Mapping[str, SpecialInstruction],
    cache: Optional[ScoringCache],
) -> _ScheduleTables:
    if cache is None:
        return _ScheduleTables(selection, sis)
    key = (
        "schedule",
        tuple((name, id(impl)) for name, impl in selection.items()),
        tuple(sorted((name, id(si)) for name, si in sis.items())),
    )
    tables = cache.get(key)
    if tables is None:
        tables = _ScheduleTables(selection, sis)
        cache[key] = tables
    assert isinstance(tables, _ScheduleTables)
    return tables


class VectorSchedulerState(SchedulerState):
    """A :class:`SchedulerState` whose hot queries run on cached arrays.

    The public surface (``available``, ``best_latency``, ``commit``,
    ``cleaned_candidates`` ...) keeps the reference semantics, so the
    unmodified scheduler strategies (``FSFR``/``ASF``/``SJF``/beam
    search/random) run on it verbatim; only the per-candidate lattice
    math is replaced by int64 array operations.  ``finalize`` is
    inherited untouched — it reads the synced ``available`` molecule.

    ``available`` and ``best_latency`` are materialized lazily from the
    arrays: the fast commit path only invalidates them, and the dict /
    molecule views are rebuilt when a strategy (or ``finalize``) actually
    reads them.  The parent ``__init__`` is deliberately not called: its
    validation and array building are replayed (or cache-hit) by the
    static :class:`_ScheduleTables`, and ``best_latency`` is seeded by
    the vectorized equivalent of
    :func:`~repro.core.candidates.best_latency_map`.
    """

    def __init__(
        self,
        selection: Mapping[str, MoleculeImpl],
        sis: Mapping[str, SpecialInstruction],
        available: Molecule,
        expected: Mapping[str, float],
        tables: Optional[_ScheduleTables] = None,
    ) -> None:
        if tables is None:
            tables = _schedule_tables(selection, sis, None)
        self._tables = tables
        self.selection = dict(selection)
        self.sis = dict(sis)
        self.space = available.space
        self._avail_mol: Optional[Molecule] = available
        self.expected = {
            si_name: float(expected.get(si_name, 0.0))
            for si_name in selection
        }
        self.candidates = list(tables.candidates)
        self.schedule = Schedule(self.space)
        self._avail_arr = np.array(available.counts, dtype=np.int64)
        self._cand_rows = tables.cand_rows
        self._cand_lat = tables.cand_lat
        self._cand_index = tables.cand_index
        self._sel_names = tables.sel_names
        self._cand_si = tables.cand_si
        self._impl_rows = tables.impl_rows
        self._impl_lat = tables.impl_lat
        self._impl_offsets = tables.impl_offsets
        self._software_lat = tables.software_lat
        # Figure 6 lines 6-9 (best_latency_map): the fastest latency
        # feasible under ``available``, software included.
        feasible = (tables.impl_rows <= self._avail_arr).all(axis=1)
        lat = np.where(feasible, tables.impl_lat, _LAT_SENTINEL)
        seg_min = np.minimum.reduceat(lat, tables.impl_offsets)
        self._blat = np.minimum(tables.software_lat, seg_min)
        self._bl_dict: Optional[Dict[str, int]] = None
        self._addl = np.empty(len(tables.candidates), dtype=np.int64)
        self._diff = np.empty_like(tables.cand_rows)
        # Last cleaned_candidates result with its candidate indices: the
        # strategies feed that exact list object straight back into
        # smallest_step, which can then skip the id()->index mapping.
        # The mapping never goes stale — candidate object <-> index is
        # static for the state's lifetime.
        self._last_clean: Optional[Tuple[List[MoleculeImpl], List[int]]] = None
        self._refresh_additional()

    # -- lazy views over the arrays ----------------------------------------

    @property
    def available(self) -> Molecule:
        mol = self._avail_mol
        if mol is None:
            mol = Molecule._make(self.space, tuple(self._avail_arr.tolist()))
            self._avail_mol = mol
        return mol

    @available.setter
    def available(self, mol: Molecule) -> None:
        # Reference-path assignments (super().commit, finalize) land
        # here; the arrays are resynced by the callers that need them.
        self._avail_mol = mol

    @property
    def best_latency(self) -> Dict[str, int]:
        mapping = self._bl_dict
        if mapping is None:
            mapping = dict(zip(self._sel_names, self._blat.tolist()))
            self._bl_dict = mapping
        return mapping

    @best_latency.setter
    def best_latency(self, mapping: Dict[str, int]) -> None:
        self._bl_dict = mapping

    # -- internal sync -----------------------------------------------------

    def _refresh_additional(self) -> None:
        np.subtract(self._cand_rows, self._avail_arr, out=self._diff)
        np.maximum(self._diff, 0, out=self._diff)
        self._diff.sum(axis=1, out=self._addl)

    def _resync_from_reference(self) -> None:
        """Rebuild the arrays from the dict/molecule ground truth."""
        self._avail_arr = np.array(self.available.counts, dtype=np.int64)
        self._blat = np.array(
            [self.best_latency[name] for name in self._sel_names],
            dtype=np.int64,
        )
        self._refresh_additional()

    # -- queries -----------------------------------------------------------

    def cleaned_candidates(
        self, si_name: Optional[str] = None
    ) -> List[MoleculeImpl]:
        mask = (self._addl > 0) & (self._cand_lat < self._blat[self._cand_si])
        if si_name is not None:
            mask &= self._tables.cand_mask[si_name]
        cands = self.candidates
        js = mask.nonzero()[0].tolist()
        result = [cands[j] for j in js]
        self._last_clean = (result, js)
        return result

    def additional_atoms(self, impl: MoleculeImpl) -> int:
        j = self._cand_index.get(id(impl))
        if j is None:
            return super().additional_atoms(impl)
        return int(self._addl[j])

    def smallest_step(
        self, candidates: List[MoleculeImpl]
    ) -> Optional[MoleculeImpl]:
        if not candidates:
            return None
        last = self._last_clean
        if last is not None and candidates is last[0]:
            js = last[1]
        else:
            index = self._cand_index
            js = []
            for c in candidates:
                j = index.get(id(c))
                if j is None:
                    return super().smallest_step(candidates)
                js.append(j)
        addl = self._addl[js].tolist()
        blat = self._blat.tolist()
        tables = self._tables
        cand_si = tables.cand_si_list
        cand_lat = tables.cand_lat_list
        # Reference key: (additional, -improvement, si_name, name);
        # -improvement == latency - best_latency[si].  Two-stage compare:
        # the int prefix decides nearly always, the (si_name, name)
        # strings only break exact numeric ties.
        best_addl = -1
        best_dlat = 0
        ties: List[int] = []
        for t, j in enumerate(js):
            a = addl[t]
            d = cand_lat[j] - blat[cand_si[j]]
            if best_addl < 0 or a < best_addl or (
                a == best_addl and d < best_dlat
            ):
                best_addl = a
                best_dlat = d
                ties = [t]
            elif a == best_addl and d == best_dlat:
                ties.append(t)
        best = candidates[ties[0]]
        if len(ties) > 1:
            for t in ties[1:]:
                c = candidates[t]
                if (c.si_name, c.name) < (best.si_name, best.name):
                    best = c
        return best

    # -- mutation ----------------------------------------------------------

    def commit(self, impl: MoleculeImpl) -> None:
        j = self._cand_index.get(id(impl))
        if j is None:
            # Unknown implementation (e.g. a selected molecule committed
            # directly by upgrade_si_fully's fallback): run the reference
            # path and resync the arrays from the ground truth.
            super().commit(impl)
            self._resync_from_reference()
            return
        avail = self._avail_arr
        row = self._cand_rows[j]
        new_list = np.maximum(row - avail, 0).tolist()
        new_atoms = Molecule._make(self.space, tuple(new_list))
        latency_before = int(self._blat[self._tables.sel_pos[impl.si_name]])
        self.schedule.append_step(
            impl, new_atoms, latency_before=latency_before
        )
        if not any(new_list):
            # Nothing new to load: the availability is unchanged, and
            # impl being feasible under it means best_latency already
            # accounts for impl.latency — all views stay valid.
            return
        np.maximum(avail, row, out=avail)
        self._avail_mol = None
        # Reference refresh: best_latency[si] becomes the fastest latency
        # available under the new virtual availability (which covers the
        # just-committed impl by construction), floored at the old value.
        # Software latencies are already folded into the initial _blat.
        feasible = (self._impl_rows <= avail).all(axis=1)
        lat = np.where(feasible, self._impl_lat, _LAT_SENTINEL)
        seg_min = np.minimum.reduceat(lat, self._impl_offsets)
        np.minimum(self._blat, seg_min, out=self._blat)
        self._bl_dict = None
        self._refresh_additional()


def _run_hef_fast(state: VectorSchedulerState) -> None:
    """HEF's ``_run`` replayed over the state's cached arrays.

    The sequential cross-multiplied compare (``num * best_den >
    best_num * den``) is order-dependent under float rounding near ties,
    so the scan itself stays a sequential loop — the mask is batched,
    while the ``num``/``den`` terms come out of the arrays as the same
    Python floats the reference computes.  Division-free, like the
    reference (RL005).
    """
    tables = state._tables
    exec_list = [state.expected[name] for name in tables.sel_names]
    cands = state.candidates
    cand_si_list = tables.cand_si_list
    cand_lat_list = tables.cand_lat_list
    cand_si = state._cand_si
    cand_lat = state._cand_lat
    while True:
        blat = state._blat
        mask = (state._addl > 0) & (cand_lat < blat[cand_si])
        idx = mask.nonzero()[0]
        if idx.size == 0:
            return
        idx_list = idx.tolist()
        addl_list = state._addl[idx].tolist()
        blat_list = blat.tolist()
        best_j = -1
        best_num = 0.0
        best_den = 1.0
        for t, j in enumerate(idx_list):
            s = cand_si_list[j]
            num = exec_list[s] * (blat_list[s] - cand_lat_list[j])
            den = float(addl_list[t])
            if best_j < 0 or num * best_den > best_num * den:
                best_j = j
                best_num = num
                best_den = den
        if best_num <= 0.0:
            candidates = [cands[j] for j in idx_list]
            state._last_clean = (candidates, idx_list)
            fallback = AtomScheduler.smallest_step(state, candidates)
            if fallback is None:
                return
            state.commit(fallback)
        else:
            state.commit(cands[best_j])


def fast_schedule(
    scheduler: AtomScheduler,
    selection: Mapping[str, MoleculeImpl],
    sis: Mapping[str, SpecialInstruction],
    available: Molecule,
    expected: Mapping[str, float],
    cache: Optional[ScoringCache] = None,
) -> Schedule:
    """Run ``scheduler`` over a :class:`VectorSchedulerState`.

    HEF — whose global candidate scan dominates sweep profiles — is
    routed to :func:`_run_hef_fast`; every other strategy executes its
    own unmodified ``_run`` against the accelerated state.  Either way
    the resulting :class:`Schedule` is identical to
    ``scheduler.schedule(...)``.  ``cache`` memoizes the static per-
    selection candidate tables across hot-spot plans.
    """
    state = VectorSchedulerState(
        selection, sis, available, expected,
        tables=_schedule_tables(selection, sis, cache),
    )
    if scheduler.name == "HEF":
        _run_hef_fast(state)
    else:
        scheduler._run(state)
    return state.finalize()
