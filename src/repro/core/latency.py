"""Latency model for molecule implementations.

The paper assigns each molecule a *latency* — the number of cycles one
execution of the corresponding Special Instruction takes when that
molecule implements it.  More atom instances expose more molecule-level
parallelism and reduce the latency, with diminishing returns (and
occasionally *without* any return: the paper's ``m4 = (1, 3)`` example is
a molecule that is larger than ``m2 = (2, 2)`` on one axis yet slower,
which is exactly what the cleaning step of equation (4) must cope with).

We model a molecule as a pipelined datapath in which each atom *role*
(e.g. the ``TRANSFORM`` stage of SATD) has to perform a fixed number of
passes per SI execution.  Replicating an atom ``k`` times divides its pass
count by ``k`` (rounded up).  The stages operate as a pipeline, so the
slowest stage dominates the steady state while every stage contributes a
fill/drain term:

``latency(m) = setup + max_r ceil(passes_r / m_r) * cycles_r
             + drain * (#roles - 1)``

This simple model reproduces the qualitative latency curves of the RISPP
publications: steep improvement for the first one or two instances of the
bottleneck atom, a long flat tail, and natural non-Pareto points whenever
a molecule spends atoms on a non-bottleneck role.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from ..errors import InvalidMoleculeError
from .molecule import Molecule

__all__ = ["AtomRole", "PipelineLatencyModel"]


@dataclass(frozen=True)
class AtomRole:
    """One pipeline stage of an SI datapath.

    Attributes
    ----------
    atom_type:
        Name of the atom type that implements this stage.
    passes:
        How many passes of this stage one SI execution requires when a
        single atom instance is available.
    cycles_per_pass:
        Cycles one pass takes on one atom instance.
    """

    atom_type: str
    passes: int
    cycles_per_pass: int

    def __post_init__(self) -> None:
        if self.passes <= 0:
            raise InvalidMoleculeError(
                f"role {self.atom_type!r}: passes must be positive, got {self.passes}"
            )
        if self.cycles_per_pass <= 0:
            raise InvalidMoleculeError(
                f"role {self.atom_type!r}: cycles_per_pass must be positive, "
                f"got {self.cycles_per_pass}"
            )

    def stage_cycles(self, instances: int) -> int:
        """Cycles this stage needs when ``instances`` atoms serve it."""
        if instances <= 0:
            raise InvalidMoleculeError(
                f"role {self.atom_type!r} executed with {instances} instances"
            )
        return math.ceil(self.passes / instances) * self.cycles_per_pass


class PipelineLatencyModel:
    """Computes per-molecule latencies for one Special Instruction.

    Parameters
    ----------
    roles:
        The pipeline stages, in dataflow order.  Each atom type may appear
        at most once.
    setup_cycles:
        Fixed per-execution overhead (operand fetch, result write-back).
    drain_cycles:
        Pipeline fill/drain contribution per stage boundary.
    """

    def __init__(
        self,
        roles: Sequence[AtomRole],
        setup_cycles: int = 4,
        drain_cycles: int = 2,
    ) -> None:
        if not roles:
            raise InvalidMoleculeError("a latency model needs at least one role")
        seen = set()
        for role in roles:
            if role.atom_type in seen:
                raise InvalidMoleculeError(
                    f"atom type {role.atom_type!r} appears in two roles"
                )
            seen.add(role.atom_type)
        if setup_cycles < 0 or drain_cycles < 0:
            raise InvalidMoleculeError("setup/drain cycles must be >= 0")
        self._roles: Tuple[AtomRole, ...] = tuple(roles)
        self._setup = int(setup_cycles)
        self._drain = int(drain_cycles)

    @property
    def roles(self) -> Tuple[AtomRole, ...]:
        return self._roles

    @property
    def atom_types(self) -> Tuple[str, ...]:
        """The atom types this SI uses, in pipeline order."""
        return tuple(role.atom_type for role in self._roles)

    def latency_of_counts(self, instance_counts: Mapping[str, int]) -> int:
        """Latency for a molecule given a name->instance-count mapping.

        Every role must be served by at least one instance — molecules
        that drop a role entirely cannot implement the SI in hardware.
        """
        slowest = 0
        for role in self._roles:
            instances = instance_counts.get(role.atom_type, 0)
            slowest = max(slowest, role.stage_cycles(instances))
        return self._setup + slowest + self._drain * (len(self._roles) - 1)

    def latency_of(self, molecule: Molecule) -> int:
        """Latency for a :class:`~repro.core.molecule.Molecule` vector."""
        counts: Dict[str, int] = {
            role.atom_type: molecule.count(role.atom_type) for role in self._roles
        }
        return self.latency_of_counts(counts)

    def minimal_counts(self) -> Dict[str, int]:
        """The smallest molecule that implements the SI: one instance of
        every role's atom type."""
        return {role.atom_type: 1 for role in self._roles}

    def __repr__(self) -> str:
        stages = ", ".join(
            f"{r.atom_type}:{r.passes}x{r.cycles_per_pass}" for r in self._roles
        )
        return f"PipelineLatencyModel({stages}, setup={self._setup}, drain={self._drain})"
