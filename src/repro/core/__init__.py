"""Core of the reproduction: the paper's primary contribution.

This package contains the hierarchical Special-Instruction composition
model (atoms / molecules / meta-molecules, Section 4.1 of the paper), the
candidate expansion and cleaning steps (equations (3) and (4)), the
scheduling-function formalism (equations (1) and (2)), the four atom
schedulers (FSFR, ASF, SJF and the proposed HEF), the molecule selection,
the online execution-frequency monitor and the Run-Time Manager that ties
them together.
"""

from __future__ import annotations

from .molecule import AtomSpace, Molecule, sup, inf
from .si import MoleculeImpl, SpecialInstruction, SILibrary
from .candidates import expand_candidates, clean_candidates
from .schedule import AtomLoad, Schedule, validate_schedule
from .selection import (
    MoleculeSelection,
    select_molecules,
    select_molecules_optimal,
)
from .monitor import ExecutionMonitor
from .forecast import (
    Predictor,
    EwmaPredictor,
    LastValuePredictor,
    SlidingWindowPredictor,
    TrendPredictor,
    predictor_factory,
)
from .runtime import RuntimeManager
from .schedulers import (
    AtomScheduler,
    FSFRScheduler,
    ASFScheduler,
    SJFScheduler,
    HEFScheduler,
    LookaheadScheduler,
    RandomScheduler,
    get_scheduler,
    available_schedulers,
)

__all__ = [
    "AtomSpace",
    "Molecule",
    "sup",
    "inf",
    "MoleculeImpl",
    "SpecialInstruction",
    "SILibrary",
    "expand_candidates",
    "clean_candidates",
    "AtomLoad",
    "Schedule",
    "validate_schedule",
    "MoleculeSelection",
    "select_molecules",
    "select_molecules_optimal",
    "ExecutionMonitor",
    "Predictor",
    "EwmaPredictor",
    "LastValuePredictor",
    "SlidingWindowPredictor",
    "TrendPredictor",
    "predictor_factory",
    "RuntimeManager",
    "AtomScheduler",
    "FSFRScheduler",
    "ASFScheduler",
    "SJFScheduler",
    "HEFScheduler",
    "LookaheadScheduler",
    "RandomScheduler",
    "get_scheduler",
    "available_schedulers",
]
