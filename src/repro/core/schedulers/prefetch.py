"""Cross-hot-spot prefetch scheduling (PREFETCH).

All four paper schedulers react only *at* the hot-spot switch, so every
phase change pays the full reconfiguration latency of its load schedule.
Following the hybrid prefetch idea of Resano et al. (hide the
reconfiguration overhead by starting loads *before* the jump that needs
them), PREFETCH keeps HEF's per-hot-spot schedule bit-for-bit — it
subclasses :class:`~repro.core.schedulers.hef.HEFScheduler` and inherits
its ``_run`` — and adds a speculative side channel driven by the
monitor's hot-spot transition predictor
(:meth:`~repro.core.monitor.ExecutionMonitor.predict_next`):

* while the current phase executes and the reconfiguration bus is idle,
  atom loads for the *predicted* next phase's selection are issued
  through the port's speculative lane,
* speculation fires only when the transition confidence reaches
  ``confidence`` and issues at most ``budget`` atoms per phase,
* speculative loads fill empty containers or evict only *stale* atoms
  (never anything the current selection needs — the same victim rule
  normal loads obey), are never retried on a fault, and are settled —
  hit or wasted — at the next switch.

A misprediction therefore costs at most the wasted bus cycles of the
started speculative loads; the resulting schedule is never worse than
plain HEF by more than that (the never-worse invariant the differential
tests pin).  With ``confidence = 0.0`` or ``budget = 0`` speculation is
disabled and PREFETCH is field-identical to HEF.

The speculation itself is orchestrated by the simulator
(:class:`~repro.sim.rispp.RisppSimulator`), which owns the monitor and
the port; this class carries the knobs and the identity "schedules like
HEF".
"""

from __future__ import annotations

from ...errors import CalibrationError
from .base import register_scheduler
from .hef import HEFScheduler

__all__ = ["PrefetchScheduler"]


@register_scheduler
class PrefetchScheduler(HEFScheduler):
    """HEF plus cross-hot-spot speculative prefetching.

    Parameters
    ----------
    confidence:
        Transition-predictor score in [0, 1] required before speculating
        on a predicted next hot spot; ``0.0`` disables speculation (the
        scheduler then behaves exactly like HEF).
    budget:
        Maximum speculative atom loads issued per phase; ``0`` disables
        speculation.
    """

    name = "PREFETCH"

    def __init__(self, confidence: float = 0.6, budget: int = 4) -> None:
        if not 0.0 <= confidence <= 1.0:
            raise CalibrationError(
                f"prefetch confidence must be in [0, 1], got {confidence}"
            )
        if budget < 0:
            raise CalibrationError(
                f"prefetch budget must be >= 0, got {budget}"
            )
        self.confidence = float(confidence)
        self.budget = int(budget)

    @property
    def speculates(self) -> bool:
        """Whether speculation is enabled at all under these knobs."""
        return self.confidence > 0.0 and self.budget > 0

    def __repr__(self) -> str:
        return (
            f"PrefetchScheduler(confidence={self.confidence}, "
            f"budget={self.budget})"
        )
