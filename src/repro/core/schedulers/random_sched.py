"""Random scheduler (ablation baseline, not in the paper).

Schedules valid upgrade steps in a uniformly random (seeded) order.  It
still respects the candidate cleaning of equation (4) — it never loads a
molecule that would not improve its SI — so it measures the value of the
*ordering* heuristics in isolation: any scheduler worth its silicon has
to beat this one.
"""

from __future__ import annotations

import random

from .base import AtomScheduler, SchedulerState, register_scheduler

__all__ = ["RandomScheduler"]


@register_scheduler
class RandomScheduler(AtomScheduler):
    """Uniformly random valid upgrade order (seeded, reproducible)."""

    name = "RANDOM"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def __repr__(self) -> str:
        return f"RandomScheduler(seed={self.seed})"

    def reseed(self, seed: int) -> None:
        """Reset the generator (e.g. between simulator runs)."""
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def _run(self, state: SchedulerState) -> None:
        while True:
            candidates = state.cleaned_candidates()
            if not candidates:
                return
            state.commit(self._rng.choice(candidates))
