"""Avoid Software First (ASF), Section 4.4.

One potential problem of the FSFR schedule is that the second SI is not
accelerated *at all* until the first SI is completely upgraded.  ASF
therefore first loads one accelerating molecule for every SI (the
smallest one), and only then follows the FSFR path of completing one SI
after the other.

Its weakness (Figure 7, 17+ ACs): the initial all-SIs phase spends
reconfiguration time on SIs that are executed far less often than others,
delaying the big wins.
"""

from __future__ import annotations

from .base import AtomScheduler, SchedulerState, register_scheduler

__all__ = ["ASFScheduler"]


@register_scheduler
class ASFScheduler(AtomScheduler):
    """Smallest accelerating molecule for every SI first, then FSFR."""

    name = "ASF"

    def _run(self, state: SchedulerState) -> None:
        # Phase 1: get every SI out of software, smallest molecule first.
        self.load_smallest_molecule_per_si(state)
        # Phase 2: continue like FSFR.
        for si_name in state.sis_by_importance():
            self.upgrade_si_fully(state, si_name)
