"""First Select First Reconfigure (FSFR), Section 4.4.

FSFR concentrates on first upgrading the most important SI — in terms of
expected executions and potential performance improvement due to the
selected molecule — until it reaches the selected molecule, before
starting the second SI, and so on.

Its weakness (visible in Figure 7 between roughly 7 and 17 ACs): all other
SIs keep executing in software while the first SI is perfected, and the
bigger the selected molecules get, the longer that starvation lasts.  Its
strength appears with many ACs, where ASF's insistence on accelerating
even rarely-executed SIs first costs more than FSFR's focus.
"""

from __future__ import annotations

from .base import AtomScheduler, SchedulerState, register_scheduler

__all__ = ["FSFRScheduler"]


@register_scheduler
class FSFRScheduler(AtomScheduler):
    """Upgrade one SI completely before touching the next."""

    name = "FSFR"

    def _run(self, state: SchedulerState) -> None:
        for si_name in state.sis_by_importance():
            self.upgrade_si_fully(state, si_name)
