"""Smallest Job First (SJF), Section 4.4.

Continues ASF's idea of loading small molecules first: after the initial
phase (smallest hardware molecule for each SI), *all* remaining molecule
candidates compete globally, and the one requiring the minimal number of
additional atoms is scheduled next.  If two or more molecules require the
same minimal number of additional atoms, the one with the bigger
performance improvement is scheduled first.

Like FSFR and ASF, SJF is purely locally greedy on step *size*; it ignores
how often an SI is expected to execute, which is why HEF overtakes it as
soon as the molecule sets grow (Figure 7, 13+ ACs).
"""

from __future__ import annotations

from .base import AtomScheduler, SchedulerState, register_scheduler

__all__ = ["SJFScheduler"]


@register_scheduler
class SJFScheduler(AtomScheduler):
    """Smallest molecule per SI first, then globally smallest upgrades."""

    name = "SJF"

    def _run(self, state: SchedulerState) -> None:
        # Phase 1: identical to ASF — one small molecule per SI,
        # smallest first.
        self.load_smallest_molecule_per_si(state)
        # Phase 2: globally smallest additional-atom step, ties broken by
        # the bigger performance improvement (Section 4.4).
        while True:
            candidates = state.cleaned_candidates()
            step = self.smallest_step(state, candidates)
            if step is None:
                return
            state.commit(step)
