"""Atom-scheduling strategies.

The four schedulers of Section 4.4 — FSFR, ASF, SJF and the proposed HEF
— plus extensions: a bounded beam-search lookahead and a random baseline
used by the ablation benchmarks, and the cross-hot-spot PREFETCH
scheduler (HEF with speculative next-phase atom loads).  All schedulers
are registered under their short name; use :func:`get_scheduler` to
instantiate one by name.
"""

from __future__ import annotations

from .base import (
    AtomScheduler,
    SchedulerState,
    available_schedulers,
    get_scheduler,
    register_scheduler,
)
from .fsfr import FSFRScheduler
from .asf import ASFScheduler
from .sjf import SJFScheduler
from .hef import HEFScheduler
from .prefetch import PrefetchScheduler
from .lookahead import LookaheadScheduler
from .random_sched import RandomScheduler

#: The scheduler line-up of Figure 7, in the paper's legend order.
PAPER_SCHEDULERS = ("ASF", "FSFR", "SJF", "HEF")

__all__ = [
    "AtomScheduler",
    "SchedulerState",
    "available_schedulers",
    "get_scheduler",
    "register_scheduler",
    "FSFRScheduler",
    "ASFScheduler",
    "SJFScheduler",
    "HEFScheduler",
    "PrefetchScheduler",
    "LookaheadScheduler",
    "RandomScheduler",
    "PAPER_SCHEDULERS",
]
