"""Highest Efficiency First (HEF) — the paper's proposed scheduler
(Figure 6).

FSFR and ASF concentrate on one SI after the other, SJF on the locally
smallest upgrade step.  HEF instead decides *situation-dependent* whether
to continue upgrading one SI or to switch to another, using a benefit
metric per molecule candidate (Figure 6, line 20)::

    benefit(o) = expectedExecutions(o.SI) * (bestLatency[o.SI] - o.latency)
                 / |a ⊖ o|

i.e. the performance improvement over the currently fastest
available/scheduled molecule of the same SI, weighted by how often the SI
is expected to execute, and relativised by the number of additionally
required atoms (the reconfiguration effort).  The candidate with the
highest benefit is scheduled, the availability ``a`` and the
``bestLatency`` entry are updated, and the loop repeats until the
candidate list is exhausted.

Hardware note (Section 5): the prototype implements this comparison
without a divider by cross-multiplying — ``(a*b)/c > (d*e)/f`` is decided
as ``(a*b)*f > (d*e)*c``, valid because the additional-atom counts are
always positive.  We follow the same formulation to stay bit-identical
with an integer-expectation configuration.
"""

from __future__ import annotations

from typing import Optional

from ..si import MoleculeImpl
from .base import AtomScheduler, SchedulerState, register_scheduler

__all__ = ["HEFScheduler"]


@register_scheduler
class HEFScheduler(AtomScheduler):
    """Benefit-greedy scheduling, the paper's contribution."""

    name = "HEF"

    def _run(self, state: SchedulerState) -> None:
        while True:
            # Figure 6 lines 13-17: clean the candidate list for the
            # currently available/scheduled atoms.
            candidates = state.cleaned_candidates()
            if not candidates:
                return
            best: Optional[MoleculeImpl] = None
            best_num = 0.0  # numerator of the best benefit
            best_den = 1.0  # denominator (additional atoms), always > 0
            # Deterministic candidate order: the expansion order of
            # equation (3) (selection order, then canonical molecule
            # order); strict ">" keeps the first maximum, like the
            # pseudo code.
            for cand in candidates:
                num = state.expected[cand.si_name] * state.improvement(cand)
                den = float(state.additional_atoms(cand))
                # Cross-multiplied comparison, as in the hardware FSM.
                if best is None or num * best_den > best_num * den:
                    best, best_num, best_den = cand, num, den
            if best is None:  # pragma: no cover - candidates was non-empty
                return
            if best_num <= 0.0:
                # Every remaining candidate has zero expected executions
                # (benefit 0); the strict ">" of the pseudo code would
                # select nothing and the loop could not make progress.
                # Fall back to the smallest remaining step so that the
                # selected molecules still get composed.
                best = self.smallest_step(state, candidates)
                if best is None:
                    return
            state.commit(best)
