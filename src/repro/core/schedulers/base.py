"""Scheduler interface and shared machinery.

An atom scheduler receives

* the **selection** ``M`` — one molecule per Special Instruction, chosen
  by the molecule-selection step for the upcoming hot spot,
* the SIs themselves (for candidate molecules and latency queries),
* the currently **available** atoms ``a`` (the fabric state),
* the **expected executions** per SI from the online monitor,

and produces a :class:`~repro.core.schedule.Schedule`: the order in which
the missing atoms of ``sup(M)`` are pushed into the reconfiguration port,
annotated with the molecule-level upgrade steps.

All four paper schedulers (and the extensions) share the bookkeeping in
:class:`SchedulerState`: the virtual availability ``a`` (loaded *or
already scheduled* atoms, updated as ``a <- a ∪ m`` per Figure 6 line 27)
and the ``bestLatency`` array (line 28).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type

from ...errors import InvalidScheduleError, UnknownSpecialInstructionError
from ..candidates import best_latency_map, clean_candidates, expand_candidates
from ..molecule import Molecule, sup
from ..schedule import Schedule
from ..si import MoleculeImpl, SpecialInstruction

__all__ = [
    "SchedulerState",
    "AtomScheduler",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
]


class SchedulerState:
    """Mutable bookkeeping shared by all scheduling strategies."""

    def __init__(
        self,
        selection: Mapping[str, MoleculeImpl],
        sis: Mapping[str, SpecialInstruction],
        available: Molecule,
        expected: Mapping[str, float],
    ) -> None:
        if not selection:
            raise InvalidScheduleError("cannot schedule an empty selection")
        for si_name in selection:
            if si_name not in sis:
                raise UnknownSpecialInstructionError(
                    f"selection references unknown SI {si_name!r}"
                )
        self.selection: Dict[str, MoleculeImpl] = dict(selection)
        self.sis: Dict[str, SpecialInstruction] = dict(sis)
        self.space = available.space
        #: Virtual availability ``a``: loaded or already-scheduled atoms.
        self.available: Molecule = available
        #: Expected executions per SI (missing SIs default to 0).
        self.expected: Dict[str, float] = {
            si_name: float(expected.get(si_name, 0.0)) for si_name in selection
        }
        #: Figure 6 lines 6-9: fastest available latency per SI.
        self.best_latency: Dict[str, int] = best_latency_map(
            selection, sis, available
        )
        #: Equation (3): the full candidate list M'.
        self.candidates: List[MoleculeImpl] = expand_candidates(selection, sis)
        self.schedule = Schedule(self.space)

    # -- queries -----------------------------------------------------------

    def cleaned_candidates(
        self, si_name: Optional[str] = None
    ) -> List[MoleculeImpl]:
        """Equation (4) applied to the current state.

        With ``si_name`` given, only candidates of that SI are returned.
        """
        pool = (
            self.candidates
            if si_name is None
            else [c for c in self.candidates if c.si_name == si_name]
        )
        return clean_candidates(pool, self.available, self.best_latency)

    def additional_atoms(self, impl: MoleculeImpl) -> int:
        """``|a ⊖ m|`` — atoms still missing for ``impl``."""
        return self.available.missing(impl.atoms).determinant

    def improvement(self, impl: MoleculeImpl) -> int:
        """Latency gain of ``impl`` over the SI's current best."""
        return self.best_latency[impl.si_name] - impl.latency

    def importance(self, si_name: str) -> float:
        """The FSFR/ASF ordering criterion: expected executions times the
        potential improvement of the *selected* molecule."""
        selected = self.selection[si_name]
        return self.expected[si_name] * max(
            0, self.best_latency[si_name] - selected.latency
        )

    def sis_by_importance(self) -> List[str]:
        """Selection SIs ordered most-important first (ties by name)."""
        return sorted(
            self.selection,
            key=lambda si_name: (-self.importance(si_name), si_name),
        )

    def is_complete(self, si_name: str) -> bool:
        """True once the selected molecule of ``si_name`` is covered."""
        return self.additional_atoms(self.selection[si_name]) == 0

    def smallest_step(
        self, candidates: List[MoleculeImpl]
    ) -> Optional[MoleculeImpl]:
        """The candidate with the fewest additional atoms.

        Ties are broken towards the bigger performance improvement (as
        the SJF description in Section 4.4 prescribes), then by molecule
        name for determinism.  Lives on the state so accelerated states
        can answer from their cached arrays.
        """
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda c: (
                self.additional_atoms(c),
                -self.improvement(c),
                c.si_name,
                c.name,
            ),
        )

    # -- mutation ----------------------------------------------------------

    def commit(self, impl: MoleculeImpl) -> None:
        """Schedule ``impl`` as the next upgrade step (Figure 6, 26-28).

        Appends the atoms ``a ⊖ m`` to the schedule, updates the virtual
        availability ``a <- a ∪ m`` and the SI's best latency.
        """
        new_atoms = self.available.missing(impl.atoms)
        self.schedule.append_step(
            impl, new_atoms, latency_before=self.best_latency[impl.si_name]
        )
        self.available = self.available | impl.atoms
        if impl.latency < self.best_latency[impl.si_name]:
            self.best_latency[impl.si_name] = impl.latency
        # Equation (4) measures improvements against the fastest molecule
        # available under ``a`` — loading shared atoms for one SI can
        # implicitly accelerate another, so refresh every entry.
        for si_name in self.selection:
            latency = self.sis[si_name].available_latency(self.available)
            if latency < self.best_latency[si_name]:
                self.best_latency[si_name] = latency

    def finalize(self) -> Schedule:
        """Ensure condition (2) and return the finished schedule.

        The molecule-step strategies terminate when no candidate improves
        any latency.  In degenerate cases (a selected molecule whose
        latency equals an already-scheduled smaller molecule's) that can
        leave atoms of ``sup(M)`` unscheduled; they are appended here as
        unattributed completeness loads so the schedule always satisfies
        condition (2).
        """
        for si_name in sorted(self.selection):
            selected = self.selection[si_name]
            missing = self.available.missing(selected.atoms)
            if missing.determinant:
                # Attribute the loads to the selected molecule: it becomes
                # available once they finish.
                self.schedule.append_step(
                    selected, missing,
                    latency_before=self.best_latency[si_name],
                )
                self.available = self.available | selected.atoms
                if selected.latency < self.best_latency[si_name]:
                    self.best_latency[si_name] = selected.latency
        target = sup(
            (impl.atoms for impl in self.selection.values()), self.space
        )
        leftover = self.available.missing(target)
        if leftover.determinant:  # pragma: no cover - defensive
            self.schedule.append_completion(leftover)
            self.available = self.available | target
        return self.schedule


class AtomScheduler(ABC):
    """Base class of all atom-scheduling strategies.

    Subclasses implement :meth:`_run` on a prepared
    :class:`SchedulerState`; the public :meth:`schedule` wraps state
    construction and finalisation so every scheduler produces a valid
    (condition-(2)-satisfying) schedule.
    """

    #: Short name used in result tables and the registry.
    name: str = "abstract"

    def schedule(
        self,
        selection: Mapping[str, MoleculeImpl],
        sis: Mapping[str, SpecialInstruction],
        available: Molecule,
        expected: Mapping[str, float],
    ) -> Schedule:
        """Compute the atom loading sequence for one hot-spot switch."""
        state = SchedulerState(selection, sis, available, expected)
        self._run(state)
        return state.finalize()

    @abstractmethod
    def _run(self, state: SchedulerState) -> None:
        """Schedule molecule upgrade steps via ``state.commit``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    # -- shared strategy fragments ------------------------------------------

    @staticmethod
    def smallest_step(
        state: SchedulerState, candidates: List[MoleculeImpl]
    ) -> Optional[MoleculeImpl]:
        """The candidate with the fewest additional atoms.

        Delegates to :meth:`SchedulerState.smallest_step` (kept as a
        static helper for the strategies' call sites).
        """
        return state.smallest_step(candidates)

    @classmethod
    def load_smallest_molecule_per_si(cls, state: SchedulerState) -> None:
        """Phase 1 of ASF and SJF: one accelerating molecule for every SI.

        "Avoid Software First" means exactly that: get every SI out of the
        trap path as soon as possible.  Following the paper's small-jobs
        idea, the SIs are served smallest first — the SI whose cheapest
        accelerating molecule needs the fewest additional atoms is loaded
        first (ties broken towards the more important SI, then by name).
        SIs that already have a hardware molecule available skip the phase.
        """
        pending = {
            si_name
            for si_name in state.selection
            if state.best_latency[si_name]
            >= state.sis[si_name].software_latency
        }
        while pending:
            best_si = None
            best_step = None
            best_key = None
            for si_name in pending:
                step = cls.smallest_step(
                    state, state.cleaned_candidates(si_name)
                )
                if step is None:
                    continue
                key = (
                    state.additional_atoms(step),
                    -state.importance(si_name),
                    si_name,
                )
                if best_key is None or key < best_key:
                    best_si, best_step, best_key = si_name, step, key
            if best_step is None:
                return
            state.commit(best_step)
            pending.discard(best_si)
            # Shared atoms may have pulled other SIs out of software too.
            pending = {
                si_name
                for si_name in pending
                if state.best_latency[si_name]
                >= state.sis[si_name].software_latency
            }

    @classmethod
    def upgrade_si_fully(cls, state: SchedulerState, si_name: str) -> None:
        """Walk one SI's upgrade path up to its selected molecule.

        This is the inner loop of FSFR (and of the second phase of ASF):
        repeatedly schedule the smallest remaining upgrade step of this SI
        until the selected molecule is composed.
        """
        guard = 0
        while not state.is_complete(si_name):
            candidates = state.cleaned_candidates(si_name)
            step = cls.smallest_step(state, candidates)
            if step is None:
                # No candidate improves the latency anymore, but the
                # selected molecule is not fully loaded yet; commit it
                # directly so condition (2) holds.
                state.commit(state.selection[si_name])
                return
            state.commit(step)
            guard += 1
            if guard > 10_000:  # pragma: no cover - defensive
                raise InvalidScheduleError(
                    f"upgrade path of SI {si_name} does not terminate"
                )


_REGISTRY: Dict[str, Type[AtomScheduler]] = {}


def register_scheduler(cls: Type[AtomScheduler]) -> Type[AtomScheduler]:
    """Class decorator adding a scheduler to the global registry."""
    if not issubclass(cls, AtomScheduler):
        raise TypeError(f"{cls!r} is not an AtomScheduler")
    key = cls.name.upper()
    if key in _REGISTRY:
        raise ValueError(f"duplicate scheduler name {cls.name!r}")
    _REGISTRY[key] = cls
    return cls


def get_scheduler(name: str, **kwargs: Any) -> AtomScheduler:
    """Instantiate a scheduler by its registry name (case-insensitive)."""
    try:
        cls = _REGISTRY[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available_schedulers() -> Tuple[str, ...]:
    """Registry names of all known schedulers."""
    return tuple(sorted(_REGISTRY))
