"""Bounded-lookahead scheduler (extension, not in the paper).

The paper notes that an *optimal* schedule would require precise future
knowledge of which SI executes when; HEF approximates it with a greedy
benefit metric.  This module adds a beam-search scheduler that evaluates
whole molecule-step *sequences* under a simple cost model, as an upper
bound on what smarter scheduling can buy (used by the ablation
benchmarks).

Cost model
----------
Loading one atom occupies the reconfiguration port for a fixed time R.
While ``w`` atoms are being loaded, every SI keeps executing at a rate
proportional to its expected executions, paying its *current* best
latency per execution.  The cost of a schedule is therefore::

    sum over steps s:  atoms(s) * sum_si expected[si] * bestLatency[si](before s)

which is exactly the quantity a schedule can influence (the final
latencies and the total atom count are fixed by the selection).  Beam
search with width ``beam_width`` keeps the cheapest partial sequences;
``beam_width`` large enough makes the search exhaustive on small molecule
sets.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..candidates import clean_candidates
from ..molecule import Molecule
from ..si import MoleculeImpl
from .base import AtomScheduler, SchedulerState, register_scheduler

__all__ = ["LookaheadScheduler"]


class _Node:
    """A partial schedule in the beam."""

    __slots__ = ("available", "best_latency", "steps", "cost")

    def __init__(
        self,
        available: Molecule,
        best_latency: Dict[str, int],
        steps: Tuple[MoleculeImpl, ...],
        cost: float,
    ) -> None:
        self.available = available
        self.best_latency = best_latency
        self.steps = steps
        self.cost = cost


@register_scheduler
class LookaheadScheduler(AtomScheduler):
    """Beam search over molecule-step sequences.

    Parameters
    ----------
    beam_width:
        Number of partial sequences kept per depth level.  Width 1
        degenerates to a greedy scheduler; widths beyond the number of
        distinct candidate orderings make the search exhaustive.
    """

    name = "LOOKAHEAD"

    def __init__(self, beam_width: int = 8) -> None:
        if beam_width < 1:
            raise ValueError(f"beam width must be >= 1, got {beam_width}")
        self.beam_width = int(beam_width)

    def __repr__(self) -> str:
        return f"LookaheadScheduler(beam_width={self.beam_width})"

    def _step_cost(
        self, state: SchedulerState, node: _Node, impl: MoleculeImpl
    ) -> float:
        atoms = node.available.missing(impl.atoms).determinant
        rate_cost = sum(
            state.expected[si_name] * node.best_latency[si_name]
            for si_name in state.selection
        )
        return atoms * rate_cost

    def _expand(
        self, state: SchedulerState, node: _Node
    ) -> List[Tuple[MoleculeImpl, _Node]]:
        candidates = clean_candidates(
            state.candidates, node.available, node.best_latency
        )
        successors: List[Tuple[MoleculeImpl, _Node]] = []
        for cand in candidates:
            cost = node.cost + self._step_cost(state, node, cand)
            best_latency = dict(node.best_latency)
            if cand.latency < best_latency[cand.si_name]:
                best_latency[cand.si_name] = cand.latency
            successors.append(
                (
                    cand,
                    _Node(
                        node.available | cand.atoms,
                        best_latency,
                        node.steps + (cand,),
                        cost,
                    ),
                )
            )
        return successors

    def _run(self, state: SchedulerState) -> None:
        root = _Node(
            state.available, dict(state.best_latency), (), 0.0
        )
        beam: List[_Node] = [root]
        finished: List[_Node] = []
        while beam:
            next_level: List[_Node] = []
            for node in beam:
                successors = self._expand(state, node)
                if not successors:
                    finished.append(node)
                    continue
                next_level.extend(succ for _, succ in successors)
            next_level.sort(
                key=lambda n: (n.cost, tuple(s.name for s in n.steps))
            )
            beam = next_level[: self.beam_width]
        if finished:
            best = min(
                finished,
                key=lambda n: (n.cost, tuple(s.name for s in n.steps)),
            )
            for impl in best.steps:
                state.commit(impl)
        # Condition (2): every selected molecule must end up fully
        # composed.  The cleaning step (equation 4) drops a selected
        # molecule that does not improve on what is already available,
        # so a finished sequence can leave selection entries uncovered —
        # and an exhausted beam used to fall through to an *empty*
        # schedule here.  Commit the stragglers directly, most-important
        # SI first (the same closing rule upgrade_si_fully applies).
        for si_name in state.sis_by_importance():
            if not state.is_complete(si_name):
                state.commit(state.selection[si_name])
