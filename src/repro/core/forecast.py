"""Forecasting strategies for SI execution frequencies.

The paper's monitor ([24]) uses light-weight error feedback —
exponential smoothing in software terms.  The RISPP follow-on work
explored alternatives; this module provides a small family of
per-signal predictors so the monitor's forecasting strategy is pluggable
and can be ablated:

* :class:`EwmaPredictor` — exponential smoothing (the default),
* :class:`LastValuePredictor` — expect exactly the last measurement,
* :class:`SlidingWindowPredictor` — mean of the last ``k`` measurements,
* :class:`TrendPredictor` — EWMA on the value plus EWMA on its slope
  (double exponential smoothing), anticipating drifting workloads.

All predictors share the tiny interface the monitor needs: ``predict()``
returns the current estimate, ``update(measured)`` feeds one
observation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable, Deque, Dict

from ..errors import CalibrationError

__all__ = [
    "Predictor",
    "EwmaPredictor",
    "LastValuePredictor",
    "SlidingWindowPredictor",
    "TrendPredictor",
    "predictor_factory",
]


class Predictor(ABC):
    """Forecasts one scalar signal (one SI in one hot spot)."""

    def __init__(self, initial: float) -> None:
        if initial < 0:
            raise CalibrationError(
                f"initial estimate must be >= 0, got {initial}"
            )
        self._initial = float(initial)

    @abstractmethod
    def predict(self) -> float:
        """The expected value of the next measurement."""

    @abstractmethod
    def update(self, measured: float) -> None:
        """Feed one observed value."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(predict={self.predict():.1f})"


class EwmaPredictor(Predictor):
    """Exponential smoothing: ``est += alpha * (measured - est)``."""

    def __init__(self, initial: float, alpha: float = 0.5) -> None:
        super().__init__(initial)
        if not 0.0 < alpha <= 1.0:
            raise CalibrationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._estimate = self._initial

    def predict(self) -> float:
        return self._estimate

    def update(self, measured: float) -> None:
        self._estimate += self.alpha * (measured - self._estimate)


class LastValuePredictor(Predictor):
    """Expect exactly what happened last time (EWMA with alpha = 1)."""

    def __init__(self, initial: float) -> None:
        super().__init__(initial)
        self._last = self._initial

    def predict(self) -> float:
        return self._last

    def update(self, measured: float) -> None:
        self._last = float(measured)


class SlidingWindowPredictor(Predictor):
    """Mean of the last ``window`` measurements."""

    def __init__(self, initial: float, window: int = 4) -> None:
        super().__init__(initial)
        if window < 1:
            raise CalibrationError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._values: Deque[float] = deque(maxlen=self.window)

    def predict(self) -> float:
        if not self._values:
            return self._initial
        return sum(self._values) / len(self._values)

    def update(self, measured: float) -> None:
        self._values.append(float(measured))


class TrendPredictor(Predictor):
    """Double exponential smoothing (level + trend).

    Anticipates drifting content (the camera pan of the workload model):
    the prediction extrapolates one step along the estimated slope,
    clamped at zero.
    """

    def __init__(self, initial: float, alpha: float = 0.5,
                 beta: float = 0.3) -> None:
        super().__init__(initial)
        if not 0.0 < alpha <= 1.0 or not 0.0 < beta <= 1.0:
            raise CalibrationError("alpha and beta must be in (0, 1]")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self._level = self._initial
        self._trend = 0.0
        self._seeded = False

    def predict(self) -> float:
        return max(0.0, self._level + self._trend)

    def update(self, measured: float) -> None:
        previous_level = self._level
        forecast = self._level + self._trend if self._seeded else measured
        self._level = forecast + self.alpha * (measured - forecast)
        self._trend += self.beta * (
            (self._level - previous_level) - self._trend
        )
        self._seeded = True


#: Factory signature the monitor accepts: initial estimate -> Predictor.
PredictorFactory = Callable[[float], Predictor]

_FACTORIES: Dict[str, PredictorFactory] = {
    "ewma": lambda initial: EwmaPredictor(initial),
    "last": lambda initial: LastValuePredictor(initial),
    "window": lambda initial: SlidingWindowPredictor(initial),
    "trend": lambda initial: TrendPredictor(initial),
}


def predictor_factory(name: str, **kwargs: Any) -> PredictorFactory:
    """A factory for the named predictor kind, closing over ``kwargs``.

    >>> make = predictor_factory("ewma", alpha=0.25)
    >>> make(10.0).alpha
    0.25
    """
    kinds = {
        "ewma": EwmaPredictor,
        "last": LastValuePredictor,
        "window": SlidingWindowPredictor,
        "trend": TrendPredictor,
    }
    try:
        cls = kinds[name.lower()]
    except KeyError:
        raise CalibrationError(
            f"unknown predictor {name!r}; known: {sorted(kinds)}"
        ) from None
    return lambda initial: cls(initial, **kwargs)
