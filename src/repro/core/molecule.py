"""The molecule lattice of Section 4.1.

The paper models every Special-Instruction implementation as a vector over
the ``n`` available atom types: a **molecule** ``m = (m_1, ..., m_n)`` where
``m_i`` is the number of instances of atom type ``i`` that the
implementation uses.  On the set of all such vectors the paper defines

* a union ``m ∪ o`` with ``p_i = max(m_i, o_i)`` — the *meta-molecule*
  containing the atoms required to implement both operands,
* an intersection ``m ∩ o`` with ``p_i = min(m_i, o_i)``,
* the partial order ``m <= o  iff  m_i <= o_i for all i``,
* the determinant ``|m| = sum_i m_i`` — the total number of atoms,
* the operator ``a ⊖ m`` ("missing") with ``p_i = max(0, m_i - a_i)`` — the
  minimum set of atoms that additionally have to be loaded to implement
  ``m`` when the atoms of ``a`` are already available.

``(N^n, ∪)`` and ``(N^n, ∩)`` are Abelian semi-groups and ``(N^n, <=)`` is
a complete lattice: every non-empty set of molecules has a well-defined
supremum (:func:`sup`) and infimum (:func:`inf`).  All of that structure is
implemented here on immutable, hashable :class:`Molecule` values bound to a
shared :class:`AtomSpace`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

from ..errors import (
    AtomSpaceMismatchError,
    InvalidMoleculeError,
    UnknownAtomTypeError,
)

__all__ = ["AtomSpace", "Molecule", "sup", "inf"]


class AtomSpace:
    """An ordered, immutable registry of atom-type names.

    Molecules are count vectors whose positions are defined by an atom
    space; two molecules may only be combined when they share the same
    space instance (or an equal one — equality is by name tuple).

    Parameters
    ----------
    atom_names:
        The atom-type names, in vector order.  Names must be unique and
        non-empty.
    """

    __slots__ = ("_names", "_index")

    def __init__(self, atom_names: Sequence[str]) -> None:
        names = tuple(atom_names)
        if not names:
            raise InvalidMoleculeError("an atom space needs at least one atom type")
        if len(set(names)) != len(names):
            raise InvalidMoleculeError(f"duplicate atom-type names in {names!r}")
        if any(not isinstance(n, str) or not n for n in names):
            raise InvalidMoleculeError("atom-type names must be non-empty strings")
        self._names: Tuple[str, ...] = names
        self._index: Dict[str, int] = {name: i for i, name in enumerate(names)}

    @property
    def names(self) -> Tuple[str, ...]:
        """The atom-type names in vector order."""
        return self._names

    @property
    def size(self) -> int:
        """The dimensionality ``n`` of the molecule vectors."""
        return len(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomSpace):
            return NotImplemented
        return self._names == other._names

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:
        return f"AtomSpace({list(self._names)!r})"

    def index(self, name: str) -> int:
        """Return the vector position of atom type ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAtomTypeError(
                f"unknown atom type {name!r}; known: {list(self._names)}"
            ) from None

    def name(self, position: int) -> str:
        """Return the atom-type name at vector ``position``."""
        try:
            return self._names[position]
        except IndexError:
            raise UnknownAtomTypeError(
                f"atom position {position} out of range 0..{len(self._names) - 1}"
            ) from None

    # -- molecule constructors -------------------------------------------

    def zero(self) -> "Molecule":
        """The neutral element of ``∪``: the all-zero molecule.

        This is also how the paper models the pure-software implementation
        of an SI — it needs no atoms at all.
        """
        return Molecule(self, (0,) * self.size)

    #: Stand-in for the paper's "maxInt" components of the top molecule.
    MAXINT = 2 ** 30

    def top(self, count: int = MAXINT) -> "Molecule":
        """The neutral element of ``∩``: ``(maxInt, ..., maxInt)``.

        A finite stand-in (2**30 per component by default) is used so the
        value stays an ordinary integer vector.
        """
        return Molecule(self, (count,) * self.size)

    def unit(self, name: str) -> "Molecule":
        """The unit molecule ``u_i`` for atom type ``name``.

        Unit molecules represent the loading of one single atom; they are
        the codomain of the scheduling function SF (equation (1)).
        """
        counts = [0] * self.size
        counts[self.index(name)] = 1
        return Molecule(self, tuple(counts))

    def units(self) -> Tuple["Molecule", ...]:
        """All ``n`` unit molecules, in vector order."""
        return tuple(self.unit(name) for name in self._names)

    def molecule(self, counts: Union[Mapping[str, int], Sequence[int]]) -> "Molecule":
        """Build a molecule either from a name->count mapping or a full
        count vector.

        >>> space = AtomSpace(["A", "B"])
        >>> space.molecule({"B": 3}).counts
        (0, 3)
        >>> space.molecule([2, 1]).counts
        (2, 1)
        """
        if isinstance(counts, Mapping):
            vector = [0] * self.size
            for name, count in counts.items():
                vector[self.index(name)] = count
            return Molecule(self, tuple(vector))
        return Molecule(self, tuple(counts))


class Molecule:
    """An immutable atom-count vector over an :class:`AtomSpace`.

    Supports the full Section-4.1 algebra:

    ``m | o``
        union / meta-molecule (component-wise max),
    ``m & o``
        intersection (component-wise min),
    ``m <= o`` / ``m < o`` / ``m >= o`` / ``m > o``
        the lattice partial order (``<`` means ``<=`` and not equal; note
        that two distinct molecules may be *incomparable*),
    ``a.missing(m)`` (equivalently ``a ⊖ m``)
        the atoms still required for ``m`` given the available atoms ``a``,
    ``m.determinant``
        ``|m|``, the total atom count,
    ``m + o``
        plain component-wise addition (used by the fabric to accumulate
        loaded atom instances — not part of the paper's algebra but a
        convenient companion).
    """

    __slots__ = ("_space", "_counts", "_hash")

    def __init__(self, space: AtomSpace, counts: Sequence[int]) -> None:
        counts = tuple(int(c) for c in counts)
        if len(counts) != space.size:
            raise InvalidMoleculeError(
                f"molecule has {len(counts)} components but the atom space "
                f"defines {space.size} atom types"
            )
        if any(c < 0 for c in counts):
            raise InvalidMoleculeError(f"negative atom counts in {counts!r}")
        self._space = space
        self._counts = counts
        self._hash = hash((space.names, counts))

    @classmethod
    def _make(cls, space: AtomSpace, counts: Tuple[int, ...]) -> "Molecule":
        """Internal fast path: build from an already-valid count tuple.

        The lattice operators produce structurally valid vectors by
        construction, so they skip the public constructor's validation.
        """
        self = object.__new__(cls)
        self._space = space
        self._counts = counts
        self._hash = hash((space.names, counts))
        return self

    # -- basic accessors ---------------------------------------------------

    @property
    def space(self) -> AtomSpace:
        """The atom space this molecule is defined over."""
        return self._space

    @property
    def counts(self) -> Tuple[int, ...]:
        """The raw count vector."""
        return self._counts

    @property
    def determinant(self) -> int:
        """``|m|`` — the total number of atom instances the molecule uses."""
        return sum(self._counts)

    @property
    def is_zero(self) -> bool:
        """True for the all-zero (pure software) molecule."""
        # Counts are non-negative, so zero-ness is just emptiness under
        # any() — which runs at C speed on the tuple (this property sits
        # on simulator hot paths).
        return not any(self._counts)

    def count(self, name: str) -> int:
        """The number of instances of atom type ``name``."""
        return self._counts[self._space.index(name)]

    def as_dict(self, include_zero: bool = False) -> Dict[str, int]:
        """Return the molecule as a name->count mapping.

        By default only non-zero entries are included.
        """
        return {
            name: count
            for name, count in zip(self._space.names, self._counts)
            if include_zero or count
        }

    def atom_names(self) -> Tuple[str, ...]:
        """Names of the atom types used (count > 0), in vector order."""
        return tuple(
            name for name, count in zip(self._space.names, self._counts) if count
        )

    def iter_atom_instances(self) -> Iterator[str]:
        """Yield one atom-type name per required atom *instance*.

        A molecule ``(2, 1)`` over ``(A, B)`` yields ``A, A, B``.  This is
        the expansion a scheduler performs when it turns a molecule-level
        upgrade step into individual unit-molecule loads.
        """
        for name, count in zip(self._space.names, self._counts):
            for _ in range(count):
                yield name

    # -- lattice algebra ---------------------------------------------------

    def _check_space(self, other: "Molecule") -> None:
        if not isinstance(other, Molecule):
            raise TypeError(f"expected a Molecule, got {type(other).__name__}")
        if self._space != other._space:
            raise AtomSpaceMismatchError(
                f"molecules live in different atom spaces: "
                f"{self._space!r} vs {other._space!r}"
            )

    def union(self, other: "Molecule") -> "Molecule":
        """``m ∪ o`` — the meta-molecule implementing both operands."""
        self._check_space(other)
        return Molecule._make(
            self._space,
            tuple(map(max, self._counts, other._counts)),
        )

    def intersection(self, other: "Molecule") -> "Molecule":
        """``m ∩ o`` — the atoms collectively needed by both operands."""
        self._check_space(other)
        return Molecule._make(
            self._space,
            tuple(map(min, self._counts, other._counts)),
        )

    def missing(self, target: "Molecule") -> "Molecule":
        """``self ⊖ target`` — atoms still to be loaded for ``target``.

        ``self`` is interpreted as the *available* atoms; the result has
        ``p_i = max(0, target_i - self_i)``.  Consequently
        ``self.missing(target).determinant == 0`` iff ``target <= self``.
        """
        self._check_space(target)
        return Molecule._make(
            self._space,
            tuple(t - a if t > a else 0
                  for a, t in zip(self._counts, target._counts)),
        )

    def add(self, other: "Molecule") -> "Molecule":
        """Component-wise sum (fabric bookkeeping helper)."""
        self._check_space(other)
        return Molecule._make(
            self._space,
            tuple(a + b for a, b in zip(self._counts, other._counts)),
        )

    def saturating_sub(self, other: "Molecule") -> "Molecule":
        """Component-wise ``max(0, self_i - other_i)`` (fabric helper).

        Note the operand order is the transpose of :meth:`missing`:
        ``a.saturating_sub(b) == b.missing(a)``.
        """
        self._check_space(other)
        return Molecule._make(
            self._space,
            tuple(a - b if a > b else 0
                  for a, b in zip(self._counts, other._counts)),
        )

    # operator sugar

    def __or__(self, other: "Molecule") -> "Molecule":
        return self.union(other)

    def __and__(self, other: "Molecule") -> "Molecule":
        return self.intersection(other)

    def __add__(self, other: "Molecule") -> "Molecule":
        return self.add(other)

    def __le__(self, other: "Molecule") -> bool:
        self._check_space(other)
        return all(a <= b for a, b in zip(self._counts, other._counts))

    def __ge__(self, other: "Molecule") -> bool:
        self._check_space(other)
        return all(a >= b for a, b in zip(self._counts, other._counts))

    def __lt__(self, other: "Molecule") -> bool:
        return self <= other and self._counts != other._counts

    def __gt__(self, other: "Molecule") -> bool:
        return self >= other and self._counts != other._counts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Molecule):
            return NotImplemented
        return self._space == other._space and self._counts == other._counts

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return NotImplemented
        return not eq

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={count}"
            for name, count in zip(self._space.names, self._counts)
            if count
        )
        return f"Molecule({inner or '0'})"


def sup(molecules: Iterable[Molecule], space: Optional[AtomSpace] = None) -> Molecule:
    """Supremum of a set of molecules: ``sup M = ∪_{m in M} m``.

    The result is the meta-molecule declaring all atoms needed to implement
    *any* molecule of ``M`` (``for all m in M: m <= sup M``).  For an empty
    iterable the neutral element of ``∪`` (the zero molecule) is returned,
    which requires ``space`` to be given.
    """
    result: Optional[Molecule] = None
    for molecule in molecules:
        result = molecule if result is None else result | molecule
    if result is None:
        if space is None:
            raise InvalidMoleculeError(
                "sup of an empty molecule set needs an explicit atom space"
            )
        return space.zero()
    return result


def inf(molecules: Iterable[Molecule], space: Optional[AtomSpace] = None) -> Molecule:
    """Infimum of a set of molecules: ``inf M = ∩_{m in M} m``.

    The result contains the atoms that are *collectively* needed by all
    molecules of ``M``.  For an empty iterable the neutral element of ``∩``
    (the top molecule) is returned, which requires ``space`` to be given.
    """
    result: Optional[Molecule] = None
    for molecule in molecules:
        result = molecule if result is None else result & molecule
    if result is None:
        if space is None:
            raise InvalidMoleculeError(
                "inf of an empty molecule set needs an explicit atom space"
            )
        return space.top()
    return result
