"""The scheduling function SF — equations (1) and (2) of the paper.

A schedule is a loading sequence of single atoms (unit molecules)::

    SF: [1, k] -> UM = {u_1, ..., u_n}            (1)

subject to the completeness condition that every atom of ``sup(M)`` is
loaded in the correct multiplicity::

    for all i in [1, n]:  |{ j | SF(j) = u_i }| = x_i                (2)

where ``sup(M) = (x_1, ..., x_n)``.  When atoms are already available at
scheduling time, the schedulers only load the *missing* part
``a_0 ⊖ sup(M)``; :func:`validate_schedule` checks exactly that.

Besides the raw atom sequence, a :class:`Schedule` records the
molecule-level **upgrade steps** that produced it: which molecule becomes
available after which load.  The simulators use the step annotations for
reporting (Figure 8's latency step-downs), while correctness only depends
on the atom sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from ..errors import InvalidScheduleError
from .molecule import AtomSpace, Molecule, sup
from .si import MoleculeImpl

__all__ = ["AtomLoad", "UpgradeStep", "Schedule", "validate_schedule"]


@dataclass(frozen=True)
class AtomLoad:
    """One entry of the scheduling function: load a single atom.

    Attributes
    ----------
    atom_type:
        The atom type to load (identifies the unit molecule ``u_i``).
    si_name / molecule_name:
        The upgrade step on whose behalf this atom is loaded, for
        reporting.  ``None`` for completeness loads that no molecule step
        claimed.
    """

    atom_type: str
    si_name: Optional[str] = None
    molecule_name: Optional[str] = None


@dataclass(frozen=True)
class UpgradeStep:
    """A molecule-level upgrade step of a schedule.

    The step says: after the loads ``first_load .. last_load`` (inclusive,
    0-based indices into :attr:`Schedule.loads`) have finished, molecule
    ``impl`` becomes available, improving its SI's best latency from
    ``latency_before`` to ``impl.latency``.  Steps with
    ``first_load > last_load`` (no new atoms) do not occur — a step always
    loads at least one atom.
    """

    impl: MoleculeImpl
    first_load: int
    last_load: int
    latency_before: int

    @property
    def num_loads(self) -> int:
        return self.last_load - self.first_load + 1

    @property
    def improvement(self) -> int:
        return self.latency_before - self.impl.latency


class Schedule:
    """An atom loading sequence with molecule-step annotations."""

    def __init__(
        self,
        space: AtomSpace,
        loads: Sequence[AtomLoad] = (),
        steps: Sequence[UpgradeStep] = (),
    ) -> None:
        self._space = space
        self._loads: List[AtomLoad] = list(loads)
        self._steps: List[UpgradeStep] = list(steps)

    @property
    def space(self) -> AtomSpace:
        return self._space

    @property
    def loads(self) -> Tuple[AtomLoad, ...]:
        return tuple(self._loads)

    @property
    def steps(self) -> Tuple[UpgradeStep, ...]:
        return tuple(self._steps)

    def __len__(self) -> int:
        return len(self._loads)

    def __bool__(self) -> bool:
        # A schedule with zero loads is still a schedule; avoid the
        # surprising len()-based truthiness.
        return True

    # -- construction helpers used by the schedulers -----------------------

    def append_step(self, impl: MoleculeImpl, new_atoms: Molecule,
                    latency_before: int) -> None:
        """Record an upgrade step that loads ``new_atoms`` (= ``a ⊖ impl``)."""
        if new_atoms.determinant == 0:
            raise InvalidScheduleError(
                f"upgrade step for {impl.si_name}/{impl.name} loads no atoms"
            )
        first = len(self._loads)
        loads = self._loads
        # One AtomLoad per atom *type*, reused per instance: the loads
        # are frozen value-compared records, so instances of the same
        # type within one step are interchangeable objects.
        for atom_type, count in zip(new_atoms.space.names, new_atoms.counts):
            if count:
                load = AtomLoad(atom_type, si_name=impl.si_name,
                                molecule_name=impl.name)
                loads.extend([load] * count)
        self._steps.append(
            UpgradeStep(
                impl=impl,
                first_load=first,
                last_load=len(self._loads) - 1,
                latency_before=latency_before,
            )
        )

    def append_completion(self, atoms: Molecule) -> None:
        """Append loads not attributed to any molecule step (completeness
        loads that restore condition (2) when no step claimed them)."""
        for atom_type in atoms.iter_atom_instances():
            self._loads.append(AtomLoad(atom_type))

    # -- derived views ------------------------------------------------------

    def loaded_molecule(self) -> Molecule:
        """The multiset of all loaded atoms as a molecule vector."""
        counts = [0] * self._space.size
        for load in self._loads:
            counts[self._space.index(load.atom_type)] += 1
        return Molecule(self._space, counts)

    def atom_sequence(self) -> Tuple[str, ...]:
        """The bare SF output: atom-type names in loading order."""
        return tuple(load.atom_type for load in self._loads)

    def availability_after(self, initial: Molecule, num_loads: int) -> Molecule:
        """Available atoms after the first ``num_loads`` loads finished."""
        counts = list(initial.counts)
        for load in self._loads[:num_loads]:
            counts[self._space.index(load.atom_type)] += 1
        return Molecule(self._space, counts)

    def __repr__(self) -> str:
        return (
            f"Schedule({len(self._loads)} atom loads, "
            f"{len(self._steps)} upgrade steps)"
        )


def validate_schedule(
    schedule: Schedule,
    selection: Mapping[str, MoleculeImpl],
    initial_available: Optional[Molecule] = None,
) -> None:
    """Check conditions (1) and (2) for a schedule.

    The multiset of loaded atoms must equal ``a_0 ⊖ sup(M)`` — exactly the
    atoms needed to complete all selected molecules given the initially
    available atoms ``a_0`` (``a_0 = 0`` when omitted, which recovers the
    paper's original condition (2)).

    Additionally the step annotations must be consistent: each step's
    molecule must be fully available after its last load.

    Raises
    ------
    InvalidScheduleError
        If the schedule violates any of the conditions.
    """
    space = schedule.space
    a0 = initial_available if initial_available is not None else space.zero()
    target = sup((impl.atoms for impl in selection.values()), space)
    required = a0.missing(target)
    loaded = schedule.loaded_molecule()
    if loaded != required:
        raise InvalidScheduleError(
            f"schedule loads {loaded.as_dict()} but condition (2) requires "
            f"{required.as_dict()} (sup(M)={target.as_dict()}, "
            f"initially available {a0.as_dict()})"
        )
    for step in schedule.steps:
        after = schedule.availability_after(a0, step.last_load + 1)
        if not (step.impl.atoms <= after):
            raise InvalidScheduleError(
                f"step {step.impl.si_name}/{step.impl.name} is annotated as "
                f"available after load {step.last_load} but atoms "
                f"{step.impl.atoms.as_dict()} exceed availability "
                f"{after.as_dict()}"
            )
