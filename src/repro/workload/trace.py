"""Trace structures: what the run-time system observes of an application.

The run-time system is driven by *hot-spot invocations*.  One
:class:`HotSpotTrace` records a single invocation: which hot spot ran,
which SIs it uses, and — per iteration of its inner loop (one macroblock
in the H.264 encoder) — how often each SI executed.  A
:class:`Workload` is the full sequence of invocations of an application
run (e.g. 140 frames x (ME, EE, LF)).

The behavioural simulators replay these traces against the fabric model:
the *counts* are fixed by the application, while the *cycles* they cost
depend on the molecule availability at each moment — which is exactly
what the scheduling strategies influence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import TraceError

__all__ = ["HotSpotTrace", "Workload"]


@dataclass
class HotSpotTrace:
    """One invocation of a computational hot spot.

    Attributes
    ----------
    hot_spot:
        Hot-spot name (``"ME"``, ``"EE"``, ``"LF"``).
    si_names:
        The SIs this hot spot executes; column order of ``counts``.
    counts:
        Integer array of shape ``(iterations, len(si_names))``: SI
        executions per inner-loop iteration (macroblock).
    overhead_per_iteration:
        Non-SI base-processor cycles per iteration (loop control, address
        arithmetic, memory accesses outside SIs).
    frame_index:
        The video frame this invocation belongs to.
    """

    hot_spot: str
    si_names: Tuple[str, ...]
    counts: np.ndarray
    overhead_per_iteration: int = 0
    frame_index: int = 0

    def __post_init__(self) -> None:
        self.si_names = tuple(self.si_names)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.counts.ndim != 2:
            raise TraceError(
                f"counts must be 2-D (iterations x SIs), got shape "
                f"{self.counts.shape}"
            )
        if self.counts.shape[1] != len(self.si_names):
            raise TraceError(
                f"counts has {self.counts.shape[1]} SI columns but "
                f"{len(self.si_names)} SI names were given"
            )
        if len(set(self.si_names)) != len(self.si_names):
            raise TraceError(f"duplicate SI names in {self.si_names!r}")
        if (self.counts < 0).any():
            raise TraceError("negative SI execution counts in trace")
        if self.overhead_per_iteration < 0:
            raise TraceError(
                f"negative per-iteration overhead: {self.overhead_per_iteration}"
            )

    @property
    def iterations(self) -> int:
        return int(self.counts.shape[0])

    def totals(self) -> Dict[str, int]:
        """Total executions per SI over the whole invocation."""
        sums = self.counts.sum(axis=0)
        return {name: int(s) for name, s in zip(self.si_names, sums)}

    def total_executions(self) -> int:
        return int(self.counts.sum())

    def software_cycles(
        self,
        software_latencies: Dict[str, int],
        trap_overhead: int = 0,
    ) -> int:
        """Cycles of this invocation when every SI runs via trap."""
        total = self.iterations * self.overhead_per_iteration
        sums = self.counts.sum(axis=0)
        for name, count in zip(self.si_names, sums):
            total += int(count) * (software_latencies[name] + trap_overhead)
        return total

    def __repr__(self) -> str:
        return (
            f"HotSpotTrace({self.hot_spot}, frame {self.frame_index}, "
            f"{self.iterations} iterations, {self.total_executions()} SI "
            f"executions)"
        )


@dataclass
class Workload:
    """A full application run: an ordered sequence of hot-spot traces."""

    name: str
    traces: List[HotSpotTrace] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise TraceError("workload name must be non-empty")

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[HotSpotTrace]:
        return iter(self.traces)

    def append(self, trace: HotSpotTrace) -> None:
        self.traces.append(trace)

    @property
    def num_frames(self) -> int:
        return len({t.frame_index for t in self.traces})

    @property
    def hot_spots(self) -> Tuple[str, ...]:
        """Distinct hot-spot names, in first-appearance order."""
        seen: List[str] = []
        for trace in self.traces:
            if trace.hot_spot not in seen:
                seen.append(trace.hot_spot)
        return tuple(seen)

    @property
    def si_names(self) -> Tuple[str, ...]:
        """Distinct SI names, in first-appearance order."""
        seen: List[str] = []
        for trace in self.traces:
            for name in trace.si_names:
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def totals(self) -> Dict[str, int]:
        """Total SI executions over the whole workload."""
        result: Dict[str, int] = {}
        for trace in self.traces:
            for name, count in trace.totals().items():
                result[name] = result.get(name, 0) + count
        return result

    def frames(self) -> Iterator[List[HotSpotTrace]]:
        """Group the traces frame by frame (in order)."""
        current: List[HotSpotTrace] = []
        current_frame: Optional[int] = None
        for trace in self.traces:
            if current_frame is None or trace.frame_index == current_frame:
                current.append(trace)
                current_frame = trace.frame_index
            else:
                yield current
                current = [trace]
                current_frame = trace.frame_index
        if current:
            yield current

    def subset_frames(self, num_frames: int) -> "Workload":
        """A workload containing only the first ``num_frames`` frames."""
        traces = [t for t in self.traces if t.frame_index < num_frames]
        return Workload(name=f"{self.name}[0:{num_frames}]", traces=traces)

    def software_cycles(
        self, software_latencies: Dict[str, int], trap_overhead: int = 0
    ) -> int:
        """Pure-software execution time of the whole workload."""
        return sum(
            t.software_cycles(software_latencies, trap_overhead)
            for t in self.traces
        )

    def __repr__(self) -> str:
        return (
            f"Workload({self.name!r}, {len(self.traces)} hot-spot "
            f"invocations, {self.num_frames} frames)"
        )
