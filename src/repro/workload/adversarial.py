"""Adversarial phase-misprediction workloads for the PREFETCH scheduler.

The H.264 model (:mod:`repro.workload.model`) executes the strictly
periodic hot-spot sequence ME -> EE -> LF, which a transition predictor
learns after one frame — ideal for demonstrating prefetch, useless for
stressing it.  This module generates *misprediction traces*: a dominant
ME -> EE -> LF cycle that, with a seeded per-phase ``flip_rate``
probability, jumps to a random **other** hot spot instead, so the
predictor's best guess is wrong on a controlled fraction of switches.
On top of the phase-order noise the SI mix shifts in regimes — every
``shift_period`` phases each SI's execution intensity is re-rolled — so
even a correctly predicted phase may want a different molecule selection
than the one speculated on (within-hot-spot adversity, not just
across-hot-spot).

Everything is driven by one :class:`numpy.random.RandomState` seed: the
same ``(num_phases, seed, flip_rate, ...)`` tuple always produces the
same workload bit-for-bit, which is what lets the differential and
property tests replay misprediction schedules exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TraceError
from ..h264.silibrary import HOT_SPOT_ORDER, HOT_SPOT_SIS
from .model import _BASE_COUNTS, _ITERATION_OVERHEAD
from .trace import HotSpotTrace, Workload

__all__ = ["AdversarialWorkloadModel", "generate_adversarial_workload"]


@dataclass
class AdversarialWorkloadModel:
    """Seeded generator of phase-misprediction workloads.

    Parameters
    ----------
    num_phases:
        Hot-spot invocations to generate (three per nominal frame).
    seed:
        Drives the flip schedule and the SI-mix regimes; same seed,
        same workload.
    flip_rate:
        Per-phase probability that the next hot spot is *not* the
        cyclic successor but a uniformly random other one.  ``0.0``
        reproduces the clean ME -> EE -> LF cycle (fully predictable);
        ``2/3`` makes the successor uniformly random (the predictor can
        do no better than chance).
    mbs_per_phase:
        Iterations (macroblocks) per hot-spot invocation.  The default
        is one full CIF frame (396) — long enough for the normal load
        queue to drain and the reconfiguration bus to go idle inside a
        phase, so speculative loads actually reach the bus.
    shift_period:
        Phases between SI-mix regime re-rolls (``0`` disables shifts).
    shift_amplitude:
        Relative strength of the regime scaling in ``[0, 1)``: each
        regime multiplies every SI's base count by a factor drawn from
        ``[1 - A, 1 + A]``.
    """

    num_phases: int = 60
    seed: int = 2008
    flip_rate: float = 0.25
    mbs_per_phase: int = 396
    shift_period: int = 12
    shift_amplitude: float = 0.5

    def __post_init__(self) -> None:
        if self.num_phases <= 0:
            raise TraceError(
                f"num_phases must be positive, got {self.num_phases}"
            )
        if not 0.0 <= self.flip_rate <= 1.0:
            raise TraceError(
                f"flip_rate must be in [0, 1], got {self.flip_rate}"
            )
        if self.mbs_per_phase <= 0:
            raise TraceError(
                f"mbs_per_phase must be positive, got {self.mbs_per_phase}"
            )
        if self.shift_period < 0:
            raise TraceError(
                f"shift_period must be >= 0, got {self.shift_period}"
            )
        if not 0.0 <= self.shift_amplitude < 1.0:
            raise TraceError(
                "shift_amplitude must be in [0, 1), got "
                f"{self.shift_amplitude}"
            )

    def hot_spot_sequence(self) -> list:
        """The phase order alone (exposed for test assertions)."""
        rng = np.random.RandomState(self.seed)
        return self._sequence(rng)

    def _sequence(self, rng: np.random.RandomState) -> list:
        order = list(HOT_SPOT_ORDER)
        sequence = [order[0]]
        for _ in range(self.num_phases - 1):
            current = sequence[-1]
            successor = order[(order.index(current) + 1) % len(order)]
            if rng.uniform() < self.flip_rate:
                others = [h for h in order if h != successor]
                successor = others[rng.randint(len(others))]
            sequence.append(successor)
        return sequence

    def generate(self) -> Workload:
        """Build the workload (one trace per phase)."""
        rng = np.random.RandomState(self.seed)
        sequence = self._sequence(rng)
        workload = Workload(
            name=(
                f"adversarial-{self.num_phases}p-seed{self.seed}"
                f"-flip{self.flip_rate:g}"
            )
        )
        n_mb = self.mbs_per_phase
        # One multiplicative regime factor per SI, re-rolled every
        # shift_period phases (SI-mix shifts across *and* within hot
        # spots: the same hot spot wants different molecules in
        # different regimes).
        si_names_all = sorted(
            {si for sis in HOT_SPOT_SIS.values() for si in sis}
        )
        factors = {si: 1.0 for si in si_names_all}
        for phase, hot_spot in enumerate(sequence):
            if self.shift_period and phase % self.shift_period == 0:
                amp = self.shift_amplitude
                for si in si_names_all:
                    factors[si] = 1.0 + amp * rng.uniform(-1.0, 1.0)
            si_names = HOT_SPOT_SIS[hot_spot]
            counts = np.zeros((n_mb, len(si_names)), dtype=np.int64)
            for col, si_name in enumerate(si_names):
                value = _BASE_COUNTS[si_name] * factors[si_name]
                counts[:, col] = max(0, int(round(value)))
            workload.append(
                HotSpotTrace(
                    hot_spot=hot_spot,
                    si_names=si_names,
                    counts=counts,
                    overhead_per_iteration=_ITERATION_OVERHEAD[hot_spot],
                    frame_index=phase // len(HOT_SPOT_ORDER),
                )
            )
        return workload


def generate_adversarial_workload(
    num_phases: int = 60,
    seed: int = 2008,
    flip_rate: float = 0.25,
    **kwargs,
) -> Workload:
    """Convenience wrapper: build a misprediction workload in one call."""
    model = AdversarialWorkloadModel(
        num_phases=num_phases, seed=seed, flip_rate=flip_rate, **kwargs
    )
    return model.generate()
