"""Workload substrate: SI-execution traces and their generators.

A workload is the sequence of hot-spot invocations an application
performs, each carrying the per-iteration (per-macroblock) SI execution
counts.  Two generators exist:

* :mod:`repro.workload.model` — a calibrated statistical model of the
  paper's 140-frame CIF H.264 encoding run (fast; used by the Figure 7 /
  Table 2 sweeps),
* the functional encoder in :mod:`repro.h264` — real pixel processing
  that emits the same trace structures (slow; used by examples and
  cross-validation tests),
* :mod:`repro.workload.adversarial` — seeded phase-misprediction
  traces that stress the PREFETCH scheduler's transition predictor.
"""

from __future__ import annotations

from .trace import HotSpotTrace, Workload
from .model import H264WorkloadModel, generate_workload
from .adversarial import (
    AdversarialWorkloadModel,
    generate_adversarial_workload,
)
from .io import save_workload, load_workload

__all__ = [
    "HotSpotTrace",
    "Workload",
    "H264WorkloadModel",
    "generate_workload",
    "AdversarialWorkloadModel",
    "generate_adversarial_workload",
    "save_workload",
    "load_workload",
]
