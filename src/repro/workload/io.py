"""Workload serialisation.

Traces are plain integer matrices plus a little metadata, so a whole
workload round-trips through a single compressed ``.npz`` file.  This
lets users capture an expensive functional-encoder run once and replay
it against many simulator configurations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import TraceError
from .trace import HotSpotTrace, Workload

__all__ = ["save_workload", "load_workload"]

_FORMAT_VERSION = 1


def save_workload(workload: Workload, path: Union[str, Path]) -> None:
    """Write a workload to ``path`` (``.npz``, compressed)."""
    arrays = {}
    meta = {
        "version": _FORMAT_VERSION,
        "name": workload.name,
        "traces": [],
    }
    for index, trace in enumerate(workload.traces):
        key = f"counts_{index}"
        arrays[key] = trace.counts
        meta["traces"].append(
            {
                "hot_spot": trace.hot_spot,
                "si_names": list(trace.si_names),
                "overhead": trace.overhead_per_iteration,
                "frame_index": trace.frame_index,
                "counts": key,
            }
        )
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(str(path), **arrays)


def load_workload(path: Union[str, Path]) -> Workload:
    """Read a workload previously written by :func:`save_workload`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"workload file {path} does not exist")
    with np.load(str(path)) as data:
        try:
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        except (KeyError, ValueError) as exc:
            raise TraceError(
                f"{path} is not a serialized workload: {exc}"
            ) from None
        if meta.get("version") != _FORMAT_VERSION:
            raise TraceError(
                f"unsupported workload format version "
                f"{meta.get('version')!r}"
            )
        workload = Workload(name=meta["name"])
        for entry in meta["traces"]:
            workload.append(
                HotSpotTrace(
                    hot_spot=entry["hot_spot"],
                    si_names=tuple(entry["si_names"]),
                    counts=data[entry["counts"]],
                    overhead_per_iteration=entry["overhead"],
                    frame_index=entry["frame_index"],
                )
            )
    return workload
