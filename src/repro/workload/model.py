"""Calibrated statistical model of the paper's H.264 encoding workload.

The paper encodes 140 CIF frames (352x288, 396 macroblocks per frame)
with the hot-spot sequence ME -> EE -> LF per frame (Figure 1).  We do
not have the authors' input sequence, so this module synthesises the SI
execution counts from a deterministic *activity field*: a smooth
per-macroblock motion/texture intensity that varies across the frame,
drifts over time, and jumps at a scene cut — the same statistical
behaviour that makes run-time adaptation worthwhile in the first place
(the monitor must track it, and mispredictions cost performance).

Calibration targets (all from the paper):

* combined SAD+SATD executions in one frame's ME hot spot ~ 31,977
  (Figure 2 annotation),
* pure-software execution of the full 140-frame run ~ 7,403 M cycles
  (Section 5), given the trap latencies of
  :mod:`repro.h264.silibrary` and the base-processor model defaults.

The per-macroblock base counts follow the structure of the H.264 encoder
described in [25]: a sub-sampled full-pel SAD search plus SATD-based
fractional refinement in ME; 4x4 forward+inverse transforms, Hadamard
passes on the DC coefficients, quarter-pel motion compensation and DC
intra prediction in EE; and strong-edge deblocking in LF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..calibration import (
    CIF_HEIGHT,
    CIF_WIDTH,
    MACROBLOCK_SIZE,
    NUM_FRAMES,
)
from ..errors import TraceError
from ..h264.silibrary import HOT_SPOT_ORDER, HOT_SPOT_SIS
from .trace import HotSpotTrace, Workload

__all__ = ["H264WorkloadModel", "generate_workload"]


#: Mean SI executions per macroblock at activity 1.0.  ME totals
#: 50 + 30.75 = 80.75 per MB -> 31,977 per 396-MB frame, matching the
#: Figure 2 annotation.
_BASE_COUNTS: Dict[str, float] = {
    "SAD": 50.0,      # sub-sampled full-pel search positions
    "SATD": 30.75,    # fractional-pel refinement candidates
    "DCT": 14.0,      # 4x4 block-pair transforms, fwd+inv folded
    "HT2x2": 1.0,     # chroma DC Hadamard
    "HT4x4": 2.0,     # luma DC Hadamard (fwd + inv)
    "MC": 7.0,        # quarter-pel compensations per inter MB
    "IPredHDC": 1.0,
    "IPredVDC": 1.0,
    "LF_BS4": 10.0,   # strong edges filtered per MB
}

#: Non-SI base-processor cycles per macroblock iteration of each hot spot.
_ITERATION_OVERHEAD: Dict[str, int] = {
    "ME": 250,
    "EE": 400,
    "LF": 120,
}

#: Which SI counts scale with the motion/texture activity of a
#: macroblock.  Control-flow-bound counts (transform block counts, DC
#: predictions) stay fixed.
_ACTIVITY_SCALED: Tuple[str, ...] = ("SAD", "SATD", "MC", "LF_BS4")


@dataclass
class H264WorkloadModel:
    """Deterministic, seeded generator for paper-scale workloads.

    Parameters
    ----------
    num_frames:
        Frames to generate (the paper uses 140).
    width / height:
        Luma resolution (defaults: CIF).
    seed:
        Seed of the activity field; same seed -> identical workload.
    scene_cut_frame:
        Frame index at which the content changes abruptly (set to a
        negative value to disable).  The cut exercises the monitor's
        adaptation: expectations trained on the old content are suddenly
        wrong.
    activity_amplitude:
        Relative strength of the activity modulation (0 disables all
        variation and yields the plain base counts).
    """

    num_frames: int = NUM_FRAMES
    width: int = CIF_WIDTH
    height: int = CIF_HEIGHT
    seed: int = 2008
    scene_cut_frame: int = 70
    activity_amplitude: float = 0.35

    def __post_init__(self) -> None:
        if self.num_frames <= 0:
            raise TraceError(f"num_frames must be positive, got {self.num_frames}")
        if self.width % MACROBLOCK_SIZE or self.height % MACROBLOCK_SIZE:
            raise TraceError(
                f"resolution {self.width}x{self.height} is not a multiple of "
                f"the macroblock size {MACROBLOCK_SIZE}"
            )
        if not 0.0 <= self.activity_amplitude < 1.0:
            raise TraceError(
                "activity amplitude must be in [0, 1), got "
                f"{self.activity_amplitude}"
            )

    @property
    def mbs_per_frame(self) -> int:
        return (self.width // MACROBLOCK_SIZE) * (
            self.height // MACROBLOCK_SIZE
        )

    # -- activity field ------------------------------------------------------

    def _activity(self, rng: np.random.RandomState) -> np.ndarray:
        """Per-(frame, macroblock) activity in [1-A, 1+A], mean ~ 1.

        Built from three deterministic components: a static spatial
        texture map (objects sit somewhere in the frame), a slow temporal
        drift (the camera pans), and white noise.  A scene cut re-rolls
        the spatial map mid-sequence.
        """
        n_mb = self.mbs_per_frame
        amp = self.activity_amplitude
        spatial_a = rng.uniform(-1.0, 1.0, size=n_mb)
        spatial_b = rng.uniform(-1.0, 1.0, size=n_mb)
        noise = rng.uniform(-1.0, 1.0, size=(self.num_frames, n_mb))
        frames = np.arange(self.num_frames)[:, None]
        drift = np.sin(2.0 * np.pi * frames / 48.0)
        spatial = np.where(
            frames < self.scene_cut_frame if self.scene_cut_frame >= 0
            else np.ones_like(frames, dtype=bool),
            spatial_a[None, :],
            spatial_b[None, :],
        )
        mix = 0.5 * spatial + 0.3 * drift + 0.2 * noise
        return 1.0 + amp * mix

    # -- generation ------------------------------------------------------------

    def generate(self) -> Workload:
        """Build the full workload (one ME, EE, LF trace per frame)."""
        rng = np.random.RandomState(self.seed)
        activity = self._activity(rng)
        n_mb = self.mbs_per_frame
        workload = Workload(
            name=(
                f"h264-model-{self.width}x{self.height}-"
                f"{self.num_frames}f-seed{self.seed}"
            )
        )
        # Intra-coded macroblocks skip motion compensation and do more
        # intra prediction; the fraction rises with activity.
        for frame in range(self.num_frames):
            act = activity[frame]
            intra = rng.uniform(size=n_mb) < np.clip(
                0.04 + 0.08 * (act - 1.0), 0.0, 0.5
            )
            for hot_spot in HOT_SPOT_ORDER:
                si_names = HOT_SPOT_SIS[hot_spot]
                counts = np.zeros((n_mb, len(si_names)), dtype=np.int64)
                for col, si_name in enumerate(si_names):
                    base = _BASE_COUNTS[si_name]
                    if si_name in _ACTIVITY_SCALED:
                        values = base * act
                    else:
                        values = np.full(n_mb, base)
                    if si_name == "MC":
                        values = np.where(intra, 0.0, values)
                    elif si_name in ("IPredHDC", "IPredVDC"):
                        values = np.where(intra, values * 2.0, values)
                    counts[:, col] = np.maximum(
                        0, np.rint(values).astype(np.int64)
                    )
                workload.append(
                    HotSpotTrace(
                        hot_spot=hot_spot,
                        si_names=si_names,
                        counts=counts,
                        overhead_per_iteration=_ITERATION_OVERHEAD[hot_spot],
                        frame_index=frame,
                    )
                )
        return workload

    def offline_profile(self) -> Dict[str, Dict[str, float]]:
        """Design-time execution estimates per hot spot (monitor seed).

        Intentionally *imperfect*: the profile reports the base counts
        scaled to a whole frame, without the content-dependent activity —
        this is what a designer could know before deployment.
        """
        n_mb = self.mbs_per_frame
        return {
            hot_spot: {
                si_name: _BASE_COUNTS[si_name] * n_mb
                for si_name in HOT_SPOT_SIS[hot_spot]
            }
            for hot_spot in HOT_SPOT_ORDER
        }


def generate_workload(
    num_frames: int = NUM_FRAMES,
    seed: int = 2008,
    **kwargs,
) -> Workload:
    """Convenience wrapper: build a paper-scale workload in one call."""
    model = H264WorkloadModel(num_frames=num_frames, seed=seed, **kwargs)
    return model.generate()
