"""Tracer protocol: zero-overhead-by-default instrumentation.

Every instrumentable component (simulator engine, reconfiguration port,
fabric) holds a :class:`Tracer`.  The default is the no-op
:data:`NULL_TRACER` whose :attr:`Tracer.enabled` flag is ``False`` — hot
paths guard event *construction* behind that flag, so a run without a
recording tracer performs no per-event work at all and stays
bit-identical to a tracer-free build (``tests/test_obs_overhead.py``
pins both properties).

A :class:`RecordingTracer` appends every emitted event to an in-memory
list; exporters (:mod:`repro.obs.export`), metrics derivation
(:mod:`repro.obs.metrics`) and the differential replay
(:mod:`repro.obs.replay`) all consume that list.
"""

from __future__ import annotations

from typing import Iterator, List, Type

from .events import TraceEvent

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "RecordingTracer"]


class Tracer:
    """Base tracer: ignores every event.

    Subclasses that actually observe events set :attr:`enabled` to
    ``True`` and override :meth:`emit`.  Instrumented code must guard
    event construction with ``if tracer.enabled:`` — the flag check is
    the *only* cost a disabled tracer adds.
    """

    #: Whether instrumented code should construct and emit events.
    enabled: bool = False

    def emit(self, event: TraceEvent) -> None:
        """Observe one event (no-op in the base tracer)."""


class NullTracer(Tracer):
    """Explicitly-named no-op tracer (identical to the base)."""


#: Shared no-op instance used as the default everywhere.
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Tracer that records every event in emission order.

    The recorded list is append-only during a run; ``clear()`` starts a
    fresh recording.  Events are timestamped with the *simulated* clock,
    so a recording is deterministic and diffable across runs.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(
        self, *kinds: str
    ) -> List[TraceEvent]:
        """The recorded events whose kind is one of ``kinds``, in order."""
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def of_type(self, event_type: Type[TraceEvent]) -> List[TraceEvent]:
        """The recorded events of one dataclass type, in order."""
        return [e for e in self.events if isinstance(e, event_type)]

    def __repr__(self) -> str:
        return f"RecordingTracer({len(self.events)} events)"
