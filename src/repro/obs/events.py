"""Typed trace events — the vocabulary of the observability layer.

Every event is a small frozen dataclass with a ``cycle`` timestamp (the
simulated clock, *not* wall time) and a class-level ``kind`` tag.  The
set of kinds mirrors the paper's run-time anatomy: hot-spot switches
(Section 3), scheduler decisions with the HEF benefit terms (Figure 6,
line 20), the serial reconfiguration-bus activity (Section 5), evictions,
SI upgrades landing (Figure 8's latency step-downs) and degraded-mode
segments from the fault-injection subsystem.

Events round-trip losslessly through plain-JSON dictionaries
(:meth:`TraceEvent.to_json_dict` / :func:`event_from_json_dict`); the
kind registry drives generic deserialisation.  Wall-clock quantities are
deliberately *excluded* from events so a recorded run is bit-reproducible
— wall time lives in :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Type

from ..errors import ObservabilityError

__all__ = [
    "TraceEvent",
    "RunStart",
    "RunEnd",
    "HotSpotSwitch",
    "DecisionStep",
    "SchedulerDecision",
    "LoadStart",
    "LoadComplete",
    "LoadFailed",
    "LoadRetry",
    "LoadAbandoned",
    "PrefetchIssued",
    "PrefetchHit",
    "PrefetchWasted",
    "Eviction",
    "ContainerDead",
    "SIUpgrade",
    "DegradedEnter",
    "DegradedExit",
    "CellRetry",
    "CellQuarantined",
    "CellResumed",
    "RequestAdmitted",
    "RequestShed",
    "RequestPreempted",
    "RequestCompleted",
    "DegradedServed",
    "BreakerTransition",
    "SnapshotWritten",
    "ServiceRecovered",
    "TenantJoined",
    "TenantDrained",
    "AcRetired",
    "event_from_json_dict",
    "event_kinds",
]


_KIND_REGISTRY: Dict[str, Type["TraceEvent"]] = {}


def _register(cls: Type["TraceEvent"]) -> Type["TraceEvent"]:
    """Class decorator: register an event dataclass under its kind."""
    if not cls.kind or cls.kind in _KIND_REGISTRY:
        raise ObservabilityError(
            f"event class {cls.__name__} has a missing or duplicate "
            f"kind {cls.kind!r}"
        )
    _KIND_REGISTRY[cls.kind] = cls
    return cls


def event_kinds() -> Tuple[str, ...]:
    """All registered event kinds, sorted."""
    return tuple(sorted(_KIND_REGISTRY))


@dataclass(frozen=True)
class TraceEvent:
    """Base of all trace events: a timestamped, typed record."""

    #: Class-level kind tag; concrete subclasses override it.
    kind = ""

    cycle: int

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation: the fields plus the kind tag."""
        data: Dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = [
                    v.to_json_dict() if isinstance(v, DecisionStep) else v
                    for v in value
                ]
            data[field.name] = value
        return data


def event_from_json_dict(data: Mapping[str, Any]) -> TraceEvent:
    """Rebuild a typed event from :meth:`TraceEvent.to_json_dict` output.

    Raises
    ------
    ObservabilityError
        For an unknown kind or a payload that does not match the kind's
        fields — the event log is a versioned format, not free-form JSON.
    """
    kind = data.get("kind")
    cls = _KIND_REGISTRY.get(kind)
    if cls is None:
        raise ObservabilityError(
            f"unknown trace-event kind {kind!r}; known: {list(event_kinds())}"
        )
    kwargs: Dict[str, Any] = {}
    for field in dataclasses.fields(cls):
        if field.name not in data:
            raise ObservabilityError(
                f"event of kind {kind!r} is missing field {field.name!r}"
            )
        value = data[field.name]
        if isinstance(value, (list, tuple)):
            if cls is SchedulerDecision and field.name == "steps":
                value = tuple(
                    DecisionStep.from_json_dict(v) for v in value
                )
            else:
                value = _tupleize(value)
        kwargs[field.name] = value
    return cls(**kwargs)


def _tupleize(value: Any) -> Any:
    """Recursively turn (nested) lists into tuples (JSON -> dataclass)."""
    if isinstance(value, (list, tuple)):
        return tuple(_tupleize(v) for v in value)
    return value


# -- run demarcation -----------------------------------------------------------


@_register
@dataclass(frozen=True)
class RunStart(TraceEvent):
    """A simulator run began (cycle 0)."""

    kind = "run_start"

    system: str
    scheduler: str
    num_acs: int
    workload_name: str


@_register
@dataclass(frozen=True)
class RunEnd(TraceEvent):
    """The run finished; ``cycle`` equals the result's total cycles."""

    kind = "run_end"

    total_cycles: int


# -- hot-spot switches and scheduler decisions ---------------------------------


@_register
@dataclass(frozen=True)
class HotSpotSwitch(TraceEvent):
    """Execution entered a hot spot (before the RTM entry overhead)."""

    kind = "hot_spot_switch"

    hot_spot: str
    frame_index: int
    trace_index: int
    entry_overhead: int


@dataclass(frozen=True)
class DecisionStep:
    """One molecule-level upgrade step of a scheduler decision.

    ``benefit_num``/``benefit_den`` are the HEF benefit terms of
    Figure 6 line 20 evaluated for the committed step:
    ``expectedExecutions * (latency_before - latency)`` over the number
    of additionally loaded atoms.  For the other schedulers the same
    terms describe what HEF *would* have credited the step with, which
    is exactly what a Figure 7 why-does-HEF-win audit needs.
    ``latency_after`` is the SI's best latency once the step's loads
    finished (never above ``latency_before``).
    """

    si_name: str
    molecule: str
    num_loads: int
    latency_before: int
    latency_after: int
    benefit_num: float
    benefit_den: int

    def to_json_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "DecisionStep":
        return cls(
            si_name=str(data["si_name"]),
            molecule=str(data["molecule"]),
            num_loads=int(data["num_loads"]),
            latency_before=int(data["latency_before"]),
            latency_after=int(data["latency_after"]),
            benefit_num=float(data["benefit_num"]),
            benefit_den=int(data["benefit_den"]),
        )


@_register
@dataclass(frozen=True)
class SchedulerDecision(TraceEvent):
    """The run-time manager planned the loads for a hot-spot entry."""

    kind = "scheduler_decision"

    hot_spot: str
    scheduler: str
    #: SI name -> selected molecule name (the candidate set the decision
    #: chose from; software selections are omitted).
    selection: Tuple[Tuple[str, str], ...]
    #: Upgrade steps in commit order (empty for plain load sequences).
    steps: Tuple[DecisionStep, ...]
    #: The resulting atom load order handed to the reconfiguration port.
    atom_sequence: Tuple[str, ...]


# -- reconfiguration bus -------------------------------------------------------


@_register
@dataclass(frozen=True)
class LoadStart(TraceEvent):
    """The port began writing one atom bitstream into a container.

    ``cycle`` is when the port accepted the load; retry backoff is part
    of the in-flight time, so ``expected_completion`` already includes
    it.  ``attempt`` is 0 for a fresh load, n for the n-th retry.
    ``speculative`` marks loads issued by the prefetch scheduler for a
    *predicted* future hot spot — they only ever fill empty containers,
    so a speculative load never triggers an :class:`Eviction`.
    """

    kind = "load_start"

    atom_type: str
    container_index: int
    expected_completion: int
    attempt: int
    speculative: bool = False


@_register
@dataclass(frozen=True)
class LoadComplete(TraceEvent):
    """An atom load finished successfully; the atom is usable now."""

    kind = "load_complete"

    atom_type: str
    container_index: int


@_register
@dataclass(frozen=True)
class LoadFailed(TraceEvent):
    """The fault model failed a completing load."""

    kind = "load_failed"

    atom_type: str
    container_index: int
    fault: str
    attempt: int


@_register
@dataclass(frozen=True)
class LoadRetry(TraceEvent):
    """A failed load re-entered the port under the retry policy."""

    kind = "load_retry"

    atom_type: str
    attempt: int
    backoff: int


@_register
@dataclass(frozen=True)
class LoadAbandoned(TraceEvent):
    """A load was given up on (retry budget or degraded fabric)."""

    kind = "load_abandoned"

    atom_type: str
    reason: str


# -- cross-hot-spot prefetch ---------------------------------------------------
#
# Prefetch events describe the speculative side channel of the PREFETCH
# scheduler (:mod:`repro.core.schedulers.prefetch`): atom loads issued
# for a *predicted* next hot spot during idle windows of the current
# one.  The differential replay ignores them — their cycle-accounting
# effect manifests entirely through the SIUpgrade latency timeline.
# Invariant per run: every issued prefetch is eventually classified,
# i.e. #PrefetchIssued == #PrefetchHit + #PrefetchWasted.


@_register
@dataclass(frozen=True)
class PrefetchIssued(TraceEvent):
    """A speculative atom load was queued for a predicted hot spot.

    ``hot_spot`` is the phase being executed when the speculation was
    issued; ``predicted_hot_spot`` is the phase the atom is for.
    ``confidence`` is the transition predictor's score for that phase at
    issue time (recency-weighted transition frequency in [0, 1]).
    """

    kind = "prefetch_issued"

    hot_spot: str
    predicted_hot_spot: str
    atom_type: str
    confidence: float


@_register
@dataclass(frozen=True)
class PrefetchHit(TraceEvent):
    """A speculative atom turned out to be wanted by the next hot spot.

    Emitted at the hot-spot switch that consumed the speculation;
    ``hot_spot`` is the phase that materialised and matched.
    """

    kind = "prefetch_hit"

    hot_spot: str
    atom_type: str


@_register
@dataclass(frozen=True)
class PrefetchWasted(TraceEvent):
    """A speculative atom did not help (misprediction path).

    ``reason`` is the waste taxonomy tag: ``mispredicted`` (the phase
    that materialised was not the predicted one), ``surplus`` (right
    phase, but the new selection did not want this atom), ``dropped``
    (no empty container / queue cancelled before the load started —
    zero bus cost), ``failed`` (the fault model killed the speculative
    load; speculative loads are never retried) or ``run_end`` (the run
    finished before the next switch could consume it).
    """

    kind = "prefetch_wasted"

    atom_type: str
    reason: str


# -- fabric --------------------------------------------------------------------


@_register
@dataclass(frozen=True)
class Eviction(TraceEvent):
    """A stale loaded atom was evicted to make room for a new load."""

    kind = "eviction"

    atom_type: str
    container_index: int


@_register
@dataclass(frozen=True)
class ContainerDead(TraceEvent):
    """A container was permanently retired by a hard fault."""

    kind = "container_dead"

    container_index: int


# -- SI latency timeline -------------------------------------------------------


@_register
@dataclass(frozen=True)
class SIUpgrade(TraceEvent):
    """An SI's effective per-execution latency changed.

    Emitted whenever the engine observes a different effective latency
    for an SI than the last recorded one — usually a step *down* when an
    upgrade lands, occasionally a step *up* when an eviction or fault
    removed atoms an implementation was using.  ``latency`` includes the
    trap overhead while the SI runs in software, i.e. it is the true
    per-execution cost the pipeline observes — the differential replay
    (:mod:`repro.obs.replay`) reconstructs cycle counts from exactly
    these events.
    """

    kind = "si_upgrade"

    si_name: str
    molecule: str
    latency: int
    software: bool


# -- degraded-mode segments ----------------------------------------------------


@_register
@dataclass(frozen=True)
class DegradedEnter(TraceEvent):
    """Execution entered degraded mode (dead containers or a retry)."""

    kind = "degraded_enter"


@_register
@dataclass(frozen=True)
class DegradedExit(TraceEvent):
    """Execution left degraded mode."""

    kind = "degraded_exit"


# -- sweep supervisor ----------------------------------------------------------
#
# Supervisor events describe the *execution harness*, not the simulated
# machine: their ``cycle`` is always 0 (there is no simulated clock at
# the grid level) and the differential replay ignores them.  They exist
# so chaos runs are observable through the same event log, exporters and
# metrics as everything else.


@_register
@dataclass(frozen=True)
class CellRetry(TraceEvent):
    """A sweep cell's attempt failed and the cell was re-queued.

    ``failure`` is the supervisor taxonomy tag (``timeout`` / ``crash``
    / ``poison``); ``backoff_ms`` is the seeded-jitter delay before the
    next attempt, in milliseconds (an integer, keeping events
    wall-clock-free *as data* even though the delay itself is a
    wall-clock plan).
    """

    kind = "cell_retry"

    label: str
    attempt: int
    failure: str
    backoff_ms: int


@_register
@dataclass(frozen=True)
class CellQuarantined(TraceEvent):
    """A sweep cell exhausted its attempt budget and left the grid."""

    kind = "cell_quarantined"

    label: str
    attempts: int
    failure: str


@_register
@dataclass(frozen=True)
class CellResumed(TraceEvent):
    """A completed cell was replayed from a resume journal."""

    kind = "cell_resumed"

    label: str
    source: str


# -- multi-tenant fabric service -----------------------------------------------
#
# Service events describe the arbitration layer (:mod:`repro.service`):
# their ``cycle`` is the arbiter's *virtual tick*, not a simulated
# machine cycle, and the differential replay ignores them.  Every event
# is tenant-tagged so a single soak log can be sliced per tenant.


@_register
@dataclass(frozen=True)
class RequestAdmitted(TraceEvent):
    """A tenant request passed admission control and joined the queue."""

    kind = "request_admitted"

    tenant: str
    request_id: str
    hot_spot: str
    deadline: int
    lease_acs: int


@_register
@dataclass(frozen=True)
class RequestShed(TraceEvent):
    """A tenant request was rejected at admission (load shedding).

    ``reason`` is the shedding taxonomy tag: ``rate_limited``,
    ``in_flight_cap``, ``atom_budget``, ``queue_full`` or ``deadline``.
    Shedding happens *only* at admission — an admitted request is never
    dropped.
    """

    kind = "request_shed"

    tenant: str
    request_id: str
    reason: str


@_register
@dataclass(frozen=True)
class RequestPreempted(TraceEvent):
    """An in-flight request lost its fabric lease and was re-queued.

    ``reason`` is ``priority`` (a higher-priority tenant claimed the
    capacity), ``fault`` (container deaths shrank the fabric below the
    granted leases) or ``retire`` (a live ``ac_remove`` reconfiguration
    shrank it).  ``backoff`` is the seeded-jitter delay in virtual
    ticks before the request may be re-dispatched.
    """

    kind = "request_preempted"

    tenant: str
    request_id: str
    reason: str
    preemptions: int
    backoff: int


@_register
@dataclass(frozen=True)
class RequestCompleted(TraceEvent):
    """An admitted request finished and its answer was delivered."""

    kind = "request_completed"

    tenant: str
    request_id: str
    latency: int
    degraded: bool
    cache_hit: bool


@_register
@dataclass(frozen=True)
class DegradedServed(TraceEvent):
    """A request was answered with the cISA-only software result.

    Emitted when the circuit breaker is open or the fabric cannot fit
    the tenant's lease: the service degrades instead of failing."""

    kind = "degraded_served"

    tenant: str
    request_id: str
    reason: str


@_register
@dataclass(frozen=True)
class BreakerTransition(TraceEvent):
    """The service circuit breaker changed state.

    ``state`` is the state being *entered* (``open`` / ``half_open`` /
    ``closed``); ``faults`` is the fault count inside the sliding window
    at transition time.
    """

    kind = "breaker_transition"

    state: str
    faults: int


@_register
@dataclass(frozen=True)
class SnapshotWritten(TraceEvent):
    """The arbiter persisted a recovery snapshot.

    ``journal_offset`` is the logical length, in bytes, of the journal
    prefix the snapshot is anchored to — recovery re-executes from here.
    Snapshot traffic is observability-only: it never enters the journal
    itself, so digests are independent of the snapshot cadence.
    """

    kind = "snapshot_written"

    tick: int
    path: str
    journal_offset: int


@_register
@dataclass(frozen=True)
class ServiceRecovered(TraceEvent):
    """A crashed service run was restored and resumed.

    ``source`` says what the restore started from: ``snapshot`` (latest
    valid snapshot) or ``replay`` (no usable snapshot — full journal
    re-execution from tick 0).  ``resume_tick`` is the virtual tick
    re-execution resumed at; ``tail_lines`` is how many journal lines
    were re-verified against the regenerated timeline.
    """

    kind = "service_recovered"

    source: str
    resume_tick: int
    tail_lines: int


@_register
@dataclass(frozen=True)
class TenantJoined(TraceEvent):
    """A tenant joined the fleet through a live reconfiguration event."""

    kind = "tenant_joined"

    tenant: str
    priority: str
    lease_acs: int


@_register
@dataclass(frozen=True)
class TenantDrained(TraceEvent):
    """A leaving tenant finished draining: no queued or in-flight work.

    Emitted once per departing tenant, at the tick its last admitted
    request completed (immediately at the leave tick when it was idle).
    New arrivals after the leave event are shed as ``draining``.
    """

    kind = "tenant_drained"

    tenant: str
    completed: int


@_register
@dataclass(frozen=True)
class AcRetired(TraceEvent):
    """A live ``ac_remove`` reconfiguration retired one container.

    ``usable_acs`` is the fleet capacity *after* the retirement;
    over-committed leases are preempted through the normal preemption
    path with reason ``retire``.
    """

    kind = "ac_retired"

    index: int
    usable_acs: int
