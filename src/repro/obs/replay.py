"""Differential replay: an independent micro-interpreter of event logs.

The simulation engine (:mod:`repro.sim.engine`) advances *analytically*
— one vectorised cumulative sum per latency span.  This module is its
adversary: a deliberately naive interpreter that walks the workload
**iteration by iteration** in plain Python integer arithmetic, looking
up each SI's effective latency from the recorded
:class:`~repro.obs.events.SIUpgrade` timeline.  If the two disagree on a
single cycle, either the engine's span arithmetic (including the
straddling-iteration rule: an iteration in flight when an upgrade lands
finishes at its old latencies) or the event emission is wrong.

``tests/test_obs_differential.py`` pins exact agreement across the
scheduler x AC-count grid.  Keep this module free of any import from
:mod:`repro.sim` — independence is the point.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

from ..errors import ObservabilityError
from .events import HotSpotSwitch, SIUpgrade, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from ..workload.trace import Workload

__all__ = [
    "REPLAY_IGNORED_EVENTS",
    "LatencyTimeline",
    "replay_total_cycles",
]

#: Event classes the replay deliberately does NOT consume.  Cycle
#: accounting needs only the hot-spot switch timeline and the SIUpgrade
#: latency steps; everything below is either redundant with those
#: (loads/evictions manifest as latency changes) or pure bookkeeping.
#: The schema-drift lint rule (RL004) cross-checks this tuple against
#: ``events.py``: a new event class must be handled here or added here
#: *explicitly* — silent omission fails ``python -m repro lint``.
REPLAY_IGNORED_EVENTS: Tuple[str, ...] = (
    "RunStart",
    "RunEnd",
    "SchedulerDecision",
    "LoadStart",
    "LoadComplete",
    "LoadFailed",
    "LoadRetry",
    "LoadAbandoned",
    # Prefetch bookkeeping: speculative bus activity for a predicted
    # next hot spot.  Its cycle-accounting effect (earlier upgrades
    # after the switch) manifests entirely as SIUpgrade latency steps.
    "PrefetchIssued",
    "PrefetchHit",
    "PrefetchWasted",
    "Eviction",
    "ContainerDead",
    "DegradedEnter",
    "DegradedExit",
    # Sweep-supervisor events: grid-level harness bookkeeping with no
    # simulated clock at all — irrelevant to cycle accounting.
    "CellRetry",
    "CellQuarantined",
    "CellResumed",
    # Multi-tenant service events: arbitration-layer bookkeeping on the
    # virtual-tick clock, not the simulated machine clock.
    "RequestAdmitted",
    "RequestShed",
    "RequestPreempted",
    "RequestCompleted",
    "DegradedServed",
    "BreakerTransition",
    # Crash-recovery and live-reconfiguration events: control-plane
    # bookkeeping on the same virtual-tick clock.
    "SnapshotWritten",
    "ServiceRecovered",
    "TenantJoined",
    "TenantDrained",
    "AcRetired",
)


class LatencyTimeline:
    """Per-SI effective latencies over time, built from SIUpgrade events."""

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self._cycles: Dict[str, List[int]] = {}
        self._values: Dict[str, List[int]] = {}
        for event in events:
            if isinstance(event, SIUpgrade):
                self._cycles.setdefault(event.si_name, []).append(event.cycle)
                self._values.setdefault(event.si_name, []).append(
                    event.latency
                )
        for si_name, cycles in self._cycles.items():
            if any(b < a for a, b in zip(cycles, cycles[1:])):
                raise ObservabilityError(
                    f"SIUpgrade events of {si_name!r} are not in time order"
                )

    def latency_at(self, si_name: str, cycle: int) -> int:
        """The latency in effect for ``si_name`` at ``cycle``.

        The engine re-reads latencies at span starts, so a change
        recorded *at* ``cycle`` applies to an iteration starting at
        ``cycle``.
        """
        cycles = self._cycles.get(si_name)
        if not cycles:
            raise ObservabilityError(
                f"no recorded latency for SI {si_name!r}"
            )
        index = bisect_right(cycles, cycle) - 1
        if index < 0:
            raise ObservabilityError(
                f"SI {si_name!r} executed at cycle {cycle} before its "
                f"first recorded latency (cycle {cycles[0]})"
            )
        return self._values[si_name][index]


def replay_total_cycles(
    events: Sequence[TraceEvent], workload: Workload
) -> int:
    """Reconstruct a run's total cycle count from its event log.

    ``workload`` is the same :class:`~repro.workload.trace.Workload` the
    recorded run replayed (workloads are seed-deterministic, so the test
    rebuilds it from the cell configuration).  Hot-spot entry overheads
    are taken from the recorded :class:`HotSpotSwitch` events; SI
    latencies from the :class:`SIUpgrade` timeline.  Everything else is
    first-principles per-iteration accounting.
    """
    timeline = LatencyTimeline(events)
    switches = [e for e in events if isinstance(e, HotSpotSwitch)]
    traces = list(workload)
    if len(switches) != len(traces):
        raise ObservabilityError(
            f"event log records {len(switches)} hot-spot switches but the "
            f"workload has {len(traces)} traces — wrong workload?"
        )
    now = 0
    for trace, switch in zip(traces, switches):
        if switch.hot_spot != trace.hot_spot:
            raise ObservabilityError(
                f"hot-spot order mismatch: recorded {switch.hot_spot!r}, "
                f"workload has {trace.hot_spot!r}"
            )
        if switch.cycle != now:
            raise ObservabilityError(
                f"hot spot {trace.hot_spot!r} recorded at cycle "
                f"{switch.cycle}, replay reached it at {now}"
            )
        now += switch.entry_overhead
        si_names = trace.si_names
        overhead = trace.overhead_per_iteration
        for row in trace.counts:
            duration = overhead
            for si_name, count in zip(si_names, row):
                if count:
                    duration += int(count) * timeline.latency_at(
                        si_name, now
                    )
            now += duration
    return now
