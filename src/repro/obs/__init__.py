"""repro.obs — the observability layer.

Zero-overhead-by-default instrumentation threaded through the whole
stack (simulators, schedulers' decisions, reconfiguration port, fabric):

* :mod:`repro.obs.events` — the typed trace-event vocabulary,
* :mod:`repro.obs.tracer` — the :class:`Tracer` protocol with the no-op
  default and the in-memory :class:`RecordingTracer`,
* :mod:`repro.obs.metrics` — counters/gauges/histograms plus the
  :func:`run_metrics` derivation (bus busy fraction,
  cycles-to-first-acceleration, ...),
* :mod:`repro.obs.export` — JSON event log (versioned schema), Chrome
  trace-event format (``chrome://tracing`` / Perfetto), plain-text
  timeline,
* :mod:`repro.obs.replay` — the independent per-iteration
  micro-interpreter behind the differential tests.

A run records by passing ``tracer=RecordingTracer()`` to a simulator;
without one, the simulators behave (and perform) exactly as before —
pinned by the overhead-guard tests.
"""

from __future__ import annotations

from .events import (
    BreakerTransition,
    CellQuarantined,
    CellResumed,
    CellRetry,
    ContainerDead,
    DecisionStep,
    DegradedEnter,
    DegradedExit,
    DegradedServed,
    Eviction,
    HotSpotSwitch,
    LoadAbandoned,
    LoadComplete,
    LoadFailed,
    LoadRetry,
    LoadStart,
    PrefetchHit,
    PrefetchIssued,
    PrefetchWasted,
    RequestAdmitted,
    RequestCompleted,
    RequestPreempted,
    RequestShed,
    RunEnd,
    RunStart,
    SchedulerDecision,
    SIUpgrade,
    TraceEvent,
    event_from_json_dict,
    event_kinds,
)
from .export import (
    OBS_SCHEMA,
    OBS_SCHEMA_VERSION,
    TRACE_FORMATS,
    events_from_json_dict,
    events_to_json_dict,
    export_events,
    read_event_log,
    to_chrome_trace,
    to_summary_text,
    validate_chrome_trace,
    write_event_log,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, run_metrics
from .replay import LatencyTimeline, replay_total_cycles
from .tracer import NULL_TRACER, NullTracer, RecordingTracer, Tracer

__all__ = [
    # events
    "TraceEvent",
    "RunStart",
    "RunEnd",
    "HotSpotSwitch",
    "DecisionStep",
    "SchedulerDecision",
    "LoadStart",
    "LoadComplete",
    "LoadFailed",
    "LoadRetry",
    "LoadAbandoned",
    "PrefetchIssued",
    "PrefetchHit",
    "PrefetchWasted",
    "Eviction",
    "ContainerDead",
    "SIUpgrade",
    "DegradedEnter",
    "DegradedExit",
    "CellRetry",
    "CellQuarantined",
    "CellResumed",
    "RequestAdmitted",
    "RequestShed",
    "RequestPreempted",
    "RequestCompleted",
    "DegradedServed",
    "BreakerTransition",
    "event_from_json_dict",
    "event_kinds",
    # tracer
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "run_metrics",
    # export
    "OBS_SCHEMA",
    "OBS_SCHEMA_VERSION",
    "TRACE_FORMATS",
    "events_to_json_dict",
    "events_from_json_dict",
    "write_event_log",
    "read_event_log",
    "to_chrome_trace",
    "validate_chrome_trace",
    "to_summary_text",
    "export_events",
    # replay
    "LatencyTimeline",
    "replay_total_cycles",
]
