"""Per-run metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is a small, dependency-free metrics surface
in the spirit of Prometheus client libraries: named counters (monotone),
gauges (last value wins) and histograms (running count/sum/min/max plus
the raw observations for percentiles).  The simulators and the sweep
engine feed it, and :func:`run_metrics` derives the headline run
aggregates the paper's analysis needs — reconfiguration-bus busy
fraction, mean cycles-to-first-acceleration per SI, scheduler decision
wall time — from a result plus a recorded event stream.

Unlike trace events (:mod:`repro.obs.events`), metrics may contain
wall-clock measurements; they are diagnostics, not part of the
deterministic event-log format.  This module is one of the two
allowlisted wall-clock sites of the determinism lint rule (RL001):
instrumented code never reads the clock itself, it asks the registry for
a :meth:`MetricsRegistry.timer` context.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Any, Dict, Iterable, List, Optional, Type, TypeVar

from ..errors import ObservabilityError
from .events import (
    HotSpotSwitch,
    LoadComplete,
    LoadFailed,
    LoadStart,
    SIUpgrade,
    TraceEvent,
)

_MetricT = TypeVar("_MetricT")

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramTimer",
    "MetricsRegistry",
    "run_metrics",
]


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def to_json_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can move both ways; the last ``set`` wins."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_json_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A distribution of observations with running aggregates."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self._values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the observations, 0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class HistogramTimer:
    """Context manager feeding one wall-clock span into a histogram.

    The *only* sanctioned way for instrumented code to measure wall
    time: the clock read stays inside this (RL001-allowlisted) module,
    so simulation code never imports :mod:`time` itself.
    """

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "HistogramTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class MetricsRegistry:
    """Named metrics with get-or-create accessors.

    A name is bound to one metric type for the registry's lifetime;
    asking for the same name as a different type is an error (it would
    silently fork the data otherwise).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, cls: Type[_MetricT]) -> _MetricT:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ObservabilityError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def timer(self, name: str) -> HistogramTimer:
        """A ``with``-context timing one span into histogram ``name``."""
        return HistogramTimer(self.histogram(name))

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: object) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Any:
        """The metric registered under ``name`` (KeyError when absent)."""
        return self._metrics[name]

    def to_json_dict(self) -> Dict[str, Any]:
        """All metrics as one plain-JSON dictionary, sorted by name."""
        return {
            name: self._metrics[name].to_json_dict()
            for name in self.names()
        }

    def format_text(self) -> str:
        """Human-readable one-metric-per-line dump."""
        lines = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                lines.append(
                    f"{name}: count={metric.count} mean={metric.mean:g} "
                    f"min={metric.min if metric.min is not None else '-'} "
                    f"max={metric.max if metric.max is not None else '-'}"
                )
            else:
                lines.append(f"{name}: {metric.value:g}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


def run_metrics(
    events: Iterable[TraceEvent],
    total_cycles: int,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Derive the headline run aggregates from a recorded event stream.

    Fills (into ``registry`` or a fresh one):

    * ``bus.busy_cycles`` / ``bus.busy_fraction`` — cycles the serial
      reconfiguration port spent writing bitstreams (completed *and*
      failed loads both occupy the bus), relative to the run length.
      This is the direct audit of the paper's serial-bottleneck
      assumption.
    * ``si.first_acceleration.<SI>`` — cycle of the first hardware
      implementation becoming effective for each SI, plus the
      ``si.first_acceleration.mean`` gauge over all accelerated SIs.
    * ``loads.completed`` / ``loads.failed`` counters and the
      ``hot_spots.switches`` counter.
    """
    registry = registry if registry is not None else MetricsRegistry()
    busy = 0
    starts: Dict[int, int] = {}
    first_hw: Dict[str, int] = {}
    for event in events:
        if isinstance(event, LoadStart):
            starts[event.container_index] = event.cycle
        elif isinstance(event, LoadComplete):
            begun = starts.pop(event.container_index, None)
            if begun is not None:
                busy += event.cycle - begun
            registry.counter("loads.completed").inc()
        elif isinstance(event, LoadFailed):
            begun = starts.pop(event.container_index, None)
            if begun is not None:
                busy += event.cycle - begun
            registry.counter("loads.failed").inc()
        elif isinstance(event, SIUpgrade):
            if not event.software and event.si_name not in first_hw:
                first_hw[event.si_name] = event.cycle
        elif isinstance(event, HotSpotSwitch):
            registry.counter("hot_spots.switches").inc()
    registry.gauge("bus.busy_cycles").set(busy)
    registry.gauge("bus.busy_fraction").set(
        busy / total_cycles if total_cycles else 0.0
    )
    for si_name, cycle in sorted(first_hw.items()):
        registry.gauge(f"si.first_acceleration.{si_name}").set(cycle)
    if first_hw:
        registry.gauge("si.first_acceleration.mean").set(
            sum(first_hw.values()) / len(first_hw)
        )
    return registry
