"""Exporters: render a recorded run as JSON, Chrome trace, or text.

Three formats, one source of truth (the typed event list):

* **JSON event log** — a versioned schema
  (:data:`OBS_SCHEMA_VERSION`); round-trips losslessly through
  :func:`events_to_json_dict` / :func:`events_from_json_dict`.  Schema
  bumps are explicit: a log with a different version is rejected, never
  silently reinterpreted.
* **Chrome trace-event format** — loadable in ``chrome://tracing`` or
  Perfetto (https://ui.perfetto.dev).  One duration track per Atom
  Container showing bitstream writes as B/E slices, a scheduler track
  with hot-spot switches and decisions as instant events, and one
  counter track per SI plotting its effective latency over time.
* **Plain-text timeline** — a terminal-friendly chronological summary.

Timestamps are simulated cycles rendered as microseconds (the prototype
runs at 100 MHz, so 1 cycle = 0.01 us; we keep 1 cycle = 1 us for
readability — the *shape* of the timeline is what matters).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ObservabilityError
from .events import (
    AcRetired,
    BreakerTransition,
    CellQuarantined,
    CellResumed,
    CellRetry,
    ContainerDead,
    DegradedEnter,
    DegradedExit,
    DegradedServed,
    Eviction,
    HotSpotSwitch,
    LoadAbandoned,
    LoadComplete,
    LoadFailed,
    LoadRetry,
    LoadStart,
    PrefetchHit,
    PrefetchIssued,
    PrefetchWasted,
    RequestAdmitted,
    RequestCompleted,
    RequestPreempted,
    RequestShed,
    RunEnd,
    RunStart,
    SchedulerDecision,
    ServiceRecovered,
    SIUpgrade,
    SnapshotWritten,
    TenantDrained,
    TenantJoined,
    TraceEvent,
    event_from_json_dict,
)

__all__ = [
    "OBS_SCHEMA",
    "OBS_SCHEMA_VERSION",
    "TRACE_FORMATS",
    "events_to_json_dict",
    "events_from_json_dict",
    "write_event_log",
    "read_event_log",
    "to_chrome_trace",
    "validate_chrome_trace",
    "to_summary_text",
    "export_events",
]

#: Identifier of the event-log format.
OBS_SCHEMA = "repro.obs/event-log"

#: Version of the event-log schema.  Bump this (and extend the golden
#: test) whenever an event gains/loses fields or a kind is renamed —
#: readers reject logs whose version they do not know.
#: v2: sweep-supervisor events (cell_retry / cell_quarantined /
#: cell_resumed).
#: v3: multi-tenant service events (request_admitted / request_shed /
#: request_preempted / request_completed / degraded_served /
#: breaker_transition).
#: v4: cross-hot-spot prefetch events (prefetch_issued / prefetch_hit /
#: prefetch_wasted) and the ``speculative`` flag on load_start.
#: v5: crash-recovery and live-reconfiguration events
#: (snapshot_written / service_recovered / tenant_joined /
#: tenant_drained / ac_retired).
OBS_SCHEMA_VERSION = 5

#: The formats :func:`export_events` (and the CLI) understand.
TRACE_FORMATS = ("json", "chrome", "summary")


# -- JSON event log ------------------------------------------------------------


def events_to_json_dict(events: Sequence[TraceEvent]) -> Dict[str, Any]:
    """The versioned plain-JSON envelope of an event list."""
    return {
        "schema": OBS_SCHEMA,
        "schema_version": OBS_SCHEMA_VERSION,
        "num_events": len(events),
        "events": [event.to_json_dict() for event in events],
    }


def events_from_json_dict(data: Mapping[str, Any]) -> List[TraceEvent]:
    """Parse a :func:`events_to_json_dict` envelope back to typed events.

    Raises
    ------
    ObservabilityError
        When the envelope is not an event log, carries an unknown schema
        version, or contains malformed events.
    """
    if not isinstance(data, Mapping) or data.get("schema") != OBS_SCHEMA:
        raise ObservabilityError(
            f"not a {OBS_SCHEMA} document: schema="
            f"{data.get('schema') if isinstance(data, Mapping) else data!r}"
        )
    version = data.get("schema_version")
    if version != OBS_SCHEMA_VERSION:
        raise ObservabilityError(
            f"unsupported event-log schema version {version!r}; this "
            f"reader understands version {OBS_SCHEMA_VERSION} only — "
            f"schema bumps are explicit, re-record the trace"
        )
    raw_events = data.get("events")
    if not isinstance(raw_events, list):
        raise ObservabilityError("event log carries no 'events' list")
    return [event_from_json_dict(raw) for raw in raw_events]


def write_event_log(
    events: Sequence[TraceEvent], path: Union[str, Path]
) -> Path:
    """Write the JSON event log to ``path``; wraps I/O failures."""
    return _write_text(
        path, json.dumps(events_to_json_dict(events), indent=1, sort_keys=True)
    )


def read_event_log(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a JSON event log written by :func:`write_event_log`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ObservabilityError(
            f"cannot read event log {str(path)!r}: {exc}"
        ) from exc
    except ValueError as exc:
        raise ObservabilityError(
            f"event log {str(path)!r} is not valid JSON: {exc}"
        ) from exc
    return events_from_json_dict(data)


def _write_text(path: Union[str, Path], text: str) -> Path:
    path = Path(path)
    try:
        path.write_text(text + "\n", encoding="utf-8")
    except OSError as exc:
        raise ObservabilityError(
            f"cannot write trace to {str(path)!r}: {exc}"
        ) from exc
    return path


# -- Chrome trace-event format -------------------------------------------------

_PID = 1
_SCHED_TID = 0


def _ac_tid(container_index: int) -> int:
    return container_index + 1


def to_chrome_trace(events: Sequence[TraceEvent]) -> Dict[str, Any]:
    """Render events in the Chrome trace-event (JSON object) format.

    Track layout: tid 0 is the scheduler track (hot-spot switches and
    scheduler decisions as instant events), tid ``i + 1`` is Atom
    Container ``i`` (every bitstream write as one B/E slice — completed,
    failed and run-truncated loads alike, the latter closed at run end
    and tagged ``truncated``).  SI latencies are emitted as counter
    events, which Perfetto plots as step lines — Figure 8's latency
    timeline, straight from the trace.

    Timestamps within one track are kept *strictly* increasing (the
    trace-event spec's nesting rules): same-cycle neighbours on a track
    are offset by a sub-cycle epsilon, which is invisible at cycle
    resolution but keeps every viewer and validator happy.
    """
    trace_events: List[Dict[str, Any]] = []
    acs_seen: List[int] = []
    open_loads: Dict[int, LoadStart] = {}
    last_ts: Dict[Tuple[int, int], float] = {}
    run_end_cycle: Optional[int] = None

    def stamp(tid: int, cycle: int) -> float:
        """Strictly-increasing timestamp for ``cycle`` on track ``tid``."""
        ts = float(cycle)
        previous = last_ts.get((_PID, tid))
        if previous is not None and ts <= previous:
            ts = previous + 1e-3
        last_ts[(_PID, tid)] = ts
        return ts

    def emit(record: Dict[str, Any]) -> None:
        trace_events.append(record)

    def begin_load(event: LoadStart) -> None:
        tid = _ac_tid(event.container_index)
        if event.container_index not in acs_seen:
            acs_seen.append(event.container_index)
        open_loads[event.container_index] = event
        emit(
            {
                "name": f"load {event.atom_type}",
                "ph": "B",
                "pid": _PID,
                "tid": tid,
                "ts": stamp(tid, event.cycle),
                "args": {
                    "atom": event.atom_type,
                    "attempt": event.attempt,
                    "speculative": event.speculative,
                },
            }
        )

    def end_load(
        container_index: int, cycle: int, args: Dict[str, Any]
    ) -> None:
        started = open_loads.pop(container_index, None)
        if started is None:
            return
        tid = _ac_tid(container_index)
        emit(
            {
                "name": f"load {started.atom_type}",
                "ph": "E",
                "pid": _PID,
                "tid": tid,
                "ts": stamp(tid, cycle),
                "args": args,
            }
        )

    for event in events:
        if isinstance(event, RunEnd):
            run_end_cycle = event.cycle
        if isinstance(event, LoadStart):
            begin_load(event)
        elif isinstance(event, LoadComplete):
            end_load(event.container_index, event.cycle, {"outcome": "ok"})
        elif isinstance(event, LoadFailed):
            end_load(
                event.container_index,
                event.cycle,
                {"outcome": "failed", "fault": event.fault},
            )
        elif isinstance(event, HotSpotSwitch):
            emit(
                {
                    "name": f"hot spot {event.hot_spot}",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": _SCHED_TID,
                    "ts": stamp(_SCHED_TID, event.cycle),
                    "args": {
                        "frame": event.frame_index,
                        "trace": event.trace_index,
                    },
                }
            )
        elif isinstance(event, SchedulerDecision):
            emit(
                {
                    "name": f"{event.scheduler} decision",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": _SCHED_TID,
                    "ts": stamp(_SCHED_TID, event.cycle),
                    "args": {
                        "hot_spot": event.hot_spot,
                        "loads": len(event.atom_sequence),
                        "steps": [
                            {
                                "si": s.si_name,
                                "molecule": s.molecule,
                                "benefit_num": s.benefit_num,
                                "benefit_den": s.benefit_den,
                            }
                            for s in event.steps
                        ],
                    },
                }
            )
        elif isinstance(event, LoadRetry):
            emit(
                {
                    "name": f"retry {event.atom_type}",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": _SCHED_TID,
                    "ts": stamp(_SCHED_TID, event.cycle),
                    "args": {
                        "attempt": event.attempt,
                        "backoff": event.backoff,
                    },
                }
            )
        elif isinstance(event, ContainerDead):
            emit(
                {
                    "name": f"AC{event.container_index} dead",
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": _SCHED_TID,
                    "ts": stamp(_SCHED_TID, event.cycle),
                    "args": {"container": event.container_index},
                }
            )
        elif isinstance(event, SIUpgrade):
            emit(
                {
                    "name": f"latency {event.si_name}",
                    "ph": "C",
                    "pid": _PID,
                    "tid": _SCHED_TID,
                    "ts": float(event.cycle),
                    "args": {"cycles": event.latency},
                }
            )
        elif isinstance(event, (CellRetry, CellQuarantined, CellResumed)):
            # Supervisor events carry no simulated clock (cycle 0); show
            # them as instants on the scheduler track so a chaos run's
            # harness activity is visible next to the run it wraps.
            if isinstance(event, CellRetry):
                name = f"cell retry {event.label}"
                args: Dict[str, Any] = {
                    "attempt": event.attempt,
                    "failure": event.failure,
                    "backoff_ms": event.backoff_ms,
                }
            elif isinstance(event, CellQuarantined):
                name = f"cell quarantined {event.label}"
                args = {
                    "attempts": event.attempts,
                    "failure": event.failure,
                }
            else:
                name = f"cell resumed {event.label}"
                args = {"source": event.source}
            emit(
                {
                    "name": name,
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": _SCHED_TID,
                    "ts": stamp(_SCHED_TID, event.cycle),
                    "args": args,
                }
            )
        elif isinstance(
            event, (PrefetchIssued, PrefetchHit, PrefetchWasted)
        ):
            # Prefetch events are scheduler-level speculation decisions;
            # they render as instants on the scheduler track so the
            # speculate/consume story reads next to the decisions.
            if isinstance(event, PrefetchIssued):
                name = f"prefetch {event.atom_type}"
                args = {
                    "hot_spot": event.hot_spot,
                    "predicted": event.predicted_hot_spot,
                    "confidence": event.confidence,
                }
            elif isinstance(event, PrefetchHit):
                name = f"prefetch hit {event.atom_type}"
                args = {"hot_spot": event.hot_spot}
            else:
                name = f"prefetch wasted {event.atom_type}"
                args = {"reason": event.reason}
            emit(
                {
                    "name": name,
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": _SCHED_TID,
                    "ts": stamp(_SCHED_TID, event.cycle),
                    "args": args,
                }
            )
        elif isinstance(
            event,
            (
                RequestAdmitted,
                RequestShed,
                RequestPreempted,
                RequestCompleted,
                DegradedServed,
                BreakerTransition,
                SnapshotWritten,
                ServiceRecovered,
                TenantJoined,
                TenantDrained,
                AcRetired,
            ),
        ):
            # Service events live on the arbiter's virtual-tick clock;
            # like supervisor events they render as instants on the
            # scheduler track so a soak's admission story reads inline.
            if isinstance(event, RequestAdmitted):
                name = f"admit {event.tenant}/{event.request_id}"
                args = {
                    "hot_spot": event.hot_spot,
                    "deadline": event.deadline,
                    "lease_acs": event.lease_acs,
                }
            elif isinstance(event, RequestShed):
                name = f"shed {event.tenant}/{event.request_id}"
                args = {"reason": event.reason}
            elif isinstance(event, RequestPreempted):
                name = f"preempt {event.tenant}/{event.request_id}"
                args = {
                    "reason": event.reason,
                    "preemptions": event.preemptions,
                    "backoff": event.backoff,
                }
            elif isinstance(event, RequestCompleted):
                name = f"complete {event.tenant}/{event.request_id}"
                args = {
                    "latency": event.latency,
                    "degraded": event.degraded,
                    "cache_hit": event.cache_hit,
                }
            elif isinstance(event, DegradedServed):
                name = f"degraded {event.tenant}/{event.request_id}"
                args = {"reason": event.reason}
            elif isinstance(event, SnapshotWritten):
                name = f"snapshot @{event.tick}"
                args = {
                    "path": event.path,
                    "journal_offset": event.journal_offset,
                }
            elif isinstance(event, ServiceRecovered):
                name = f"recovered ({event.source})"
                args = {
                    "resume_tick": event.resume_tick,
                    "tail_lines": event.tail_lines,
                }
            elif isinstance(event, TenantJoined):
                name = f"join {event.tenant}"
                args = {
                    "priority": event.priority,
                    "lease_acs": event.lease_acs,
                }
            elif isinstance(event, TenantDrained):
                name = f"drained {event.tenant}"
                args = {"completed": event.completed}
            elif isinstance(event, AcRetired):
                name = f"retire AC{event.index}"
                args = {"usable_acs": event.usable_acs}
            else:
                name = f"breaker {event.state}"
                args = {"faults": event.faults}
            emit(
                {
                    "name": name,
                    "ph": "i",
                    "s": "t",
                    "pid": _PID,
                    "tid": _SCHED_TID,
                    "ts": stamp(_SCHED_TID, event.cycle),
                    "args": args,
                }
            )

    # Close loads the run truncated (port still busy at the last trace's
    # end) so every B has its E.
    final = run_end_cycle
    if final is None:
        final = max((e.cycle for e in events), default=0)
    for container_index in sorted(open_loads):
        end_load(container_index, final, {"outcome": "truncated"})

    metadata: List[Dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _SCHED_TID,
            "args": {"name": "scheduler"},
        }
    ]
    for container_index in sorted(acs_seen):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": _ac_tid(container_index),
                "args": {"name": f"AC{container_index}"},
            }
        )
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "clock": "cycles"},
    }


def validate_chrome_trace(trace: Mapping[str, Any]) -> None:
    """Check a Chrome trace against the spec's structural rules.

    Asserted properties: every record has ``ph``/``pid``/``tid``/``ts``
    (metadata aside), timestamps are strictly increasing per track for
    duration/instant events, and B/E events on each track pair up (equal
    names, no E without a B, nothing left open).

    Raises
    ------
    ObservabilityError
        On the first violation.
    """
    records = trace.get("traceEvents")
    if not isinstance(records, list):
        raise ObservabilityError("chrome trace has no traceEvents list")
    last_ts: Dict[Tuple[int, int], float] = {}
    stacks: Dict[Tuple[int, int], List[str]] = {}
    for record in records:
        ph = record.get("ph")
        if ph == "M":
            continue
        for key in ("pid", "tid", "ts", "name"):
            if key not in record:
                raise ObservabilityError(
                    f"trace record missing {key!r}: {record!r}"
                )
        track = (record["pid"], record["tid"])
        ts = float(record["ts"])
        if ph in ("B", "E", "i", "I"):
            previous = last_ts.get(track)
            if previous is not None and ts <= previous:
                raise ObservabilityError(
                    f"timestamp {ts} on track {track} is not strictly "
                    f"increasing (previous {previous}): {record!r}"
                )
            last_ts[track] = ts
        if ph == "B":
            stacks.setdefault(track, []).append(record["name"])
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                raise ObservabilityError(
                    f"E without matching B on track {track}: {record!r}"
                )
            begun = stack.pop()
            if begun != record["name"]:
                raise ObservabilityError(
                    f"mismatched B/E pair on track {track}: opened "
                    f"{begun!r}, closed {record['name']!r}"
                )
    for track, stack in stacks.items():
        if stack:
            raise ObservabilityError(
                f"unclosed B events on track {track}: {stack!r}"
            )


# -- plain-text timeline -------------------------------------------------------


def to_summary_text(events: Sequence[TraceEvent]) -> str:
    """A chronological, human-readable timeline of the recorded run."""
    lines: List[str] = []
    loads = completions = upgrades = 0
    for event in events:
        prefix = f"{event.cycle:>12,}  "
        if isinstance(event, RunStart):
            lines.append(
                prefix
                + f"run start: {event.system}/{event.scheduler} @ "
                f"{event.num_acs} ACs, workload {event.workload_name}"
            )
        elif isinstance(event, HotSpotSwitch):
            lines.append(
                prefix
                + f"hot spot {event.hot_spot} (frame {event.frame_index})"
            )
        elif isinstance(event, SchedulerDecision):
            lines.append(
                prefix
                + f"{event.scheduler} schedules "
                f"{len(event.atom_sequence)} loads, "
                f"{len(event.steps)} upgrade steps"
            )
        elif isinstance(event, LoadStart):
            loads += 1
            attempt = f" (retry {event.attempt})" if event.attempt else ""
            lines.append(
                prefix
                + f"load {event.atom_type} -> AC{event.container_index}"
                + attempt
            )
        elif isinstance(event, LoadComplete):
            completions += 1
            lines.append(
                prefix
                + f"done {event.atom_type} @ AC{event.container_index}"
            )
        elif isinstance(event, LoadFailed):
            lines.append(
                prefix
                + f"FAIL {event.atom_type} @ AC{event.container_index} "
                f"({event.fault})"
            )
        elif isinstance(event, LoadRetry):
            lines.append(
                prefix
                + f"retry {event.atom_type} (attempt {event.attempt}, "
                f"backoff {event.backoff})"
            )
        elif isinstance(event, LoadAbandoned):
            lines.append(
                prefix + f"abandoned {event.atom_type} ({event.reason})"
            )
        elif isinstance(event, ContainerDead):
            lines.append(
                prefix + f"AC{event.container_index} permanently dead"
            )
        elif isinstance(event, Eviction):
            lines.append(
                prefix
                + f"evict {event.atom_type} from AC{event.container_index}"
            )
        elif isinstance(event, SIUpgrade):
            upgrades += 1
            how = "software" if event.software else event.molecule
            lines.append(
                prefix
                + f"{event.si_name} -> {how} ({event.latency} cyc/exec)"
            )
        elif isinstance(event, DegradedEnter):
            lines.append(prefix + "degraded mode entered")
        elif isinstance(event, DegradedExit):
            lines.append(prefix + "degraded mode left")
        elif isinstance(event, CellRetry):
            lines.append(
                prefix
                + f"cell {event.label} retry (attempt {event.attempt}, "
                f"{event.failure}, backoff {event.backoff_ms} ms)"
            )
        elif isinstance(event, CellQuarantined):
            lines.append(
                prefix
                + f"cell {event.label} QUARANTINED after "
                f"{event.attempts} attempts ({event.failure})"
            )
        elif isinstance(event, CellResumed):
            lines.append(
                prefix + f"cell {event.label} resumed from {event.source}"
            )
        elif isinstance(event, PrefetchIssued):
            lines.append(
                prefix
                + f"prefetch {event.atom_type} for "
                f"{event.predicted_hot_spot} (in {event.hot_spot}, "
                f"confidence {event.confidence:.2f})"
            )
        elif isinstance(event, PrefetchHit):
            lines.append(
                prefix
                + f"prefetch hit {event.atom_type} ({event.hot_spot})"
            )
        elif isinstance(event, PrefetchWasted):
            lines.append(
                prefix
                + f"prefetch wasted {event.atom_type} ({event.reason})"
            )
        elif isinstance(event, RequestAdmitted):
            lines.append(
                prefix
                + f"admit {event.tenant}/{event.request_id} "
                f"({event.hot_spot}, {event.lease_acs} ACs, "
                f"deadline {event.deadline})"
            )
        elif isinstance(event, RequestShed):
            lines.append(
                prefix
                + f"SHED {event.tenant}/{event.request_id} "
                f"({event.reason})"
            )
        elif isinstance(event, RequestPreempted):
            lines.append(
                prefix
                + f"preempt {event.tenant}/{event.request_id} "
                f"({event.reason}, #{event.preemptions}, "
                f"backoff {event.backoff})"
            )
        elif isinstance(event, RequestCompleted):
            how = "degraded" if event.degraded else "fabric"
            if event.cache_hit:
                how += ", cached"
            lines.append(
                prefix
                + f"complete {event.tenant}/{event.request_id} "
                f"({how}, latency {event.latency})"
            )
        elif isinstance(event, DegradedServed):
            lines.append(
                prefix
                + f"degraded answer {event.tenant}/{event.request_id} "
                f"({event.reason})"
            )
        elif isinstance(event, BreakerTransition):
            lines.append(
                prefix
                + f"breaker -> {event.state} ({event.faults} faults "
                f"in window)"
            )
        elif isinstance(event, SnapshotWritten):
            lines.append(
                prefix
                + f"snapshot @{event.tick} "
                f"(journal offset {event.journal_offset})"
            )
        elif isinstance(event, ServiceRecovered):
            lines.append(
                prefix
                + f"RECOVERED from {event.source} at tick "
                f"{event.resume_tick} ({event.tail_lines} tail lines "
                f"verified)"
            )
        elif isinstance(event, TenantJoined):
            lines.append(
                prefix
                + f"tenant join {event.tenant} ({event.priority}, "
                f"{event.lease_acs} ACs)"
            )
        elif isinstance(event, TenantDrained):
            lines.append(
                prefix
                + f"tenant drained {event.tenant} "
                f"({event.completed} completed)"
            )
        elif isinstance(event, AcRetired):
            lines.append(
                prefix
                + f"AC{event.index} retired "
                f"({event.usable_acs} ACs usable)"
            )
        elif isinstance(event, RunEnd):
            lines.append(prefix + f"run end: {event.total_cycles:,} cycles")
    lines.append(
        f"-- {len(events)} events: {loads} load starts, "
        f"{completions} completions, {upgrades} SI latency changes"
    )
    return "\n".join(lines)


def export_events(
    events: Sequence[TraceEvent],
    path: Union[str, Path],
    fmt: str = "json",
) -> Path:
    """Write ``events`` to ``path`` in one of :data:`TRACE_FORMATS`."""
    if fmt == "json":
        return write_event_log(events, path)
    if fmt == "chrome":
        return _write_text(
            path, json.dumps(to_chrome_trace(events), indent=1)
        )
    if fmt == "summary":
        return _write_text(path, to_summary_text(events))
    raise ObservabilityError(
        f"unknown trace format {fmt!r}; known: {list(TRACE_FORMATS)}"
    )
