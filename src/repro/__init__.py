"""repro — reproduction of the RISPP run-time Special Instruction Scheduler.

This library reproduces *"Run-time System for an Extensible Embedded
Processor with Dynamic Instruction Set"* (L. Bauer, M. Shafique,
S. Kreutz, J. Henkel; DATE 2008): an embedded processor whose Special
Instructions (SIs) are composed at run time from reconfigurable data
paths (atoms), gradually upgraded through faster and faster molecules,
with the atom loading order decided by a run-time scheduler (FSFR, ASF,
SJF, or the paper's proposed HEF).

Quick start::

    from repro import (
        build_si_library, build_atom_registry, generate_workload,
        RisppSimulator, HEFScheduler,
    )

    registry = build_atom_registry()
    library = build_si_library(registry)
    workload = generate_workload(num_frames=5)
    sim = RisppSimulator(library, registry, HEFScheduler(), num_acs=10)
    result = sim.run(workload)
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from . import calibration
from .errors import (
    RisppError,
    AtomSpaceMismatchError,
    UnknownAtomTypeError,
    UnknownSpecialInstructionError,
    InvalidMoleculeError,
    InvalidScheduleError,
    SelectionError,
    FabricError,
    CapacityError,
    TransientLoadError,
    ContainerFaultError,
    SimulationError,
    TraceError,
    CalibrationError,
)
from .core import (
    AtomSpace,
    Molecule,
    sup,
    inf,
    MoleculeImpl,
    SpecialInstruction,
    SILibrary,
    expand_candidates,
    clean_candidates,
    AtomLoad,
    Schedule,
    validate_schedule,
    MoleculeSelection,
    select_molecules,
    select_molecules_optimal,
    Predictor,
    EwmaPredictor,
    LastValuePredictor,
    SlidingWindowPredictor,
    TrendPredictor,
    predictor_factory,
    ExecutionMonitor,
    RuntimeManager,
    AtomScheduler,
    FSFRScheduler,
    ASFScheduler,
    SJFScheduler,
    HEFScheduler,
    LookaheadScheduler,
    RandomScheduler,
    get_scheduler,
    available_schedulers,
)
from .fabric import (
    AtomType,
    AtomRegistry,
    AtomContainer,
    ContainerState,
    EvictionPolicy,
    LRUEviction,
    FIFOEviction,
    LFUEviction,
    MRUEviction,
    get_eviction_policy,
    Fabric,
    LoadFault,
    FaultModel,
    NoFaults,
    BernoulliLoadFaults,
    ContainerWearFaults,
    RetryPolicy,
    ReconfigPort,
)
from .isa import BaseProcessor
from .h264 import (
    build_atom_registry,
    build_si_library,
    paper_si_label,
    HOT_SPOT_SIS,
    HOT_SPOT_ORDER,
    YuvFrame,
    SyntheticVideo,
    EncoderConfig,
    EncodeResult,
    H264SubsetEncoder,
)
from .hw import (
    HardwareCharacteristics,
    HEFSchedulerCostModel,
    average_atom_characteristics,
)
from .workload import (
    HotSpotTrace,
    Workload,
    H264WorkloadModel,
    generate_workload,
    save_workload,
    load_workload,
)
from .sim import (
    Segment,
    LatencyEvent,
    SimulationResult,
    RisppSimulator,
    MolenSimulator,
    simulate_software,
    bin_executions,
    latency_steps,
    SIBreakdown,
    RunBreakdown,
    analyse_run,
)

__version__ = "1.0.0"

# Imported after __version__: the cache's code-version salt reads it
# from this (then partially initialised) package.
from .exec import (
    WorkloadSpec,
    SweepCell,
    SweepSpec,
    CODE_VERSION_SALT,
    ResultCache,
    CellOutcome,
    SweepReport,
    execute_cell,
    run_sweep,
    default_jobs,
    cache_from_env,
)

__all__ = [
    "calibration",
    # errors
    "RisppError",
    "AtomSpaceMismatchError",
    "UnknownAtomTypeError",
    "UnknownSpecialInstructionError",
    "InvalidMoleculeError",
    "InvalidScheduleError",
    "SelectionError",
    "FabricError",
    "CapacityError",
    "TransientLoadError",
    "ContainerFaultError",
    "SimulationError",
    "TraceError",
    "CalibrationError",
    # core
    "AtomSpace",
    "Molecule",
    "sup",
    "inf",
    "MoleculeImpl",
    "SpecialInstruction",
    "SILibrary",
    "expand_candidates",
    "clean_candidates",
    "AtomLoad",
    "Schedule",
    "validate_schedule",
    "MoleculeSelection",
    "select_molecules",
    "select_molecules_optimal",
    "Predictor",
    "EwmaPredictor",
    "LastValuePredictor",
    "SlidingWindowPredictor",
    "TrendPredictor",
    "predictor_factory",
    "ExecutionMonitor",
    "RuntimeManager",
    "AtomScheduler",
    "FSFRScheduler",
    "ASFScheduler",
    "SJFScheduler",
    "HEFScheduler",
    "LookaheadScheduler",
    "RandomScheduler",
    "get_scheduler",
    "available_schedulers",
    # fabric
    "AtomType",
    "AtomRegistry",
    "AtomContainer",
    "ContainerState",
    "EvictionPolicy",
    "LRUEviction",
    "FIFOEviction",
    "LFUEviction",
    "MRUEviction",
    "get_eviction_policy",
    "Fabric",
    "LoadFault",
    "FaultModel",
    "NoFaults",
    "BernoulliLoadFaults",
    "ContainerWearFaults",
    "RetryPolicy",
    "ReconfigPort",
    # isa
    "BaseProcessor",
    # h264 application
    "build_atom_registry",
    "build_si_library",
    "paper_si_label",
    "HOT_SPOT_SIS",
    "HOT_SPOT_ORDER",
    "YuvFrame",
    "SyntheticVideo",
    "EncoderConfig",
    "EncodeResult",
    "H264SubsetEncoder",
    "HardwareCharacteristics",
    "HEFSchedulerCostModel",
    "average_atom_characteristics",
    # workload
    "HotSpotTrace",
    "Workload",
    "H264WorkloadModel",
    "generate_workload",
    "save_workload",
    "load_workload",
    # sim
    "Segment",
    "LatencyEvent",
    "SimulationResult",
    "RisppSimulator",
    "MolenSimulator",
    "simulate_software",
    "bin_executions",
    "latency_steps",
    "SIBreakdown",
    "RunBreakdown",
    "analyse_run",
    # exec (sweep engine)
    "WorkloadSpec",
    "SweepCell",
    "SweepSpec",
    "CODE_VERSION_SALT",
    "ResultCache",
    "CellOutcome",
    "SweepReport",
    "execute_cell",
    "run_sweep",
    "default_jobs",
    "cache_from_env",
]
