"""Lint configuration: built-in defaults overridden by ``pyproject.toml``.

Every rule reads its options from ``[tool.repro-lint.<RULE-ID>]``.  The
common keys are

``enabled``
    ``false`` switches the rule off entirely.
``include``
    Path globs (POSIX, relative to the source root, e.g.
    ``repro/core/*``) selecting the modules the rule applies to.  A
    ``*`` crosses directory separators, so ``repro/core/*`` covers the
    whole subtree.
``allow``
    Path globs exempt from the rule — the *allowlist*.  An allowlisted
    module is skipped even when ``include`` matches it.  This is the
    sanctioned way to grant exceptions (e.g. the wall-clock sites
    ``repro/exec/runner.py`` and ``repro/obs/metrics.py`` under RL001);
    the entry is reviewable in the diff, unlike an inline pragma.

Rule-specific keys are documented on the rules themselves
(:mod:`repro.lint.rules`, :mod:`repro.lint.schema`).

Parsing uses :mod:`tomllib` (stdlib since Python 3.11).  On older
interpreters the built-in defaults apply unchanged — the defaults and
the committed ``pyproject.toml`` section are kept in sync, so the gate
behaves identically either way.
"""

from __future__ import annotations

from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.9/3.10 fallback
    tomllib = None  # type: ignore[assignment]

from ..errors import RisppError

__all__ = ["LintConfigError", "LintConfig", "path_matches"]


class LintConfigError(RisppError):
    """The ``[tool.repro-lint]`` configuration is malformed."""


#: Built-in per-rule defaults; ``pyproject.toml`` overrides key-by-key.
RULE_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "RL001": {
        "enabled": True,
        "include": ["repro/*"],
        # The only sanctioned wall-clock sites: the sweep runner's
        # per-cell timings, the supervision layer (deadlines and backoff
        # are wall-clock by nature), the chaos harness (hang injection),
        # and the (explicitly non-deterministic) metrics registry.
        "allow": [
            "repro/exec/runner.py",
            "repro/exec/supervise.py",
            "repro/exec/chaos.py",
            "repro/obs/metrics.py",
        ],
    },
    "RL002": {
        "enabled": True,
        "include": ["repro/sim/*", "repro/fabric/*", "repro/core/*"],
        "allow": [],
        # Event-factory methods: they *return* events and are only ever
        # invoked under an ``if tracer.enabled`` guard at the call site.
        "factories": ["_decision_event"],
    },
    "RL003": {
        "enabled": True,
        "include": ["repro/*"],
        "allow": [],
    },
    "RL004": {
        "enabled": True,
        "include": [],
        "allow": [],
        "events": "repro/obs/events.py",
        "export": "repro/obs/export.py",
        "replay": "repro/obs/replay.py",
        "fingerprint": "repro/obs/event_schema.json",
    },
    "RL005": {
        "enabled": True,
        # The vector engine's benefit comparisons must stay as
        # division-free as the schedulers they mirror (the hardware
        # comparator has no divider).
        "include": ["repro/core/schedulers/*", "repro/sim/vector*"],
        "allow": [],
    },
    "RL006": {
        "enabled": True,
        "include": ["repro/*"],
        "allow": [],
    },
    "RL007": {
        "enabled": True,
        # Service and supervisor code runs under virtual clocks and
        # deterministic journals: any stray wall-clock *call* breaks
        # bit-identical reruns.  (RL001 already bans the imports in most
        # of the tree; this rule covers the allowlisted harness modules
        # where ``time`` is importable but must stay behind the seams.)
        "include": ["repro/service/*", "repro/exec/supervise.py"],
        "allow": [],
        # Functions whose bodies *are* the sanctioned wall-clock seams:
        # everything else must call these (or MetricsRegistry.timer())
        # instead of the clock directly.
        "seams": ["_wall_clock"],
    },
    "RL008": {
        "enabled": True,
        # The architecture layering contract.  ``layers`` names ordered
        # path-glob groups (first match wins — keep specific entries
        # like trace/obs_protocol/schedulers above their parent
        # packages); ``imports`` declares which *other* layers each
        # layer may import (same-layer imports are always allowed,
        # ``if TYPE_CHECKING:`` imports are exempt).  The declaration
        # must be a DAG; RL008 verifies that too.
        "layers": {
            # Shared leaves: error taxonomy, paper constants, version.
            "base": [
                "repro/errors.py",
                "repro/calibration.py",
                "repro/_version.py",
                "repro/_atomic.py",
            ],
            # Workload trace *types* sit below both producers (h264)
            # and generators (workload) — that is what keeps the
            # encoder <-> workload relationship acyclic.
            "trace": ["repro/workload/trace.py", "repro/workload/io.py"],
            # The tracer protocol + event dataclasses: the only part of
            # obs the deterministic core may touch.
            "obs_protocol": ["repro/obs/tracer.py", "repro/obs/events.py"],
            "obs": ["repro/obs/*"],
            "schedulers": ["repro/core/schedulers/*"],
            # The core package root re-exports the schedulers, so it
            # sits one layer above the plain core modules.
            "core_api": ["repro/core/__init__.py"],
            # Runtime manager + vectorized scoring consume the
            # scheduler implementations, so they sit above them.
            "core_runtime": [
                "repro/core/runtime.py",
                "repro/core/scoring.py",
            ],
            "core": ["repro/core/*"],
            "fabric": ["repro/fabric/*"],
            "isa": ["repro/isa/*"],
            "h264": ["repro/h264/*"],
            "workload": ["repro/workload/*"],
            "hw": ["repro/hw/*"],
            "sim": ["repro/sim/*"],
            "exec": ["repro/exec/*"],
            "service": ["repro/service/*"],
            "analysis": ["repro/analysis/*"],
            "lint": ["repro/lint/*"],
            "pkg": ["repro/__init__.py"],
            "cli": ["repro/cli.py", "repro/__main__.py"],
        },
        "imports": {
            "base": [],
            "trace": ["base"],
            "obs_protocol": ["base"],
            "obs": ["base", "obs_protocol"],
            "core": ["base"],
            "schedulers": ["base", "core"],
            "core_runtime": ["base", "core", "schedulers"],
            "core_api": ["base", "core", "schedulers", "core_runtime"],
            "fabric": ["base", "core", "obs_protocol"],
            "isa": ["base", "core"],
            "h264": ["base", "core", "fabric", "trace"],
            "workload": ["base", "trace", "h264"],
            "hw": ["base", "core", "schedulers"],
            "sim": [
                "base", "core", "core_runtime", "schedulers", "fabric",
                "isa", "obs_protocol", "trace",
            ],
            "exec": [
                "base", "core", "schedulers", "fabric", "h264",
                "sim", "obs", "obs_protocol", "trace", "workload",
            ],
            "service": [
                "base", "core", "core_runtime", "schedulers", "fabric",
                "h264", "obs", "obs_protocol", "exec", "trace",
                "workload",
            ],
            "analysis": [
                "base", "core", "schedulers", "fabric", "h264", "hw",
                "sim", "exec", "trace", "workload",
            ],
            "lint": ["base"],
            "pkg": [
                "base", "core_api", "fabric", "isa", "h264", "hw",
                "workload", "trace", "sim", "obs", "exec",
            ],
            "cli": [
                "base", "trace", "obs_protocol", "obs", "core",
                "schedulers", "core_api", "core_runtime", "fabric",
                "isa", "h264", "workload", "hw", "sim", "exec",
                "service", "analysis", "lint", "pkg",
            ],
        },
    },
    "RL009": {
        "enabled": True,
        # Modules where taint *reaching a sink* is reported; the taint
        # itself is tracked across the whole program regardless.
        "include": ["repro/*"],
        "allow": [],
        # Call-name patterns that are determinism sinks: result
        # dataclasses, the canonical-JSON chokepoint every journal
        # line / digest / cache key goes through, and raw hashes.
        "sink_calls": [
            "SimulationResult", "Segment", "LatencyEvent",
            "canonical_json", "cell_key", "sha256", "sha1", "md5",
            "blake2b",
        ],
        # Trace-event constructions (classes resolved to an events
        # module) are sinks too: event payloads land in golden logs.
        "sink_events": True,
        # dict iteration is insertion-ordered on every supported
        # interpreter and key order is sanitized by sort_keys at the
        # canonical-JSON chokepoint, so it is not a default source.
        "taint_dict": False,
    },
    "RL010": {
        "enabled": True,
        # The integer-exact zones: scheduler benefit logic, both
        # trace-replay engines, and the service's virtual clock.
        "include": [
            "repro/core/schedulers/*",
            "repro/sim/engine.py",
            "repro/sim/vector.py",
            "repro/service/arbiter.py",
        ],
        "allow": [],
        # Name patterns of integer-exact state: cycle counters,
        # deadline arithmetic, virtual-clock ticks.
        "sink_names": ["*cycle*", "*deadline*", "virtual_now", "*tick*"],
    },
    "RL011": {
        "enabled": True,
        "include": ["repro/*"],
        "allow": [],
        # Symbols that are deliberate public API even when nothing in
        # the repository references them yet.
        "allow_names": [],
        # Reference roots beyond src/ (relative to the repository
        # root): anything mentioned here keeps a symbol alive.
        "roots": ["tests", "benchmarks", "examples", "tools"],
    },
}


def path_matches(relpath: str, patterns: Iterable[str]) -> bool:
    """Whether a POSIX relpath matches any glob (``*`` crosses ``/``)."""
    return any(fnmatch(relpath, pattern) for pattern in patterns)


class LintConfig:
    """Effective options of every rule after applying overrides."""

    def __init__(
        self, overrides: Optional[Mapping[str, Any]] = None
    ) -> None:
        self._rules: Dict[str, Dict[str, Any]] = {
            rule_id: dict(options)
            for rule_id, options in RULE_DEFAULTS.items()
        }
        if overrides:
            self._apply(overrides)

    def _apply(self, overrides: Mapping[str, Any]) -> None:
        for rule_id, options in overrides.items():
            if rule_id not in self._rules:
                raise LintConfigError(
                    f"[tool.repro-lint] configures unknown rule "
                    f"{rule_id!r}; known: {sorted(self._rules)}"
                )
            if not isinstance(options, Mapping):
                raise LintConfigError(
                    f"[tool.repro-lint.{rule_id}] must be a table, got "
                    f"{type(options).__name__}"
                )
            known = self._rules[rule_id]
            for key, value in options.items():
                if key not in known:
                    raise LintConfigError(
                        f"[tool.repro-lint.{rule_id}] has unknown key "
                        f"{key!r}; known: {sorted(known)}"
                    )
                known[key] = value

    @classmethod
    def load(cls, pyproject: Optional[Path] = None) -> "LintConfig":
        """Config from a ``pyproject.toml`` (defaults when unreadable).

        A missing file or a missing ``[tool.repro-lint]`` table yields
        the defaults; a *malformed* table raises
        :class:`LintConfigError` (a broken gate must not silently pass).
        """
        if pyproject is None or tomllib is None:
            return cls()
        try:
            data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        except OSError:
            return cls()
        except tomllib.TOMLDecodeError as exc:
            raise LintConfigError(
                f"cannot parse {str(pyproject)!r}: {exc}"
            ) from exc
        section = data.get("tool", {}).get("repro-lint", {})
        if not isinstance(section, Mapping):
            raise LintConfigError("[tool.repro-lint] must be a table")
        return cls(section)

    def rule(self, rule_id: str) -> Dict[str, Any]:
        """The effective options of ``rule_id``."""
        return self._rules[rule_id]

    def enabled(self, rule_id: str) -> bool:
        return bool(self._rules[rule_id].get("enabled", True))

    def in_scope(self, rule_id: str, relpath: str) -> bool:
        """Whether a module is covered: included and not allowlisted."""
        options = self._rules[rule_id]
        return path_matches(
            relpath, options.get("include", [])
        ) and not path_matches(relpath, options.get("allow", []))
