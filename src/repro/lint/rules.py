"""The per-module lint rules: RL001, RL002, RL003, RL005, RL006, RL007.

Each rule is a small AST pass registered under its ID.  Rules receive a
parsed :class:`Module` plus their effective options
(:mod:`repro.lint.config`) and yield :class:`~repro.lint.findings.Finding`
objects.  The cross-file schema rule RL004 lives in
:mod:`repro.lint.schema` because it reasons about three modules and a
committed fingerprint at once.

The rule set encodes this repository's hard contracts:

* **RL001 — determinism.**  Simulation code must be a pure function of
  its inputs: no wall clock (``time``/``datetime`` imports), no entropy
  (``os.urandom``, ``random.SystemRandom``, unseeded ``random``).  The
  content-addressed result cache and every golden/bit-identity test rely
  on this.
* **RL002 — tracer guards.**  Observability is zero-overhead by
  contract: every ``tracer.emit`` and every trace-event construction in
  engine/scheduler/fabric code must sit under an ``if tracer.enabled``
  guard so untraced runs construct no event objects and stay
  bit-identical.
* **RL003 — hygiene.**  Mutable default arguments, and mutation of
  frozen-dataclass state (direct ``self.x = ...`` raises at run time;
  ``object.__setattr__`` outside ``__post_init__`` silently defeats
  immutability).
* **RL005 — division-free HEF.**  The paper's hardware comparator has no
  divider (Section 5): scheduler benefit comparisons are decided by
  cross-multiplication, so ``/`` must not appear in scheduler code.
* **RL006 — no swallowed exceptions.**  Bare ``except:`` catches
  ``KeyboardInterrupt``/``SystemExit`` and hides everything; an
  ``except`` whose body is only ``pass``/``...`` silently discards the
  failure.  A robustness layer built on failure *classification*
  (timeouts vs crashes vs poison cells) cannot afford either — suppress
  narrowly and visibly with ``contextlib.suppress`` instead.
* **RL007 — wall-clock seams.**  Service and supervisor code runs under
  virtual clocks and deterministic journals, yet lives in modules where
  RL001 allowlists the ``time`` import (deadlines and backoff sleeps are
  wall-clock by nature).  This rule closes the gap: ``time.time()``,
  ``time.monotonic()`` and argless ``datetime.now()`` may only be
  *called* inside the configured seam functions (``seams`` option) —
  everything else reads the clock through a seam or
  ``MetricsRegistry.timer()``, keeping bit-identical reruns possible.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Set, Union

from .findings import Finding

__all__ = ["Module", "Rule", "RULES", "register_rule", "parse_module"]


@dataclass
class Module:
    """One parsed source module handed to the rules."""

    relpath: str
    tree: ast.Module
    #: child -> parent links for guard/ancestor queries.
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current: Optional[ast.AST] = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_functions(self, node: ast.AST) -> List[str]:
        """Names of the functions enclosing ``node``, innermost first."""
        return [
            ancestor.name
            for ancestor in self.ancestors(node)
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
        ]


def parse_module(source: str, relpath: str) -> Module:
    """Parse ``source`` and build the parent map the rules need."""
    tree = ast.parse(source, filename=relpath)
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return Module(relpath=relpath, tree=tree, parents=parents)


class Rule:
    """Base of all per-module rules."""

    rule_id: str = ""
    title: str = ""

    def check(
        self, module: Module, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: Module, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: Rule registry: ID -> rule instance (RL004 registers from schema.py).
RULES: Dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to :data:`RULES` (unique by ID)."""
    rule = cls()
    if not rule.rule_id or rule.rule_id in RULES:
        raise ValueError(
            f"rule {cls.__name__} has a missing or duplicate id "
            f"{rule.rule_id!r}"
        )
    RULES[rule.rule_id] = rule
    return cls


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted-name rendering of an expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{_dotted(node.value)}.{node.attr}"
    return ""


# -- RL001: determinism --------------------------------------------------------


@register_rule
class DeterminismRule(Rule):
    """No wall clock and no unseeded entropy in simulation code."""

    rule_id = "RL001"
    title = "determinism"

    _BANNED_MODULES = ("time", "datetime")

    def check(
        self, module: Module, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        #: local aliases of random.Random / random.SystemRandom.
        random_aliases: Set[str] = set()
        system_aliases: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                yield from self._check_import(module, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(
                    module, node, random_aliases, system_aliases
                )
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    module, node, random_aliases, system_aliases
                )

    def _check_import(
        self, module: Module, node: ast.Import
    ) -> Iterator[Finding]:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in self._BANNED_MODULES:
                yield self.finding(
                    module,
                    node,
                    f"deterministic code imports the wall-clock module "
                    f"{root!r}; only the allowlisted sites "
                    f"([tool.repro-lint.RL001] allow) may read wall time",
                )

    def _check_import_from(
        self,
        module: Module,
        node: ast.ImportFrom,
        random_aliases: Set[str],
        system_aliases: Set[str],
    ) -> Iterator[Finding]:
        if node.module is None:
            return
        root = node.module.split(".")[0]
        if root in self._BANNED_MODULES and node.level == 0:
            yield self.finding(
                module,
                node,
                f"deterministic code imports from the wall-clock module "
                f"{node.module!r}",
            )
            return
        if node.module == "random" and node.level == 0:
            for alias in node.names:
                target = alias.asname or alias.name
                if alias.name == "Random":
                    random_aliases.add(target)
                elif alias.name == "SystemRandom":
                    system_aliases.add(target)
                    yield self.finding(
                        module,
                        node,
                        "random.SystemRandom draws OS entropy; "
                        "simulations must use seeded random.Random",
                    )
                else:
                    yield self.finding(
                        module,
                        node,
                        f"'from random import {alias.name}' pulls in the "
                        f"shared unseeded generator; construct a seeded "
                        f"random.Random instead",
                    )
        if node.module == "os" and node.level == 0:
            for alias in node.names:
                if alias.name == "urandom":
                    yield self.finding(
                        module,
                        node,
                        "os.urandom is OS entropy; deterministic code "
                        "must derive randomness from an explicit seed",
                    )

    def _check_call(
        self,
        module: Module,
        node: ast.Call,
        random_aliases: Set[str],
        system_aliases: Set[str],
    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = _dotted(func.value)
            if base == "os" and func.attr == "urandom":
                yield self.finding(
                    module,
                    node,
                    "os.urandom() is OS entropy; use a seeded "
                    "random.Random",
                )
            elif base == "random":
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module,
                            node,
                            "random.Random() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                elif func.attr == "SystemRandom":
                    yield self.finding(
                        module,
                        node,
                        "random.SystemRandom draws OS entropy; use a "
                        "seeded random.Random",
                    )
                else:
                    yield self.finding(
                        module,
                        node,
                        f"random.{func.attr}() uses the shared unseeded "
                        f"generator; use a seeded random.Random instance",
                    )
        elif isinstance(func, ast.Name):
            if (
                func.id in random_aliases
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    module,
                    node,
                    f"{func.id}() (random.Random) without a seed is "
                    f"nondeterministic; pass an explicit seed",
                )
            elif func.id in system_aliases:
                yield self.finding(
                    module,
                    node,
                    f"{func.id}() (random.SystemRandom) draws OS entropy",
                )


# -- RL002: tracer guards ------------------------------------------------------


def _test_mentions_enabled(test: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "enabled"
        for sub in ast.walk(test)
    )


def _is_negated_enabled(test: ast.AST) -> bool:
    return isinstance(test, ast.UnaryOp) and isinstance(
        test.op, ast.Not
    ) and _test_mentions_enabled(test.operand)


@register_rule
class TracerGuardRule(Rule):
    """Emit calls and event constructions need an ``enabled`` guard."""

    rule_id = "RL002"
    title = "tracer-guard"

    def check(
        self, module: Module, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        factories = set(options.get("factories", []))
        event_names = self._event_names(module)
        event_modules = self._event_module_aliases(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._instrumentation_label(
                node, event_names, event_modules
            )
            if label is None:
                continue
            if set(module.enclosing_functions(node)) & factories:
                continue  # event factory: guarded at its call sites
            if self._is_returned(module, node):
                continue  # pull-based construction, caller guards
            if not self._guarded(module, node):
                yield self.finding(
                    module,
                    node,
                    f"{label} outside an 'if tracer.enabled' guard; "
                    f"untraced runs must construct no event objects",
                )

    @staticmethod
    def _event_names(module: Module) -> Set[str]:
        """Names imported from an ``…events`` module (trace events)."""
        names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[-1] == "events":
                    for alias in node.names:
                        names.add(alias.asname or alias.name)
        return names

    @staticmethod
    def _event_module_aliases(module: Module) -> Set[str]:
        """Local aliases under which an ``…events`` module is bound."""
        aliases: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[-1] == "events":
                        aliases.add(
                            alias.asname or alias.name.split(".")[0]
                        )
        return aliases

    @staticmethod
    def _instrumentation_label(
        node: ast.Call, event_names: Set[str], event_modules: Set[str]
    ) -> Optional[str]:
        """A description when the call is emit/event work, else None."""
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "emit":
            receiver = _dotted(func.value)
            if "tracer" in receiver.lower():
                return f"'{receiver}.emit(...)'"
        if isinstance(func, ast.Name) and func.id in event_names:
            return f"trace-event construction '{func.id}(...)'"
        if isinstance(func, ast.Attribute):
            base = _dotted(func.value)
            if base in event_modules:
                return f"trace-event construction '{base}.{func.attr}(...)'"
        return None

    def _is_returned(self, module: Module, node: ast.AST) -> bool:
        return any(
            isinstance(ancestor, ast.Return)
            for ancestor in module.ancestors(node)
        )

    def _guarded(self, module: Module, node: ast.AST) -> bool:
        """Whether some enclosing ``if`` tests ``.enabled`` positively."""
        child: ast.AST = node
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.If) and _test_mentions_enabled(
                ancestor.test
            ):
                if _is_negated_enabled(ancestor.test):
                    if child in ancestor.orelse:
                        return True
                elif child in ancestor.body:
                    return True
            child = ancestor
        return False


# -- RL003: hygiene ------------------------------------------------------------


@register_rule
class HygieneRule(Rule):
    """Mutable default arguments and frozen-dataclass mutation."""

    rule_id = "RL003"
    title = "hygiene"

    def check(
        self, module: Module, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        frozen_classes = self._frozen_dataclasses(module)
        for node in ast.walk(module.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                yield from self._check_defaults(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_setattr(module, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                yield from self._check_frozen_assign(
                    module, node, frozen_classes
                )

    @staticmethod
    def _frozen_dataclasses(module: Module) -> Set[ast.ClassDef]:
        found: Set[ast.ClassDef] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                name = _dotted(decorator.func)
                if name.split(".")[-1] != "dataclass":
                    continue
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        found.add(node)
        return found

    def _check_defaults(
        self,
        module: Module,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda],
    ) -> Iterator[Finding]:
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                literal = {
                    ast.List: "[]", ast.Dict: "{}", ast.Set: "{...}",
                }[type(default)]
                yield self.finding(
                    module,
                    default,
                    f"mutable default argument {literal}; defaults are "
                    f"shared across calls — use None plus an in-body "
                    f"fallback",
                )
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
                and not default.args
                and not default.keywords
            ):
                yield self.finding(
                    module,
                    default,
                    f"mutable default argument {default.func.id}(); "
                    f"defaults are shared across calls — use None plus "
                    f"an in-body fallback",
                )

    def _check_setattr(
        self, module: Module, node: ast.Call
    ) -> Iterator[Finding]:
        if _dotted(node.func) != "object.__setattr__":
            return
        functions = module.enclosing_functions(node)
        if functions and functions[0] == "__post_init__":
            return  # the canonical frozen-dataclass initialisation hook
        yield self.finding(
            module,
            node,
            "object.__setattr__ outside __post_init__ defeats frozen-"
            "dataclass immutability",
        )

    def _check_frozen_assign(
        self,
        module: Module,
        node: Union[ast.Assign, ast.AugAssign, ast.AnnAssign],
        frozen_classes: Set[ast.ClassDef],
    ) -> Iterator[Finding]:
        enclosing_class = next(
            (
                ancestor
                for ancestor in module.ancestors(node)
                if isinstance(ancestor, ast.ClassDef)
            ),
            None,
        )
        if enclosing_class not in frozen_classes:
            return
        functions = module.enclosing_functions(node)
        if not functions:
            return  # class-body field declarations
        targets: List[ast.expr] = (
            list(node.targets)
            if isinstance(node, ast.Assign)
            else [node.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield self.finding(
                    module,
                    node,
                    f"assignment to self.{target.attr} inside a frozen "
                    f"dataclass raises FrozenInstanceError at run time",
                )


# -- RL005: division-free HEF comparisons --------------------------------------


@register_rule
class DivisionFreeRule(Rule):
    """Scheduler benefit logic must not divide (paper Section 5)."""

    rule_id = "RL005"
    title = "division-free-hef"

    _MESSAGE = (
        "float division in scheduler benefit logic; the hardware "
        "comparator has no divider — compare benefits by "
        "cross-multiplication ((a*b)*f > (d*e)*c, Fig. 6 / Section 5)"
    )

    def check(
        self, module: Module, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.Div
            ):
                yield self.finding(module, node, self._MESSAGE)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Div
            ):
                yield self.finding(module, node, self._MESSAGE)


# -- RL006: no swallowed exceptions --------------------------------------------


@register_rule
class SwallowedExceptionRule(Rule):
    """Bare ``except:`` and silently swallowed exceptions are banned."""

    rule_id = "RL006"
    title = "no-swallowed-exceptions"

    def check(
        self, module: Module, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' catches KeyboardInterrupt and "
                    "SystemExit too; name the exception types "
                    "(use 'except BaseException:' explicitly if the "
                    "catch-all is genuinely intended)",
                )
                continue
            if self._body_is_silent(node.body):
                caught = _dotted_exception(node.type)
                yield self.finding(
                    module,
                    node,
                    f"'except {caught}: pass' silently swallows the "
                    f"failure; handle it, re-raise, or make the "
                    f"suppression explicit with contextlib.suppress",
                )

    @staticmethod
    def _body_is_silent(body: List[ast.stmt]) -> bool:
        """Whether the handler does nothing observable at all."""
        for statement in body:
            if isinstance(statement, ast.Pass):
                continue
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Constant
            ):
                # A lone docstring/`...` is as silent as `pass`.
                continue
            return False
        return True


# -- RL007: wall-clock seams ---------------------------------------------------


@register_rule
class WallClockSeamRule(Rule):
    """Wall-clock *calls* only inside the sanctioned seam functions.

    Options: ``seams`` — function names whose bodies are the sanctioned
    wall-clock readers; every other call site must go through them (or
    through ``MetricsRegistry.timer()``, which never matches the banned
    names in the first place).
    """

    rule_id = "RL007"
    title = "wall-clock-seam"

    #: Names importable from :mod:`time` that read the wall clock.
    _TIME_FUNCS = ("time", "monotonic")

    def check(
        self, module: Module, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        seams = set(options.get("seams", []))
        time_aliases: Set[str] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "time"
                and node.level == 0
            ):
                for alias in node.names:
                    if alias.name in self._TIME_FUNCS:
                        time_aliases.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._wall_clock_label(node, time_aliases)
            if label is None:
                continue
            if set(module.enclosing_functions(node)) & seams:
                continue  # inside a sanctioned seam function
            yield self.finding(
                module,
                node,
                f"wall-clock call {label} outside the sanctioned seams "
                f"({sorted(seams) if seams else 'none configured'}); "
                f"route it through a seam function or "
                f"MetricsRegistry.timer() so reruns stay deterministic",
            )

    @staticmethod
    def _wall_clock_label(
        node: ast.Call, time_aliases: Set[str]
    ) -> Optional[str]:
        """A description when the call reads the wall clock, else None."""
        func = node.func
        dotted = _dotted(func)
        if dotted in ("time.time", "time.monotonic"):
            return f"{dotted}()"
        if isinstance(func, ast.Name) and func.id in time_aliases:
            return f"{func.id}() (imported from time)"
        if (
            dotted in ("datetime.now", "datetime.datetime.now")
            and not node.args
            and not node.keywords
        ):
            return f"argless {dotted}()"
        return None


def _dotted_exception(node: ast.expr) -> str:
    """Render the caught exception expression for the RL006 message."""
    if isinstance(node, ast.Tuple):
        return (
            "(" + ", ".join(_dotted_exception(e) for e in node.elts) + ")"
        )
    rendered = _dotted(node)
    return rendered if rendered else "..."
