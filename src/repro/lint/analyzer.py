"""Drive the rule registry over source trees and single modules.

:func:`analyze_source` lints one module body under a caller-chosen
relpath — which is also the test seam: fixtures masquerade as e.g.
``repro/sim/fixture.py`` to land in a rule's scope.  :func:`run_analysis`
walks a whole source root, applies every per-module rule to the files in
its scope, runs the project-level rules (RL004), then — when any of
RL008–RL011 is selected — builds the whole-program model
(:mod:`repro.lint.graph`) once and runs the program rules over it.
Findings come back sorted by ``(path, line, col, rule)`` so reports are
stable.

With a :class:`~repro.lint.cache.LintCache` attached, per-module results
are reused for files whose content hash and rule-set fingerprint match,
and the project/program-level results are reused when the *whole tree*
(plus the external reference roots RL011 reads) is unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from .cache import LintCache
from .config import LintConfig
from .findings import Finding
from .graph import build_program
from .rules import RULES, parse_module
from .rules_program import ProgramRule
from .schema import ProjectRule

__all__ = ["analyze_source", "run_analysis", "iter_source_files"]

#: Pseudo-rule ID for files the analyzer cannot parse at all.
PARSE_ERROR_ID = "RL000"


def iter_source_files(src_root: Path) -> Iterator[Tuple[Path, str]]:
    """Yield ``(path, posix_relpath)`` for every module under the root."""
    for path in sorted(src_root.rglob("*.py")):
        yield path, path.relative_to(src_root).as_posix()


def _selected(select: Optional[Iterable[str]]) -> Set[str]:
    if select is None:
        return set(RULES)
    return set(select)


def analyze_source(
    source: str,
    relpath: str,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the in-scope per-module rules over one module body."""
    config = config if config is not None else LintConfig()
    wanted = _selected(select)
    try:
        module = parse_module(source, relpath)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=PARSE_ERROR_ID,
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"cannot parse module: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule_id, rule in RULES.items():
        if rule_id not in wanted or isinstance(rule, ProjectRule):
            continue
        if isinstance(rule, ProgramRule):
            continue
        if not config.enabled(rule_id):
            continue
        if not config.in_scope(rule_id, relpath):
            continue
        findings.extend(rule.check(module, config.rule(rule_id)))
    return sorted(findings, key=Finding.sort_key)


def _external_roots(
    src_root: Path, config: LintConfig, wanted: Set[str]
) -> List[Path]:
    """The extra reference roots the program rules read (RL011)."""
    if "RL011" not in wanted or not config.enabled("RL011"):
        return []
    return [
        src_root.parent / root
        for root in config.rule("RL011").get("roots", [])
    ]


def _extra_tree_files(
    src_root: Path, config: LintConfig, wanted: Set[str]
) -> List[Path]:
    """Non-``src`` files whose content the tree-level results depend on."""
    files: List[Path] = []
    if "RL004" in wanted and config.enabled("RL004"):
        fingerprint = config.rule("RL004").get("fingerprint")
        if fingerprint:
            files.append(src_root / fingerprint)
    for root in _external_roots(src_root, config, wanted):
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
    return files


def _tree_level_findings(
    src_root: Path, config: LintConfig, wanted: Set[str]
) -> List[Finding]:
    """Project rules (RL004) plus whole-program rules (RL008–RL011)."""
    findings: List[Finding] = []
    program = None
    for rule_id, rule in RULES.items():
        if rule_id not in wanted or not config.enabled(rule_id):
            continue
        if isinstance(rule, ProgramRule):
            if program is None:
                program = build_program(src_root)
            findings.extend(
                rule.check_program(program, config.rule(rule_id))
            )
        elif isinstance(rule, ProjectRule):
            findings.extend(
                rule.check_project(src_root, config.rule(rule_id))
            )
    return findings


def run_analysis(
    src_root: Path,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
    cache: Optional[LintCache] = None,
) -> List[Finding]:
    """Lint every module under ``src_root``, plus the tree-level rules."""
    config = config if config is not None else LintConfig()
    wanted = _selected(select)
    findings: List[Finding] = []
    file_hashes: List[Tuple[str, str]] = []
    for path, relpath in iter_source_files(src_root):
        source_bytes = path.read_bytes()
        if cache is not None:
            file_sha = cache.content_sha(source_bytes)
            file_hashes.append((relpath, file_sha))
            cached = cache.get_file(relpath, file_sha)
            if cached is not None:
                findings.extend(cached)
                continue
        file_findings = analyze_source(
            source_bytes.decode("utf-8"),
            relpath,
            config,
            select=wanted,
        )
        findings.extend(file_findings)
        if cache is not None:
            cache.put_file(relpath, file_sha, file_findings)
    if cache is not None:
        extra = _extra_tree_files(src_root, config, wanted)
        tree_key = cache.tree_key(file_hashes, extra)
        cached_tree = cache.get_tree(tree_key)
        if cached_tree is not None:
            findings.extend(cached_tree)
        else:
            tree_findings = _tree_level_findings(
                src_root, config, wanted
            )
            cache.put_tree(tree_key, tree_findings)
            findings.extend(tree_findings)
    else:
        findings.extend(_tree_level_findings(src_root, config, wanted))
    return sorted(findings, key=Finding.sort_key)
