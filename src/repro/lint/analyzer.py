"""Drive the rule registry over source trees and single modules.

:func:`analyze_source` lints one module body under a caller-chosen
relpath — which is also the test seam: fixtures masquerade as e.g.
``repro/sim/fixture.py`` to land in a rule's scope.  :func:`run_analysis`
walks a whole source root, applies every per-module rule to the files in
its scope, then runs the project-level rules (RL004).  Findings come
back sorted by ``(path, line, col, rule)`` so reports are stable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from .config import LintConfig
from .findings import Finding
from .rules import RULES, parse_module
from .schema import ProjectRule

__all__ = ["analyze_source", "run_analysis", "iter_source_files"]

#: Pseudo-rule ID for files the analyzer cannot parse at all.
PARSE_ERROR_ID = "RL000"


def iter_source_files(src_root: Path) -> Iterator[Tuple[Path, str]]:
    """Yield ``(path, posix_relpath)`` for every module under the root."""
    for path in sorted(src_root.rglob("*.py")):
        yield path, path.relative_to(src_root).as_posix()


def _selected(select: Optional[Iterable[str]]) -> Set[str]:
    if select is None:
        return set(RULES)
    return set(select)


def analyze_source(
    source: str,
    relpath: str,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the in-scope per-module rules over one module body."""
    config = config if config is not None else LintConfig()
    wanted = _selected(select)
    try:
        module = parse_module(source, relpath)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=PARSE_ERROR_ID,
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"cannot parse module: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule_id, rule in RULES.items():
        if rule_id not in wanted or isinstance(rule, ProjectRule):
            continue
        if not config.enabled(rule_id):
            continue
        if not config.in_scope(rule_id, relpath):
            continue
        findings.extend(rule.check(module, config.rule(rule_id)))
    return sorted(findings, key=Finding.sort_key)


def run_analysis(
    src_root: Path,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint every module under ``src_root``, plus the project rules."""
    config = config if config is not None else LintConfig()
    wanted = _selected(select)
    findings: List[Finding] = []
    for path, relpath in iter_source_files(src_root):
        findings.extend(
            analyze_source(
                path.read_text(encoding="utf-8"),
                relpath,
                config,
                select=wanted,
            )
        )
    for rule_id, rule in RULES.items():
        if rule_id not in wanted or not isinstance(rule, ProjectRule):
            continue
        if not config.enabled(rule_id):
            continue
        findings.extend(
            rule.check_project(src_root, config.rule(rule_id))
        )
    return sorted(findings, key=Finding.sort_key)
