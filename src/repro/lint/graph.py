"""Project model for the whole-program rules: modules and import graph.

:func:`build_program` parses every module under a source root once and
resolves its ``import``/``from … import`` statements to *project-internal*
module paths, producing a :class:`Program` — the substrate RL008–RL011
and the dataflow core (:mod:`repro.lint.dataflow`) operate on.

Resolution is purely lexical: relative imports are resolved against the
importing module's package path, absolute imports against the set of
modules actually present under the root.  ``from pkg.mod import name``
yields an edge to ``pkg/mod.py`` carrying ``name`` as the imported
symbol; when ``pkg.mod.name`` is itself a module the edge targets that
module instead.  Imports of anything not under the root (stdlib, numpy)
produce no edge.

Imports inside ``if TYPE_CHECKING:`` blocks are recorded with
``type_checking=True``: they are annotation-only coupling that never
executes, so the layering contract (RL008) exempts them while the
symbol table still sees the name binding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from .rules import Module, parse_module

__all__ = [
    "ImportEdge",
    "ProgramModule",
    "Program",
    "build_program",
    "module_dotted_name",
]


def module_dotted_name(relpath: str) -> Tuple[str, bool]:
    """``(dotted_name, is_package)`` for a POSIX source relpath."""
    parts = relpath[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        return ".".join(parts[:-1]), True
    return ".".join(parts), False


@dataclass(frozen=True)
class ImportEdge:
    """One resolved project-internal import."""

    source: str  #: relpath of the importing module
    target: str  #: relpath of the imported module
    symbol: Optional[str]  #: imported name, None for whole-module imports
    #: local name the import binds (alias-aware), None for ``import a.b``.
    bound_name: Optional[str]
    line: int
    col: int
    type_checking: bool


@dataclass
class ProgramModule:
    """One parsed module plus its resolved internal imports."""

    relpath: str
    dotted: str
    is_package: bool
    module: Module
    imports: List[ImportEdge] = field(default_factory=list)


@dataclass
class Program:
    """Every module under one source root, with the import graph."""

    src_root: Path
    modules: Dict[str, ProgramModule]  #: relpath -> module
    #: dotted name -> relpath, for import resolution and lookups.
    by_dotted: Dict[str, str]

    def edges(self) -> Iterator[ImportEdge]:
        for relpath in sorted(self.modules):
            yield from self.modules[relpath].imports

    def module_for_dotted(self, dotted: str) -> Optional[ProgramModule]:
        relpath = self.by_dotted.get(dotted)
        return self.modules[relpath] if relpath is not None else None


def _is_type_checking_test(test: ast.expr) -> bool:
    """Whether an ``if`` test is (typing.)TYPE_CHECKING."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _under_type_checking(module: Module, node: ast.AST) -> bool:
    return any(
        isinstance(ancestor, ast.If)
        and _is_type_checking_test(ancestor.test)
        for ancestor in module.ancestors(node)
    )


def _package_parts(dotted: str, is_package: bool) -> List[str]:
    """The package a module's relative imports are resolved against."""
    parts = dotted.split(".") if dotted else []
    return parts if is_package else parts[:-1]


def _resolve_from(
    dotted: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute dotted base of a ``from … import`` statement."""
    if node.level == 0:
        return node.module
    package = _package_parts(dotted, is_package)
    if node.level - 1 > len(package):
        return None  # escapes the root; nothing internal to resolve
    base = package[: len(package) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


class _ImportCollector:
    """Resolve one module's import statements against the project."""

    def __init__(
        self, program_module: ProgramModule, by_dotted: Dict[str, str]
    ) -> None:
        self.pm = program_module
        self.by_dotted = by_dotted

    def collect(self) -> None:
        module = self.pm.module
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                self._collect_import(module, node)
            elif isinstance(node, ast.ImportFrom):
                self._collect_import_from(module, node)

    def _add(
        self,
        node: ast.stmt,
        target_dotted: str,
        symbol: Optional[str],
        bound_name: Optional[str],
        type_checking: bool,
    ) -> None:
        relpath = self.by_dotted.get(target_dotted)
        if relpath is None:
            return  # external module: no project edge
        self.pm.imports.append(
            ImportEdge(
                source=self.pm.relpath,
                target=relpath,
                symbol=symbol,
                bound_name=bound_name,
                line=node.lineno,
                col=node.col_offset,
                type_checking=type_checking,
            )
        )

    def _collect_import(self, module: Module, node: ast.Import) -> None:
        type_checking = _under_type_checking(module, node)
        for alias in node.names:
            self._add(
                node,
                alias.name,
                None,
                alias.asname or alias.name.split(".")[0],
                type_checking,
            )

    def _collect_import_from(
        self, module: Module, node: ast.ImportFrom
    ) -> None:
        base = _resolve_from(self.pm.dotted, self.pm.is_package, node)
        if base is None:
            return
        type_checking = _under_type_checking(module, node)
        for alias in node.names:
            if alias.name == "*":
                self._add(node, base, "*", None, type_checking)
                continue
            bound = alias.asname or alias.name
            submodule = f"{base}.{alias.name}"
            if submodule in self.by_dotted:
                # ``from pkg import mod`` — the edge is to the module.
                self._add(node, submodule, None, bound, type_checking)
            else:
                self._add(node, base, alias.name, bound, type_checking)


def build_program(src_root: Path) -> Program:
    """Parse every module under ``src_root`` and resolve its imports.

    Unparsable modules are skipped here — the per-module analysis
    already reports them as RL000, and a whole-program pass over a
    broken tree would only duplicate that noise.
    """
    modules: Dict[str, ProgramModule] = {}
    by_dotted: Dict[str, str] = {}
    for path in sorted(src_root.rglob("*.py")):
        relpath = path.relative_to(src_root).as_posix()
        try:
            module = parse_module(
                path.read_text(encoding="utf-8"), relpath
            )
        except (OSError, SyntaxError):
            continue
        dotted, is_package = module_dotted_name(relpath)
        modules[relpath] = ProgramModule(
            relpath=relpath,
            dotted=dotted,
            is_package=is_package,
            module=module,
        )
        by_dotted[dotted] = relpath
    for pm in modules.values():
        _ImportCollector(pm, by_dotted).collect()
    return Program(src_root=src_root, modules=modules, by_dotted=by_dotted)
