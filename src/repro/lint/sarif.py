"""SARIF 2.1.0 rendering of lint findings.

SARIF (Static Analysis Results Interchange Format) is what code-hosting
CI surfaces understand natively: uploading the report annotates the
exact lines in a pull request.  This module maps the linter's model
onto the minimal conformant subset:

* one ``run`` of one ``tool.driver`` (``repro-lint``), with a rule
  descriptor per registered rule (``RLxxx`` id + short title);
* one ``result`` per finding at ``level: error`` — every rule here is a
  hard contract, there are no warnings;
* file URIs relative to the repository root (``src/...``) so the
  annotations line up with the checkout, with 1-based columns as the
  spec requires (findings carry 0-based ones).

The output is deterministic: findings arrive pre-sorted and the dict is
serialized with sorted keys by the CLI.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Sequence

from .._version import __version__
from .findings import Finding
from .rules import RULES

__all__ = ["sarif_report"]

#: The SARIF spec version this module emits.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _rule_descriptors() -> List[Dict[str, Any]]:
    descriptors = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        descriptors.append(
            {
                "id": rule_id,
                "name": getattr(rule, "title", rule_id),
                "shortDescription": {
                    "text": (rule.__doc__ or rule_id).strip().splitlines()[0]
                },
            }
        )
    return descriptors


def _result(finding: Finding, uri_prefix: str) -> Dict[str, Any]:
    return {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f"{uri_prefix}{finding.path}",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def sarif_report(
    findings: Sequence[Finding], src_root: Path
) -> Dict[str, Any]:
    """The findings as one SARIF 2.1.0 document (a plain dict)."""
    # Repo-relative prefix so PR annotations land on ``src/repro/...``;
    # fall back to bare relpaths when the root is not named ``src``.
    uri_prefix = f"{src_root.name}/" if src_root.name else ""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": __version__,
                        "rules": _rule_descriptors(),
                    }
                },
                "results": [
                    _result(finding, uri_prefix) for finding in findings
                ],
            }
        ],
    }
