"""Conservative dataflow core for the whole-program rules.

A deliberately small abstract interpreter over module/function bodies:
values carry a bitmask of flags, statements update a name -> flags
environment, and module-level functions get *call summaries* — "returns
flagged value", "propagates flagged arguments" — that other modules
resolve through the import graph (:mod:`repro.lint.graph`).  The
engine is intraprocedural with summaries: no path sensitivity, no
aliasing, loops approximated by iterating each body to a local fixpoint.

Two semantics plug into the engine:

* :class:`IterationSemantics` (RL009) — ``TAINTED`` marks values whose
  *order* is nondeterministic (iterating a ``set``/``frozenset``,
  ``os.listdir``, unsorted ``glob``); ``UNORDERED`` marks set-valued
  expressions whose iteration produces taint.  ``sorted(...)`` and
  order-insensitive aggregates (``sum``, ``min``, ``max``, ``len``,
  ``any``, ``all``) sanitize.
* :class:`FloatSemantics` (RL010) — ``TAINTED`` marks float-valued
  expressions (float literals, ``float(...)``, true division,
  float-returning ``math.*``); ``int()``, ``round(x)`` and the
  integer-valued ``math`` functions sanitize.

Both are *under*-approximate by design where Python itself guarantees
determinism: dict/``dict.items()`` iteration is insertion-ordered on
every supported interpreter, so it is not a default taint source (the
``taint_dict`` option turns it on for stricter trees).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from .graph import Program, ProgramModule

__all__ = [
    "TAINTED",
    "UNORDERED",
    "Summary",
    "Resolver",
    "Semantics",
    "IterationSemantics",
    "FloatSemantics",
    "DataflowEngine",
]

#: Value flag: the value (or its iteration order) is nondeterministic.
TAINTED = 1
#: Value flag: set-valued — iterating it yields TAINTED elements.
UNORDERED = 2


@dataclass(frozen=True)
class Summary:
    """Call summary of one module-level function."""

    #: flags of the return value with clean arguments.
    returns: int
    #: flags of the return value when every argument is flagged.
    returns_when_args_flagged: int

    def call_flags(self, any_arg_flagged: bool) -> int:
        if any_arg_flagged:
            return self.returns | self.returns_when_args_flagged
        return self.returns


def _dotted(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


class Resolver:
    """Resolve names in one module to project functions/constants."""

    def __init__(self, pm: ProgramModule) -> None:
        #: local name -> (target relpath, symbol name or None=module)
        self.bindings: Dict[str, Tuple[str, Optional[str]]] = {}
        for edge in pm.imports:
            if edge.bound_name is None:
                continue
            self.bindings[edge.bound_name] = (edge.target, edge.symbol)

    def resolve_call(
        self, func: ast.expr
    ) -> Optional[Tuple[str, str]]:
        """``(module relpath, function name)`` for a resolvable callee."""
        if isinstance(func, ast.Name):
            bound = self.bindings.get(func.id)
            if bound is not None and bound[1] is not None:
                return bound[0], bound[1]
            return None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            bound = self.bindings.get(func.value.id)
            if bound is not None and bound[1] is None:
                return bound[0], func.attr
        return None


class Semantics:
    """Flag semantics one rule plugs into the engine."""

    def literal_flags(self, node: ast.Constant) -> int:
        return 0

    def call_flags(
        self,
        node: ast.Call,
        dotted: str,
        arg_flags: int,
        summary_flags: Optional[int],
    ) -> int:
        """Flags of a call result.

        ``dotted`` is the best-effort dotted callee name, ``arg_flags``
        the union of all argument flags, ``summary_flags`` the resolved
        project-function summary result (None when unresolvable).
        """
        raise NotImplementedError

    def binop_flags(self, node: ast.BinOp, flags: int) -> int:
        return flags

    def iteration_flags(self, iter_flags: int) -> int:
        """Flags of a loop/comprehension variable given the iterable's."""
        return TAINTED if iter_flags & TAINTED else 0

    def display_flags(self, node: ast.expr, element_flags: int) -> int:
        """Flags of a list/tuple/set/dict literal."""
        return element_flags & TAINTED


_ORDER_PRESERVING = frozenset(
    ("list", "tuple", "iter", "reversed", "enumerate", "zip", "map",
     "filter", "next")
)
_ORDER_INSENSITIVE = frozenset(
    ("sum", "min", "max", "len", "any", "all", "abs", "bool", "repr",
     "sorted", "isinstance", "hash", "id", "print", "format", "getattr",
     "hasattr", "divmod", "round", "int", "float", "str", "frozenset",
     "set", "dict", "range")
)
_SET_RETURNING_METHODS = frozenset(
    ("union", "intersection", "difference", "symmetric_difference",
     "copy")
)
_UNORDERED_LISTINGS = frozenset(
    ("os.listdir", "os.scandir", "glob.glob", "glob.iglob")
)


class IterationSemantics(Semantics):
    """RL009: nondeterministic-iteration taint."""

    def __init__(self, taint_dict: bool = False) -> None:
        self.taint_dict = taint_dict

    def literal_flags(self, node: ast.Constant) -> int:
        return 0

    def call_flags(
        self,
        node: ast.Call,
        dotted: str,
        arg_flags: int,
        summary_flags: Optional[int],
    ) -> int:
        tail = dotted.rsplit(".", 1)[-1]
        if dotted in _UNORDERED_LISTINGS:
            return TAINTED
        if tail in ("set", "frozenset"):
            return UNORDERED
        if self.taint_dict and tail == "dict":
            return UNORDERED
        if tail in ("sorted",):
            return 0
        if summary_flags is not None:
            return summary_flags
        if tail in _ORDER_PRESERVING or tail == "join":
            # Order-preserving pipelines turn unordered iteration into
            # a nondeterministically-ordered sequence.
            if arg_flags & (TAINTED | UNORDERED):
                return TAINTED
            return 0
        if tail == "pop" and arg_flags & UNORDERED:
            return TAINTED  # set.pop() removes an arbitrary element
        if tail in _SET_RETURNING_METHODS and arg_flags & UNORDERED:
            return UNORDERED
        if tail in _ORDER_INSENSITIVE:
            return 0
        if self.taint_dict and tail in ("keys", "values", "items"):
            return UNORDERED
        # Unknown callee: tainted arguments flow through, but a plain
        # set argument is assumed to be consumed order-insensitively.
        return TAINTED if arg_flags & TAINTED else 0

    def display_flags(self, node: ast.expr, element_flags: int) -> int:
        if isinstance(node, ast.Set):
            return UNORDERED
        if isinstance(node, ast.Dict):
            return UNORDERED if self.taint_dict else 0
        return element_flags & TAINTED

    def iteration_flags(self, iter_flags: int) -> int:
        return TAINTED if iter_flags & (TAINTED | UNORDERED) else 0


#: math functions that return ints (or preserve int-ness) — safe.
_MATH_INT_FUNCS = frozenset(
    ("floor", "ceil", "trunc", "gcd", "lcm", "isqrt", "comb", "perm",
     "factorial")
)
_FLOAT_SANITIZERS = frozenset(
    ("int", "len", "bool", "str", "repr", "hash", "id", "isinstance",
     "range", "ord")
)
_FLOAT_PROPAGATORS = frozenset(
    ("sum", "min", "max", "abs", "sorted", "list", "tuple", "next",
     "divmod", "pow")
)


class FloatSemantics(Semantics):
    """RL010: float contamination of integer-exact state."""

    def literal_flags(self, node: ast.Constant) -> int:
        return TAINTED if isinstance(node.value, float) else 0

    def call_flags(
        self,
        node: ast.Call,
        dotted: str,
        arg_flags: int,
        summary_flags: Optional[int],
    ) -> int:
        tail = dotted.rsplit(".", 1)[-1]
        root = dotted.split(".", 1)[0]
        if tail == "float":
            return TAINTED
        if root == "math":
            return 0 if tail in _MATH_INT_FUNCS else TAINTED
        if root == "statistics":
            return TAINTED
        if tail in _FLOAT_SANITIZERS or tail in _MATH_INT_FUNCS:
            return 0
        if tail == "round":
            # round(x) is an int; round(x, n) keeps the float.
            return TAINTED if len(node.args) > 1 and arg_flags else 0
        if summary_flags is not None:
            return summary_flags
        if tail in _FLOAT_PROPAGATORS:
            return arg_flags & TAINTED
        return arg_flags & TAINTED

    def binop_flags(self, node: ast.BinOp, flags: int) -> int:
        if isinstance(node.op, ast.Div):
            return TAINTED  # true division is float-valued, always
        if isinstance(node.op, (ast.FloorDiv, ast.RShift, ast.LShift,
                                ast.BitAnd, ast.BitOr, ast.BitXor)):
            return 0 if not (flags & TAINTED) else flags
        return flags

    def iteration_flags(self, iter_flags: int) -> int:
        return iter_flags & TAINTED


class Hooks:
    """Sink callbacks a rule receives during the reporting pass."""

    def on_call(
        self,
        pm: ProgramModule,
        node: ast.Call,
        arg_flags_list: List[Tuple[Optional[str], int]],
        resolver: Resolver,
    ) -> None:
        """Called at every call site; arg list is (kwarg name, flags)."""

    def on_assign(
        self,
        pm: ProgramModule,
        node: ast.stmt,
        targets: List[ast.expr],
        value_flags: int,
    ) -> None:
        """Called at every (aug/ann) assignment."""

    def on_return(
        self,
        pm: ProgramModule,
        node: ast.Return,
        function: str,
        value_flags: int,
    ) -> None:
        """Called at every return with a value."""


class DataflowEngine:
    """Summary computation plus a hook-driven reporting pass."""

    #: fixpoint rounds over the whole program (import cycles are rare
    #: and shallow; three rounds reach closure on trees twice this size).
    MAX_ROUNDS = 4

    def __init__(self, program: Program, semantics: Semantics) -> None:
        self.program = program
        self.semantics = semantics
        #: (relpath, function name) -> Summary
        self.summaries: Dict[Tuple[str, str], Summary] = {}
        #: (relpath, constant name) -> flags of module-level bindings
        self.globals: Dict[Tuple[str, str], int] = {}
        self.resolvers: Dict[str, Resolver] = {
            relpath: Resolver(pm)
            for relpath, pm in program.modules.items()
        }

    # -- summary fixpoint --------------------------------------------------

    def compute_summaries(self) -> None:
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for relpath in sorted(self.program.modules):
                if self._summarize_module(relpath):
                    changed = True
            if not changed:
                return

    def _summarize_module(self, relpath: str) -> bool:
        pm = self.program.modules[relpath]
        changed = False
        module_env = self._module_env(pm)
        for name, flags in module_env.items():
            key = (relpath, name)
            if self.globals.get(key, 0) != flags:
                self.globals[key] = flags
                changed = True
        for node in pm.module.tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            clean = self._analyze_function(
                pm, node, param_flags=0, base_env=module_env
            )
            flagged = self._analyze_function(
                pm,
                node,
                param_flags=TAINTED | UNORDERED,
                base_env=module_env,
            )
            summary = Summary(
                returns=clean, returns_when_args_flagged=flagged
            )
            key = (relpath, node.name)
            if self.summaries.get(key) != summary:
                self.summaries[key] = summary
                changed = True
        return changed

    def _module_env(self, pm: ProgramModule) -> Dict[str, int]:
        """Flags of module-level names (imports resolved, body run)."""
        env: Dict[str, int] = {}
        resolver = self.resolvers[pm.relpath]
        for local, (target, symbol) in resolver.bindings.items():
            if symbol is not None:
                flags = self.globals.get((target, symbol))
                if flags:
                    env[local] = flags
        walker = _Walker(self, pm, resolver, hooks=None)
        walker.run_statements(pm.module.tree.body, env, function=None)
        return env

    def _analyze_function(
        self,
        pm: ProgramModule,
        node: ast.AST,
        param_flags: int,
        base_env: Mapping[str, int],
        hooks: Optional[Hooks] = None,
    ) -> int:
        fn = node  # FunctionDef | AsyncFunctionDef
        env: Dict[str, int] = dict(base_env)
        args = fn.args  # type: ignore[attr-defined]
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            env[arg.arg] = param_flags
        if args.vararg is not None:
            env[args.vararg.arg] = param_flags
        if args.kwarg is not None:
            env[args.kwarg.arg] = param_flags
        walker = _Walker(self, pm, self.resolvers[pm.relpath], hooks)
        walker.run_statements(
            fn.body,  # type: ignore[attr-defined]
            env,
            function=fn.name,  # type: ignore[attr-defined]
        )
        return walker.return_flags

    # -- reporting pass ----------------------------------------------------

    def report(
        self,
        hooks: Hooks,
        in_scope: Callable[[str], bool],
    ) -> None:
        """Re-walk in-scope modules with sink hooks enabled.

        Functions are walked with clean parameters — taint must
        *demonstrably* originate somewhere (a source expression or a
        flagged callee), not be assumed of every input.
        """
        for relpath in sorted(self.program.modules):
            if not in_scope(relpath):
                continue
            pm = self.program.modules[relpath]
            module_env = self._module_env(pm)
            resolver = self.resolvers[relpath]
            walker = _Walker(self, pm, resolver, hooks)
            walker.run_statements(
                pm.module.tree.body, dict(module_env), function=None
            )
            for node in ast.walk(pm.module.tree):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    self._analyze_function(
                        pm, node, 0, module_env, hooks=hooks
                    )


class _Walker:
    """One statement/expression walk with a mutable environment."""

    def __init__(
        self,
        engine: DataflowEngine,
        pm: ProgramModule,
        resolver: Resolver,
        hooks: Optional[Hooks],
    ) -> None:
        self.engine = engine
        self.semantics = engine.semantics
        self.pm = pm
        self.resolver = resolver
        self.hooks = hooks
        self.return_flags = 0
        self.function: Optional[str] = None

    # -- statements --------------------------------------------------------

    def run_statements(
        self,
        body: Iterable[ast.stmt],
        env: Dict[str, int],
        function: Optional[str],
    ) -> None:
        self.function = function
        statements = list(body)
        # Two passes absorb loop-carried flags (x accumulates taint on
        # iteration 1, flows into a sink read textually earlier).
        for _ in range(2):
            before = dict(env)
            for statement in statements:
                self._statement(statement, env)
            if env == before:
                break

    def _statement(self, node: ast.stmt, env: Dict[str, int]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are walked separately
        if isinstance(node, ast.ClassDef):
            for statement in node.body:
                self._statement(statement, env)
            return
        if isinstance(node, ast.Assign):
            flags = self._eval(node.value, env)
            for target in node.targets:
                self._bind(target, flags, env)
            if self.hooks is not None:
                self.hooks.on_assign(self.pm, node, node.targets, flags)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is None:
                return
            flags = self._eval(node.value, env)
            self._bind(node.target, flags, env)
            if self.hooks is not None:
                self.hooks.on_assign(self.pm, node, [node.target], flags)
            return
        if isinstance(node, ast.AugAssign):
            flags = self._eval(node.value, env)
            if isinstance(node.target, ast.Name):
                flags |= env.get(node.target.id, 0)
                env[node.target.id] = flags
            if self.hooks is not None:
                self.hooks.on_assign(self.pm, node, [node.target], flags)
            return
        if isinstance(node, ast.Return):
            flags = (
                self._eval(node.value, env)
                if node.value is not None
                else 0
            )
            self.return_flags |= flags
            if (
                self.hooks is not None
                and node.value is not None
                and self.function is not None
            ):
                self.hooks.on_return(self.pm, node, self.function, flags)
            return
        if isinstance(node, ast.For):
            iter_flags = self._eval(node.iter, env)
            self._bind(
                node.target,
                self.semantics.iteration_flags(iter_flags),
                env,
            )
            for statement in node.body:
                self._statement(statement, env)
            for statement in node.orelse:
                self._statement(statement, env)
            return
        if isinstance(node, (ast.If, ast.While)):
            self._eval(node.test, env)
            for statement in node.body:
                self._statement(statement, env)
            for statement in node.orelse:
                self._statement(statement, env)
            return
        if isinstance(node, ast.With):
            for item in node.items:
                flags = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, flags, env)
            for statement in node.body:
                self._statement(statement, env)
            return
        if isinstance(node, ast.Try):
            for statement in node.body:
                self._statement(statement, env)
            for handler in node.handlers:
                for statement in handler.body:
                    self._statement(statement, env)
            for statement in node.orelse:
                self._statement(statement, env)
            for statement in node.finalbody:
                self._statement(statement, env)
            return
        if isinstance(node, ast.Expr):
            self._eval(node.value, env)
            return
        if isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
            return
        # Import/Global/Pass/Break/Continue/Delete: no flag flow.

    def _bind(
        self, target: ast.expr, flags: int, env: Dict[str, int]
    ) -> None:
        if isinstance(target, ast.Name):
            if flags:
                env[target.id] = flags
            else:
                env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, flags, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, flags, env)
        # Attribute/Subscript targets: no field-sensitive tracking.

    # -- expressions -------------------------------------------------------

    def _eval(self, node: ast.expr, env: Dict[str, int]) -> int:
        semantics = self.semantics
        if isinstance(node, ast.Name):
            return env.get(node.id, 0)
        if isinstance(node, ast.Constant):
            return semantics.literal_flags(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            flags = self._eval(node.left, env) | self._eval(
                node.right, env
            )
            return semantics.binop_flags(node, flags)
        if isinstance(node, ast.BoolOp):
            result = 0
            for value in node.values:
                result |= self._eval(value, env)
            return result
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env)
        if isinstance(node, ast.Compare):
            self._eval(node.left, env)
            for comparator in node.comparators:
                self._eval(comparator, env)
            return 0  # comparisons are order-insensitive booleans
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return self._eval(node.body, env) | self._eval(
                node.orelse, env
            )
        if isinstance(node, ast.Subscript):
            self._eval(node.slice, env)
            return self._eval(node.value, env)
        if isinstance(node, ast.Attribute):
            return self._eval(node.value, env)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, (ast.Await, ast.NamedExpr)):
            inner = self._eval(
                node.value, env  # type: ignore[union-attr]
            )
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                env[node.target.id] = inner
            return inner
        if isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            element_flags = 0
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    element_flags |= self._eval(child, env)
            return semantics.display_flags(node, element_flags)
        if isinstance(
            node, (ast.ListComp, ast.GeneratorExp, ast.SetComp,
                   ast.DictComp)
        ):
            return self._eval_comprehension(node, env)
        if isinstance(node, ast.JoinedStr):
            flags = 0
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    flags |= self._eval(value.value, env)
            return flags & TAINTED
        if isinstance(node, ast.Lambda):
            return 0
        flags = 0
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                flags |= self._eval(child, env)
        return flags

    def _eval_call(self, node: ast.Call, env: Dict[str, int]) -> int:
        arg_flags = 0
        arg_list: List[Tuple[Optional[str], int]] = []
        for arg in node.args:
            flags = self._eval(arg, env)
            arg_flags |= flags
            arg_list.append((None, flags))
        for keyword in node.keywords:
            flags = self._eval(keyword.value, env)
            arg_flags |= flags
            arg_list.append((keyword.arg, flags))
        # A method receiver feeds the call like an argument.
        if isinstance(node.func, ast.Attribute):
            arg_flags |= self._eval(node.func.value, env)
        summary_flags: Optional[int] = None
        resolved = self.resolver.resolve_call(node.func)
        if resolved is not None:
            summary = self.engine.summaries.get(resolved)
            if summary is not None:
                summary_flags = summary.call_flags(bool(arg_flags))
        elif isinstance(node.func, ast.Name):
            summary = self.engine.summaries.get(
                (self.pm.relpath, node.func.id)
            )
            if summary is not None:
                summary_flags = summary.call_flags(bool(arg_flags))
        if self.hooks is not None:
            self.hooks.on_call(self.pm, node, arg_list, self.resolver)
        return self.semantics.call_flags(
            node, _dotted(node.func), arg_flags, summary_flags
        )

    def _eval_comprehension(
        self, node: ast.expr, env: Dict[str, int]
    ) -> int:
        local = dict(env)
        source_flags = 0
        for generator in node.generators:  # type: ignore[attr-defined]
            iter_flags = self._eval(generator.iter, local)
            source_flags |= iter_flags
            self._bind(
                generator.target,
                self.semantics.iteration_flags(iter_flags),
                local,
            )
            for condition in generator.ifs:
                self._eval(condition, local)
        if isinstance(node, ast.DictComp):
            element_flags = self._eval(node.key, local) | self._eval(
                node.value, local
            )
            shell: ast.expr = ast.Dict(keys=[], values=[])
        elif isinstance(node, ast.SetComp):
            element_flags = self._eval(node.elt, local)
            shell = ast.Set(elts=[])
        else:
            element_flags = self._eval(
                node.elt, local  # type: ignore[attr-defined]
            )
            shell = ast.List(elts=[], ctx=ast.Load())
        ordered_taint = self.semantics.iteration_flags(source_flags)
        return (
            self.semantics.display_flags(
                shell, element_flags | ordered_taint
            )
        )
