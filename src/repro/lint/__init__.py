"""repro.lint — AST-based invariant analyzer for the simulation core.

A rule-registry static-analysis pass (stdlib :mod:`ast` only, no runtime
dependencies) that machine-checks the repository's cross-cutting
contracts at commit time.  Two tiers:

**Per-module rules** look at one file at a time:

========  ===================  ==========================================
ID        name                 contract
========  ===================  ==========================================
RL001     determinism          no wall clock / unseeded entropy in
                               simulation code
RL002     tracer-guard         event emission dominated by
                               ``if tracer.enabled``
RL003     hygiene              no mutable default args, no frozen-
                               dataclass mutation
RL004     schema-drift         event dataclasses vs serializers, replay
                               handlers and the committed schema
                               fingerprint
RL005     division-free-hef    scheduler benefit comparisons by
                               cross-multiplication, never ``/``
RL006     swallowed-exception  no silent ``except`` in the core
RL007     wall-clock-seam      wall-clock reads only inside declared
                               seam functions
========  ===================  ==========================================

**Whole-program rules** parse every module, resolve the import graph
(:mod:`repro.lint.graph`) and run a conservative dataflow core with
cross-module call summaries (:mod:`repro.lint.dataflow`):

========  ===================  ==========================================
ID        name                 contract
========  ===================  ==========================================
RL008     layering             the declared architecture layer DAG:
                               every import edge must follow it
RL009     iteration-taint      set-iteration order never reaches a
                               determinism sink (results, journals,
                               digests, cache keys, trace events)
RL010     float-contamination  no float value flow into the integer-
                               exact cycle/deadline arithmetic
RL011     dead-exports         no unreferenced public symbols, no
                               ``__all__`` drift
========  ===================  ==========================================

Run it as ``python -m repro lint`` (see :mod:`repro.lint.cli`); config
and allowlists live under ``[tool.repro-lint]`` in ``pyproject.toml``
(:mod:`repro.lint.config`).  Results are cached content-addressed under
``artifacts/.lintcache/`` (:mod:`repro.lint.cache`).
"""

from __future__ import annotations

from .analyzer import analyze_source, iter_source_files, run_analysis
from .cache import LintCache, ruleset_fingerprint
from .config import RULE_DEFAULTS, LintConfig, LintConfigError, path_matches
from .dataflow import (
    TAINTED,
    UNORDERED,
    DataflowEngine,
    FloatSemantics,
    Hooks,
    IterationSemantics,
    Resolver,
    Semantics,
    Summary,
)
from .findings import Finding
from .graph import ImportEdge, Program, ProgramModule, build_program
from .rules import (
    RULES,
    DeterminismRule,
    DivisionFreeRule,
    HygieneRule,
    Module,
    Rule,
    SwallowedExceptionRule,
    TracerGuardRule,
    WallClockSeamRule,
    parse_module,
)
from .rules_program import (
    DeadExportRule,
    FloatContaminationRule,
    IterationTaintRule,
    LayeringRule,
    ProgramRule,
    assign_layers,
)
from .schema import (
    REPLAY_IGNORE_DECLARATION,
    EventClass,
    EventSchema,
    SchemaDriftRule,
    parse_event_schema,
    schema_fingerprint,
    write_fingerprint,
)
from .symbols import (
    ModuleSymbols,
    SymbolDef,
    collect_references,
    external_references,
    module_symbols,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintConfigError",
    "RULE_DEFAULTS",
    "path_matches",
    "RULES",
    "Module",
    "Rule",
    "parse_module",
    "analyze_source",
    "run_analysis",
    "iter_source_files",
    "LintCache",
    "ruleset_fingerprint",
    "DeterminismRule",
    "TracerGuardRule",
    "HygieneRule",
    "DivisionFreeRule",
    "SwallowedExceptionRule",
    "WallClockSeamRule",
    "EventClass",
    "EventSchema",
    "SchemaDriftRule",
    "REPLAY_IGNORE_DECLARATION",
    "parse_event_schema",
    "schema_fingerprint",
    "write_fingerprint",
    "Program",
    "ProgramModule",
    "ImportEdge",
    "build_program",
    "SymbolDef",
    "ModuleSymbols",
    "module_symbols",
    "collect_references",
    "external_references",
    "TAINTED",
    "UNORDERED",
    "Summary",
    "Semantics",
    "IterationSemantics",
    "FloatSemantics",
    "Hooks",
    "Resolver",
    "DataflowEngine",
    "ProgramRule",
    "LayeringRule",
    "IterationTaintRule",
    "FloatContaminationRule",
    "DeadExportRule",
    "assign_layers",
]
