"""repro.lint — AST-based invariant analyzer for the simulation core.

A rule-registry static-analysis pass (stdlib :mod:`ast` only, no runtime
dependencies) that machine-checks the repository's cross-cutting
contracts at commit time:

========  ===================  ==========================================
ID        name                 contract
========  ===================  ==========================================
RL001     determinism          no wall clock / unseeded entropy in
                               simulation code
RL002     tracer-guard         event emission dominated by
                               ``if tracer.enabled``
RL003     hygiene              no mutable default args, no frozen-
                               dataclass mutation
RL004     schema-drift         event dataclasses vs serializers, replay
                               handlers and the committed schema
                               fingerprint
RL005     division-free-hef    scheduler benefit comparisons by
                               cross-multiplication, never ``/``
========  ===================  ==========================================

Run it as ``python -m repro lint`` (see :mod:`repro.lint.cli`);
allowlists live under ``[tool.repro-lint]`` in ``pyproject.toml``
(:mod:`repro.lint.config`).
"""

from __future__ import annotations

from .analyzer import analyze_source, iter_source_files, run_analysis
from .config import LintConfig, LintConfigError, path_matches
from .findings import Finding
from .rules import RULES, Module, Rule, parse_module
from .schema import (
    EventClass,
    EventSchema,
    SchemaDriftRule,
    parse_event_schema,
    schema_fingerprint,
    write_fingerprint,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintConfigError",
    "path_matches",
    "RULES",
    "Module",
    "Rule",
    "parse_module",
    "analyze_source",
    "run_analysis",
    "iter_source_files",
    "EventClass",
    "EventSchema",
    "SchemaDriftRule",
    "parse_event_schema",
    "schema_fingerprint",
    "write_fingerprint",
]
