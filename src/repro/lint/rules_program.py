"""The whole-program rules: RL008, RL009, RL010, RL011.

Unlike the per-module rules (:mod:`repro.lint.rules`) these operate on
a :class:`~repro.lint.graph.Program` — every module parsed, imports
resolved — so a violation in one file can be caused by a definition in
another:

* **RL008 — architecture layering.**  ``[tool.repro-lint.RL008]``
  declares named layers (ordered path-glob groups; first match wins)
  and the DAG of allowed cross-layer imports.  Every runtime import
  edge must stay inside its layer or follow a declared edge;
  ``if TYPE_CHECKING:`` imports are exempt (annotation-only coupling).
  The rule also rejects unassigned modules, unknown layer names and a
  cyclic declaration — a layering contract that is not a DAG enforces
  nothing.
* **RL009 — nondeterministic-iteration taint.**  Values whose order
  comes from iterating a ``set``/``frozenset`` (or ``os.listdir``,
  unsorted ``glob``) are tainted; the dataflow core propagates taint
  through assignments, comprehensions and cross-module call summaries,
  and this rule reports any tainted argument reaching a determinism
  sink — ``SimulationResult``/result dataclasses, ``canonical_json``
  (the journal/digest/cache-key chokepoint) or a trace-event
  construction.
* **RL010 — float contamination.**  Inside the integer-exact zones the
  same engine runs float semantics: float literals, ``float(...)``,
  ``/`` results and float-returning ``math.*`` calls may not flow into
  cycle counters or deadline arithmetic (assignments or keyword
  arguments whose names match the sink patterns, returns of
  ``*_cycles``-like functions).  This generalizes RL005 from "no ``/``
  token" to actual value flow.
* **RL011 — dead and drifting exports.**  A public top-level symbol
  never referenced outside its module (across ``src``, tests and
  benchmarks) is dead; an ``__all__`` entry that names nothing defined
  in the module, or appears twice, is drift.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from .config import path_matches
from .dataflow import (
    TAINTED,
    DataflowEngine,
    FloatSemantics,
    Hooks,
    IterationSemantics,
    Resolver,
)
from .findings import Finding
from .graph import Program, ProgramModule
from .rules import Rule, register_rule
from .symbols import external_references, module_symbols

__all__ = [
    "ProgramRule",
    "LayeringRule",
    "IterationTaintRule",
    "FloatContaminationRule",
    "DeadExportRule",
    "assign_layers",
]


class ProgramRule(Rule):
    """A rule that needs the parsed whole program."""

    def check(
        self, module: Any, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        return iter(())  # program-level only

    def check_program(
        self, program: Program, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        raise NotImplementedError


# -- RL008: architecture layering ----------------------------------------------


def assign_layers(
    layers: Mapping[str, List[str]], relpath: str
) -> Optional[str]:
    """The first declared layer whose globs match, None if unassigned."""
    for name, patterns in layers.items():
        if path_matches(relpath, patterns):
            return name
    return None


def _declaration_cycle(
    imports: Mapping[str, List[str]]
) -> Optional[List[str]]:
    """A cycle in the declared allowed-import graph, None if a DAG."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[str, int] = {name: WHITE for name in imports}
    stack: List[str] = []

    def visit(name: str) -> Optional[List[str]]:
        color[name] = GREY
        stack.append(name)
        for dep in imports.get(name, []):
            if color.get(dep, BLACK) == GREY:
                return stack[stack.index(dep):] + [dep]
            if color.get(dep, BLACK) == WHITE:
                cycle = visit(dep)
                if cycle is not None:
                    return cycle
        stack.pop()
        color[name] = BLACK
        return None

    for name in sorted(imports):
        if color[name] == WHITE:
            cycle = visit(name)
            if cycle is not None:
                return cycle
    return None


@register_rule
class LayeringRule(ProgramRule):
    """Declared layer DAG over the module import graph."""

    rule_id = "RL008"
    title = "layering"

    def check_program(
        self, program: Program, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        layers: Mapping[str, List[str]] = options.get("layers", {})
        allowed: Mapping[str, List[str]] = options.get("imports", {})
        if not layers:
            return
        unknown = sorted(
            {
                name
                for deps in allowed.values()
                for name in deps
                if name not in layers
            }
            | {name for name in allowed if name not in layers}
        )
        for name in unknown:
            yield self.finding_at(
                "pyproject.toml",
                1,
                f"[tool.repro-lint.RL008.imports] references layer "
                f"{name!r}, which is not declared under .layers",
            )
        cycle = _declaration_cycle(allowed)
        if cycle is not None:
            yield self.finding_at(
                "pyproject.toml",
                1,
                f"the declared layer imports are cyclic "
                f"({' -> '.join(cycle)}); a layering contract must be "
                f"a DAG",
            )
            return
        assignment: Dict[str, Optional[str]] = {}
        for relpath, pm in program.modules.items():
            assignment[relpath] = assign_layers(layers, relpath)
            if assignment[relpath] is None:
                yield self.finding_at(
                    relpath,
                    1,
                    f"module is not covered by any declared layer; "
                    f"add it to [tool.repro-lint.RL008.layers] so the "
                    f"contract stays total",
                )
        # ``from pkg import a, b, c`` makes one edge per symbol; report
        # the (statement, target-module) pair once.
        reported: Set[Tuple[str, int, int, str]] = set()
        for edge in program.edges():
            if edge.type_checking:
                continue
            source_layer = assignment.get(edge.source)
            target_layer = assignment.get(edge.target)
            if source_layer is None or target_layer is None:
                continue
            if source_layer == target_layer:
                continue
            if target_layer in allowed.get(source_layer, []):
                continue
            key = (edge.source, edge.line, edge.col, edge.target)
            if key in reported:
                continue
            reported.add(key)
            yield self.finding_at(
                edge.source,
                edge.line,
                f"layer {source_layer!r} may not import layer "
                f"{target_layer!r} (module {edge.target}); declared "
                f"imports: "
                f"{sorted(allowed.get(source_layer, []))} — refactor "
                f"the dependency or amend the contract deliberately",
                col=edge.col,
            )

    def finding_at(
        self, relpath: str, line: int, message: str, col: int = 0
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=relpath,
            line=line,
            col=col,
            message=message,
        )


# -- RL009: nondeterministic-iteration taint -----------------------------------


class _TaintSinkHooks(Hooks):
    """Collect tainted arguments at determinism sinks."""

    def __init__(
        self,
        sink_calls: List[str],
        sink_events: bool,
    ) -> None:
        self.sink_calls = sink_calls
        self.sink_events = sink_events
        self.hits: Set[Tuple[str, int, int, str]] = set()

    def _sink_label(
        self, pm: ProgramModule, node: ast.Call, resolver: Resolver
    ) -> Optional[str]:
        func = node.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name and any(
            path_matches(name, [pattern]) for pattern in self.sink_calls
        ):
            return name
        if self.sink_events and isinstance(func, ast.Name):
            resolved = resolver.resolve_call(func)
            if resolved is not None and resolved[0].endswith(
                "events.py"
            ):
                return f"trace event {name}"
        return None

    def on_call(
        self,
        pm: ProgramModule,
        node: ast.Call,
        arg_flags_list: List[Tuple[Optional[str], int]],
        resolver: Resolver,
    ) -> None:
        label = self._sink_label(pm, node, resolver)
        if label is None:
            return
        for kwarg, flags in arg_flags_list:
            if flags & TAINTED:
                where = (
                    f"keyword {kwarg!r}" if kwarg else "an argument"
                )
                self.hits.add(
                    (
                        pm.relpath,
                        node.lineno,
                        node.col_offset,
                        f"value with nondeterministic iteration order "
                        f"reaches determinism sink {label!r} via "
                        f"{where}; sort the producing iteration "
                        f"(sorted(...)) before it escapes",
                    )
                )


@register_rule
class IterationTaintRule(ProgramRule):
    """set/dict iteration taint must not reach determinism sinks."""

    rule_id = "RL009"
    title = "iteration-taint"

    def check_program(
        self, program: Program, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        semantics = IterationSemantics(
            taint_dict=bool(options.get("taint_dict", False))
        )
        engine = DataflowEngine(program, semantics)
        engine.compute_summaries()
        hooks = _TaintSinkHooks(
            sink_calls=list(options.get("sink_calls", [])),
            sink_events=bool(options.get("sink_events", True)),
        )
        include = options.get("include", [])
        allow = options.get("allow", [])
        engine.report(
            hooks,
            in_scope=lambda relpath: path_matches(relpath, include)
            and not path_matches(relpath, allow),
        )
        for relpath, line, col, message in sorted(hooks.hits):
            yield Finding(
                rule_id=self.rule_id,
                path=relpath,
                line=line,
                col=col,
                message=message,
            )


# -- RL010: float contamination ------------------------------------------------


def _target_names(targets: List[ast.expr]) -> Iterator[str]:
    for target in targets:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, ast.Attribute):
            yield target.attr
        elif isinstance(target, (ast.Tuple, ast.List)):
            yield from _target_names(list(target.elts))


class _FloatSinkHooks(Hooks):
    """Collect float-valued flows into integer-exact state."""

    def __init__(self, sink_names: List[str]) -> None:
        self.sink_names = sink_names
        self.hits: Set[Tuple[str, int, int, str]] = set()

    def _matches(self, name: str) -> bool:
        return any(
            path_matches(name, [pattern]) for pattern in self.sink_names
        )

    def _hit(
        self, pm: ProgramModule, node: ast.AST, message: str
    ) -> None:
        self.hits.add(
            (
                pm.relpath,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                message,
            )
        )

    def on_assign(
        self,
        pm: ProgramModule,
        node: ast.stmt,
        targets: List[ast.expr],
        value_flags: int,
    ) -> None:
        if not value_flags & TAINTED:
            return
        for name in _target_names(targets):
            if self._matches(name):
                self._hit(
                    pm,
                    node,
                    f"float-valued expression assigned to integer-"
                    f"exact state {name!r}; the cycle/deadline "
                    f"arithmetic is exact-integer by contract — use "
                    f"integer math (cross-multiplication, //, "
                    f"divmod)",
                )

    def on_call(
        self,
        pm: ProgramModule,
        node: ast.Call,
        arg_flags_list: List[Tuple[Optional[str], int]],
        resolver: Resolver,
    ) -> None:
        for kwarg, flags in arg_flags_list:
            if kwarg and flags & TAINTED and self._matches(kwarg):
                self._hit(
                    pm,
                    node,
                    f"float-valued expression passed as keyword "
                    f"{kwarg!r}; integer-exact state must be built "
                    f"from integer math only",
                )

    def on_return(
        self,
        pm: ProgramModule,
        node: ast.Return,
        function: str,
        value_flags: int,
    ) -> None:
        if value_flags & TAINTED and self._matches(function):
            self._hit(
                pm,
                node,
                f"function {function!r} returns a float-valued "
                f"expression; its name marks it as integer-exact "
                f"cycle/deadline arithmetic",
            )


@register_rule
class FloatContaminationRule(ProgramRule):
    """No float value flow into the integer-exact zones' counters."""

    rule_id = "RL010"
    title = "float-contamination"

    def check_program(
        self, program: Program, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        engine = DataflowEngine(program, FloatSemantics())
        engine.compute_summaries()
        hooks = _FloatSinkHooks(
            sink_names=list(options.get("sink_names", []))
        )
        include = options.get("include", [])
        allow = options.get("allow", [])
        engine.report(
            hooks,
            in_scope=lambda relpath: path_matches(relpath, include)
            and not path_matches(relpath, allow),
        )
        for relpath, line, col, message in sorted(hooks.hits):
            yield Finding(
                rule_id=self.rule_id,
                path=relpath,
                line=line,
                col=col,
                message=message,
            )


# -- RL011: dead and drifting exports ------------------------------------------


@register_rule
class DeadExportRule(ProgramRule):
    """Unreferenced public symbols and ``__all__`` drift."""

    rule_id = "RL011"
    title = "dead-exports"

    def check_program(
        self, program: Program, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        include = options.get("include", [])
        allow = options.get("allow", [])
        allow_names = set(options.get("allow_names", []))
        roots = [
            program.src_root.parent / root
            for root in options.get("roots", [])
        ]
        outside = external_references(program, roots)
        for relpath in sorted(program.modules):
            if not path_matches(relpath, include) or path_matches(
                relpath, allow
            ):
                continue
            pm = program.modules[relpath]
            symbols = module_symbols(pm)
            referenced_elsewhere = outside[relpath]
            for name in sorted(symbols.defs):
                definition = symbols.defs[name]
                if not definition.public or name in allow_names:
                    continue
                if name not in referenced_elsewhere:
                    yield Finding(
                        rule_id=self.rule_id,
                        path=relpath,
                        line=definition.line,
                        col=0,
                        message=(
                            f"public {definition.kind} {name!r} is "
                            f"never referenced outside this module "
                            f"(whole-program scan incl. tests and "
                            f"benchmarks); delete it or rename it "
                            f"with a leading underscore"
                        ),
                    )
            yield from self._check_dunder_all(relpath, symbols)

    def _check_dunder_all(
        self, relpath: str, symbols: Any
    ) -> Iterator[Finding]:
        if symbols.dunder_all is None:
            return
        defined = (
            set(symbols.defs)
            | symbols.imported
            | {"__version__", "__all__"}
        )
        seen: Set[str] = set()
        for name in symbols.dunder_all:
            if name in seen:
                yield Finding(
                    rule_id=self.rule_id,
                    path=relpath,
                    line=symbols.dunder_all_line,
                    col=0,
                    message=(
                        f"__all__ lists {name!r} twice; drop the "
                        f"duplicate entry"
                    ),
                )
            seen.add(name)
            if name not in defined:
                yield Finding(
                    rule_id=self.rule_id,
                    path=relpath,
                    line=symbols.dunder_all_line,
                    col=0,
                    message=(
                        f"__all__ lists {name!r}, which is neither "
                        f"defined nor imported at module top level — "
                        f"stale export?"
                    ),
                )
