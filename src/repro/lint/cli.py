"""``python -m repro lint`` — the repository's static-analysis gate.

Runs every registered rule (RL001–RL011) over the source tree and
reports findings as ``path:line:col: RLxxx message`` text, as a JSON
document (``--format json``) or as SARIF 2.1.0 (``--format sarif``, for
CI upload).  Exit codes: 0 clean, 1 findings, 2 for a configuration or
usage problem — so the command slots directly into CI.

Results are cached content-addressed under ``artifacts/.lintcache/``
(``--no-cache`` bypasses it); ``--changed-only`` restricts the *report*
to files that differ from a git base ref (default ``main``) — the
whole-program rules still analyze the full tree, because a change in
one module can create a violation in another, but only findings in
changed files (plus tree-level config findings) are shown.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

from .analyzer import run_analysis
from .cache import LintCache, ruleset_fingerprint
from .config import LintConfig, LintConfigError
from .rules import RULES
from .schema import write_fingerprint

__all__ = ["main", "build_parser"]

#: Version of the ``--format json`` report envelope.
REPORT_VERSION = 1


def _default_src_root() -> Path:
    """The ``src`` directory this installation of repro lives in."""
    return Path(__file__).resolve().parents[2]


def _default_pyproject(src_root: Path) -> Optional[Path]:
    candidate = src_root.parent / "pyproject.toml"
    return candidate if candidate.is_file() else None


def _rule_list(text: str) -> List[str]:
    """argparse type: comma-separated known rule IDs."""
    rules = [part.strip() for part in text.split(",") if part.strip()]
    unknown = [rule for rule in rules if rule not in RULES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    if not rules:
        raise argparse.ArgumentTypeError("empty rule list")
    return rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant analyzer for the simulation core: "
            "per-module rules for determinism (RL001), tracer guards "
            "(RL002), hygiene (RL003), event-schema drift (RL004), "
            "division-free HEF comparisons (RL005), swallowed "
            "exceptions (RL006) and wall-clock seams (RL007), plus "
            "whole-program rules for architecture layering (RL008), "
            "nondeterministic-iteration taint (RL009), float "
            "contamination of integer-exact zones (RL010) and dead "
            "exports (RL011)."
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--root",
        default="",
        metavar="DIR",
        help="source root to analyze (default: this checkout's src/)",
    )
    parser.add_argument(
        "--pyproject",
        default="",
        metavar="FILE",
        help="pyproject.toml carrying [tool.repro-lint] overrides "
        "(default: the one next to the source root)",
    )
    parser.add_argument(
        "--select",
        type=_rule_list,
        default=None,
        metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the content-hash result cache "
        "under artifacts/.lintcache/",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report only findings in files that differ from --base "
        "(per git); the whole-program rules still see the full tree",
    )
    parser.add_argument(
        "--base",
        default="main",
        metavar="REF",
        help="git ref --changed-only diffs against (default main)",
    )
    parser.add_argument(
        "--write-fingerprint",
        action="store_true",
        help="re-record the committed event-schema fingerprint "
        "(after a deliberate OBS_SCHEMA_VERSION bump) and exit",
    )
    return parser


def _changed_relpaths(src_root: Path, base: str) -> Set[str]:
    """Source-root relpaths of files differing from ``base`` in git.

    Covers committed, staged and unstaged changes (``git diff <base>``
    over the working tree).  Raises :class:`LintConfigError` when git
    cannot answer — a silent empty set would report a dirty tree as
    clean.
    """
    repo_root = src_root.parent
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", base, "--", "."],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError as exc:
        raise LintConfigError(f"cannot run git for --changed-only: {exc}")
    if proc.returncode != 0:
        raise LintConfigError(
            f"git diff against {base!r} failed: "
            f"{proc.stderr.strip() or 'unknown git error'}"
        )
    prefix = f"{src_root.name}/"
    changed: Set[str] = set()
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line.startswith(prefix) and line.endswith(".py"):
            changed.add(line[len(prefix):])
    return changed


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    src_root = Path(args.root) if args.root else _default_src_root()
    if not src_root.is_dir():
        print(f"error: no such source root: {src_root}", file=sys.stderr)
        return 2
    pyproject = (
        Path(args.pyproject)
        if args.pyproject
        else _default_pyproject(src_root)
    )
    try:
        config = LintConfig.load(pyproject)
    except LintConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_fingerprint:
        try:
            target = write_fingerprint(src_root, config.rule("RL004"))
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote event-schema fingerprint: {target}")
        return 0
    cache: Optional[LintCache] = None
    if not args.no_cache:
        cache = LintCache(
            src_root.parent / "artifacts" / ".lintcache",
            ruleset_fingerprint(
                {rule_id: config.rule(rule_id) for rule_id in RULES},
                args.select,
            ),
        )
    findings = run_analysis(
        src_root, config, select=args.select, cache=cache
    )
    if args.changed_only:
        try:
            changed = _changed_relpaths(src_root, args.base)
        except LintConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # Keep tree-level findings pinned to config files: a contract
        # problem is not attributable to any one changed module.
        findings = [
            f
            for f in findings
            if f.path in changed or f.path == "pyproject.toml"
        ]
    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": REPORT_VERSION,
                    "root": str(src_root),
                    "count": len(findings),
                    "findings": [f.to_json_dict() for f in findings],
                },
                indent=1,
                sort_keys=True,
            )
        )
    elif args.format == "sarif":
        from .sarif import sarif_report

        print(
            json.dumps(
                sarif_report(findings, src_root), indent=1, sort_keys=True
            )
        )
    else:
        for finding in findings:
            print(finding.format_text())
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"repro lint: {len(findings)} {noun} "
            f"({len(args.select) if args.select else len(RULES)} rules, "
            f"root {src_root})"
        )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
