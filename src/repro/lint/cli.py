"""``python -m repro lint`` — the repository's static-analysis gate.

Runs every registered rule (RL001-RL006) over the source tree and
reports findings as ``path:line:col: RLxxx message`` text or as a JSON
document (``--format json``).  Exit codes: 0 clean, 1 findings, 2 for a
configuration or usage problem — so the command slots directly into CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analyzer import run_analysis
from .config import LintConfig, LintConfigError
from .rules import RULES
from .schema import write_fingerprint

__all__ = ["main", "build_parser"]

#: Version of the ``--format json`` report envelope.
REPORT_VERSION = 1


def _default_src_root() -> Path:
    """The ``src`` directory this installation of repro lives in."""
    return Path(__file__).resolve().parents[2]


def _default_pyproject(src_root: Path) -> Optional[Path]:
    candidate = src_root.parent / "pyproject.toml"
    return candidate if candidate.is_file() else None


def _rule_list(text: str) -> List[str]:
    """argparse type: comma-separated known rule IDs."""
    rules = [part.strip() for part in text.split(",") if part.strip()]
    unknown = [rule for rule in rules if rule not in RULES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    if not rules:
        raise argparse.ArgumentTypeError("empty rule list")
    return rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant analyzer for the simulation core: "
            "determinism (RL001), tracer guards (RL002), hygiene "
            "(RL003), event-schema drift (RL004), division-free HEF "
            "comparisons (RL005) and swallowed exceptions (RL006)."
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--root",
        default="",
        metavar="DIR",
        help="source root to analyze (default: this checkout's src/)",
    )
    parser.add_argument(
        "--pyproject",
        default="",
        metavar="FILE",
        help="pyproject.toml carrying [tool.repro-lint] overrides "
        "(default: the one next to the source root)",
    )
    parser.add_argument(
        "--select",
        type=_rule_list,
        default=None,
        metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--write-fingerprint",
        action="store_true",
        help="re-record the committed event-schema fingerprint "
        "(after a deliberate OBS_SCHEMA_VERSION bump) and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    src_root = Path(args.root) if args.root else _default_src_root()
    if not src_root.is_dir():
        print(f"error: no such source root: {src_root}", file=sys.stderr)
        return 2
    pyproject = (
        Path(args.pyproject)
        if args.pyproject
        else _default_pyproject(src_root)
    )
    try:
        config = LintConfig.load(pyproject)
    except LintConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_fingerprint:
        try:
            target = write_fingerprint(src_root, config.rule("RL004"))
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote event-schema fingerprint: {target}")
        return 0
    findings = run_analysis(src_root, config, select=args.select)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": REPORT_VERSION,
                    "root": str(src_root),
                    "count": len(findings),
                    "findings": [f.to_json_dict() for f in findings],
                },
                indent=1,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.format_text())
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"repro lint: {len(findings)} {noun} "
            f"({len(args.select) if args.select else len(RULES)} rules, "
            f"root {src_root})"
        )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
