"""Finding: one static-analysis violation, pinned to a file and line.

A finding is what a rule emits and what the ``repro lint`` CLI renders —
as ``path:line:col: RLxxx message`` in text mode or as one JSON object
per finding in ``--format json`` mode.  Findings order stably by
``(path, line, col, rule_id)`` so repeated runs over the same tree
produce byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.message}"
        )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
