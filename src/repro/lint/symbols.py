"""Project symbol table for the whole-program rules.

Per module this extracts, purely from the AST:

* **definitions** — top-level functions, classes and assigned names,
  with their public/private split (leading underscore);
* **``__all__``** — the declared export list, when present;
* **references** — every ``Name`` load and every ``Attribute`` access
  in the module body (attribute accesses count by attribute name, so
  ``mod.symbol`` references ``symbol`` without alias tracking).

RL011 (dead exports / ``__all__`` drift) consumes the cross-module
reference union; the dataflow core resolves imported callees through
the per-module definition maps.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .graph import Program, ProgramModule

__all__ = [
    "SymbolDef",
    "ModuleSymbols",
    "module_symbols",
    "collect_references",
    "external_references",
]


@dataclass(frozen=True)
class SymbolDef:
    """One top-level definition in a module."""

    name: str
    line: int
    kind: str  #: "function" | "class" | "constant"

    @property
    def public(self) -> bool:
        return not self.name.startswith("_")


@dataclass
class ModuleSymbols:
    """Top-level definitions, imports and references of one module."""

    relpath: str
    defs: Dict[str, SymbolDef] = field(default_factory=dict)
    #: names bound by import statements (alias-aware).
    imported: Set[str] = field(default_factory=set)
    #: the ``__all__`` entries in declaration order, None if undeclared.
    dunder_all: Optional[List[str]] = None
    dunder_all_line: int = 0
    #: every Name id / Attribute attr referenced anywhere in the module.
    references: Set[str] = field(default_factory=set)


def _add_def(
    symbols: ModuleSymbols, name: str, line: int, kind: str
) -> None:
    if name not in symbols.defs:
        symbols.defs[name] = SymbolDef(name=name, line=line, kind=kind)


def _assign_names(node: ast.stmt) -> List[Tuple[str, int]]:
    names: List[Tuple[str, int]] = []
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AnnAssign):
        targets = [node.target]
    for target in targets:
        if isinstance(target, ast.Name):
            names.append((target.id, node.lineno))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    names.append((element.id, node.lineno))
    return names


def _dunder_all_entries(node: ast.stmt) -> Optional[List[str]]:
    value: Optional[ast.expr] = None
    if isinstance(node, ast.Assign):
        if any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in node.targets
        ):
            value = node.value
    elif isinstance(node, ast.AnnAssign):
        if (
            isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
        ):
            value = node.value
    if value is None or not isinstance(value, (ast.List, ast.Tuple)):
        return None
    return [
        element.value
        for element in value.elts
        if isinstance(element, ast.Constant)
        and isinstance(element.value, str)
    ]


def module_symbols(pm: ProgramModule) -> ModuleSymbols:
    """Extract the symbol table of one parsed module."""
    symbols = ModuleSymbols(relpath=pm.relpath)
    for node in pm.module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _add_def(symbols, node.name, node.lineno, "function")
        elif isinstance(node, ast.ClassDef):
            _add_def(symbols, node.name, node.lineno, "class")
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            entries = _dunder_all_entries(node)
            if entries is not None:
                symbols.dunder_all = entries
                symbols.dunder_all_line = node.lineno
                continue
            for name, line in _assign_names(node):
                if name != "__all__":
                    _add_def(symbols, name, line, "constant")
    for edge in pm.imports:
        if edge.bound_name is not None:
            symbols.imported.add(edge.bound_name)
        elif edge.symbol is not None and edge.symbol != "*":
            symbols.imported.add(edge.symbol)
    symbols.references = collect_references(pm.module.tree)
    return symbols


def collect_references(tree: ast.AST) -> Set[str]:
    """Every bare name and attribute name referenced in a tree."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.ImportFrom):
            # ``from m import x`` references x (re-export chains).
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.Constant) and isinstance(
            node.value, str
        ):
            # Strings count when they look like identifiers: registry
            # keys, getattr names and __all__ re-export lists all
            # reference symbols by string.
            if node.value.isidentifier():
                names.add(node.value)
    return names


def external_references(
    program: Program, extra_roots: List[Path]
) -> Dict[str, Set[str]]:
    """Reference sets beyond each module's own body.

    Returns ``{relpath: names referenced outside that module}`` — the
    union of every *other* project module's references plus everything
    referenced under the extra roots (tests, benchmarks, entrypoint
    scripts).  A symbol whose name is in its module's set is reachable
    from outside; one that is not is dead weight.
    """
    per_module: Dict[str, Set[str]] = {}
    for relpath, pm in program.modules.items():
        per_module[relpath] = module_symbols(pm).references
    outside: Set[str] = set()
    for root in extra_roots:
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.py")):
            try:
                tree = ast.parse(
                    path.read_text(encoding="utf-8"), filename=str(path)
                )
            except (OSError, SyntaxError):
                continue
            outside |= collect_references(tree)
    result: Dict[str, Set[str]] = {}
    for relpath in program.modules:
        others: Set[str] = set(outside)
        for other_relpath, names in per_module.items():
            if other_relpath != relpath:
                others |= names
        result[relpath] = others
    return result
