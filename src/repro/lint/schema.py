"""RL004 — event-schema drift detection across the observability layer.

The event log is a *versioned* on-disk format: readers hard-reject logs
whose ``OBS_SCHEMA_VERSION`` they do not know.  That guarantee only
holds if every schema-visible change actually bumps the version — which
is exactly the kind of contract that silently rots.  RL004 therefore
cross-checks, purely statically:

1. **Serializer coverage** — every registered event dataclass in
   ``events.py`` is referenced by name in ``export.py`` (the Chrome and
   text renderers must know every kind; the JSON path is generic).
2. **Replay coverage** — every registered event is either referenced in
   ``replay.py`` or *explicitly* listed in its ``REPLAY_IGNORED_EVENTS``
   declaration.  Ignoring an event is fine; ignoring it silently is not.
   A stale ignore entry (event no longer exists) is also flagged.
3. **Version discipline** — a SHA-256 fingerprint of the full event
   schema (every dataclass, its kind tag, its fields and annotations) is
   committed next to the source (``event_schema.json``).  If the schema
   changes while ``OBS_SCHEMA_VERSION`` stays put, RL004 fails; after a
   deliberate bump, ``python -m repro lint --write-fingerprint``
   re-records the fingerprint.

Everything is derived from the ASTs — the lint gate never imports the
code under analysis.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Set, Tuple

from .findings import Finding
from .rules import Rule, register_rule

__all__ = [
    "EventClass",
    "EventSchema",
    "parse_event_schema",
    "schema_fingerprint",
    "write_fingerprint",
    "SchemaDriftRule",
]

#: Name of the explicit ignore declaration RL004 expects in replay.py.
REPLAY_IGNORE_DECLARATION = "REPLAY_IGNORED_EVENTS"


@dataclass(frozen=True)
class EventClass:
    """Shape of one dataclass in the events module."""

    name: str
    line: int
    kind: Optional[str]
    registered: bool
    #: ``(field_name, annotation_source)`` in declaration order.
    fields: Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class EventSchema:
    """All event dataclasses of the events module, by name."""

    classes: Tuple[EventClass, ...]

    def registered(self) -> Tuple[EventClass, ...]:
        return tuple(c for c in self.classes if c.registered)

    def names(self) -> Set[str]:
        return {c.name for c in self.classes}


def parse_event_schema(source: str, relpath: str) -> EventSchema:
    """Extract every dataclass (kind, fields) from ``events.py``."""
    tree = ast.parse(source, filename=relpath)
    classes: List[EventClass] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        decorators = [_decorator_name(d) for d in node.decorator_list]
        if "dataclass" not in decorators:
            continue
        kind: Optional[str] = None
        fields: List[Tuple[str, str]] = []
        for statement in node.body:
            if (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and statement.targets[0].id == "kind"
                and isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, str)
            ):
                kind = statement.value.value
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                fields.append(
                    (
                        statement.target.id,
                        ast.unparse(statement.annotation),
                    )
                )
        classes.append(
            EventClass(
                name=node.name,
                line=node.lineno,
                kind=kind,
                registered="_register" in decorators,
                fields=tuple(fields),
            )
        )
    return EventSchema(classes=tuple(classes))


def _decorator_name(node: ast.AST) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def schema_fingerprint(schema: EventSchema) -> str:
    """Stable SHA-256 over the full event-schema shape."""
    payload = {
        cls.name: {
            "kind": cls.kind,
            "registered": cls.registered,
            "fields": [list(pair) for pair in cls.fields],
        }
        for cls in schema.classes
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return f"sha256:{digest}"


def _referenced_names(source: str, relpath: str) -> Set[str]:
    """Every bare name referenced in a module (loads, calls, aliases)."""
    tree = ast.parse(source, filename=relpath)
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _replay_ignored(source: str, relpath: str) -> Optional[Set[str]]:
    """The ``REPLAY_IGNORED_EVENTS`` string tuple, None if absent."""
    tree = ast.parse(source, filename=relpath)
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == REPLAY_IGNORE_DECLARATION
                and isinstance(value, (ast.Tuple, ast.List, ast.Set))
            ):
                return {
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                }
    return None


def _schema_version(source: str, relpath: str) -> Optional[int]:
    """The ``OBS_SCHEMA_VERSION`` constant of ``export.py``."""
    tree = ast.parse(source, filename=relpath)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "OBS_SCHEMA_VERSION"
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
        ):
            return node.value.value
    return None


def write_fingerprint(
    src_root: Path, options: Mapping[str, Any]
) -> Path:
    """(Re-)record the committed schema fingerprint; returns its path."""
    events_path = src_root / options["events"]
    export_path = src_root / options["export"]
    schema = parse_event_schema(
        events_path.read_text(encoding="utf-8"), options["events"]
    )
    version = _schema_version(
        export_path.read_text(encoding="utf-8"), options["export"]
    )
    target = src_root / options["fingerprint"]
    target.write_text(
        json.dumps(
            {
                "comment": (
                    "Committed event-schema fingerprint, checked by "
                    "'python -m repro lint' (RL004).  Regenerate with "
                    "'python -m repro lint --write-fingerprint' after "
                    "bumping OBS_SCHEMA_VERSION."
                ),
                "schema_version": version,
                "fingerprint": schema_fingerprint(schema),
            },
            indent=1,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    return target


class ProjectRule(Rule):
    """A rule that reasons about the whole tree, not one module."""

    def check_project(
        self, src_root: Path, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(
        self, relpath: str, line: int, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=relpath,
            line=line,
            col=0,
            message=message,
        )


@register_rule
class SchemaDriftRule(ProjectRule):
    """Event schema vs serializers, replay handlers and the version."""

    rule_id = "RL004"
    title = "schema-drift"

    def check(
        self, module: Any, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        return iter(())  # project-level only

    def check_project(
        self, src_root: Path, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        sources: Dict[str, str] = {}
        for key in ("events", "export", "replay"):
            relpath = options[key]
            path = src_root / relpath
            try:
                sources[key] = path.read_text(encoding="utf-8")
            except OSError:
                yield self.project_finding(
                    relpath,
                    1,
                    f"cannot read the {key} module the event-schema "
                    f"check needs",
                )
                return
        events_rel = options["events"]
        schema = parse_event_schema(sources["events"], events_rel)
        yield from self._check_export(
            schema, sources["export"], options
        )
        yield from self._check_replay(
            schema, sources["replay"], options
        )
        yield from self._check_fingerprint(
            schema, sources["export"], src_root, options
        )

    def _check_export(
        self,
        schema: EventSchema,
        export_source: str,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        referenced = _referenced_names(export_source, options["export"])
        for cls in schema.registered():
            if cls.name not in referenced:
                yield self.project_finding(
                    options["events"],
                    cls.line,
                    f"event {cls.name} (kind {cls.kind!r}) has no "
                    f"serializer reference in {options['export']}; "
                    f"teach the Chrome/text renderers about it",
                )

    def _check_replay(
        self,
        schema: EventSchema,
        replay_source: str,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        referenced = _referenced_names(replay_source, options["replay"])
        ignored = _replay_ignored(replay_source, options["replay"])
        if ignored is None:
            yield self.project_finding(
                options["replay"],
                1,
                f"missing {REPLAY_IGNORE_DECLARATION} declaration; "
                f"replay must state which event kinds it deliberately "
                f"ignores",
            )
            ignored = set()
        for cls in schema.registered():
            if cls.name not in referenced and cls.name not in ignored:
                yield self.project_finding(
                    options["events"],
                    cls.line,
                    f"event {cls.name} (kind {cls.kind!r}) is neither "
                    f"handled in {options['replay']} nor listed in "
                    f"{REPLAY_IGNORE_DECLARATION}",
                )
        for name in sorted(ignored - schema.names()):
            yield self.project_finding(
                options["replay"],
                1,
                f"{REPLAY_IGNORE_DECLARATION} lists {name!r}, which is "
                f"not an event class in {options['events']} — stale "
                f"entry?",
            )

    def _check_fingerprint(
        self,
        schema: EventSchema,
        export_source: str,
        src_root: Path,
        options: Mapping[str, Any],
    ) -> Iterator[Finding]:
        fingerprint_rel = options["fingerprint"]
        current = schema_fingerprint(schema)
        version = _schema_version(export_source, options["export"])
        if version is None:
            yield self.project_finding(
                options["export"],
                1,
                "cannot find the OBS_SCHEMA_VERSION constant the "
                "fingerprint check pins against",
            )
            return
        try:
            recorded = json.loads(
                (src_root / fingerprint_rel).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            yield self.project_finding(
                fingerprint_rel,
                1,
                "missing or unreadable committed schema fingerprint; "
                "run 'python -m repro lint --write-fingerprint'",
            )
            return
        recorded_version = recorded.get("schema_version")
        recorded_print = recorded.get("fingerprint")
        if current == recorded_print and version == recorded_version:
            return
        if version == recorded_version:
            yield self.project_finding(
                options["events"],
                1,
                f"event schema changed but OBS_SCHEMA_VERSION is still "
                f"{version}; bump the version (then run 'python -m "
                f"repro lint --write-fingerprint') or revert the schema "
                f"change",
            )
        else:
            yield self.project_finding(
                fingerprint_rel,
                1,
                f"committed fingerprint records schema version "
                f"{recorded_version}, source declares {version}; run "
                f"'python -m repro lint --write-fingerprint'",
            )
