"""Content-addressed lint result cache.

Re-linting an unchanged tree is pure waste: the analyzer is a function
of (file bytes, rule implementations, effective config).  This cache
memoizes exactly that function:

* **per-file entries** — keyed by the file's SHA-256 *and* the rule-set
  fingerprint; a cache hit replays the stored findings without parsing.
* **one tree entry** — for the project- and program-level rules
  (RL004, RL008–RL011), keyed by the hash of *every* source file plus
  the out-of-tree inputs those rules read (the committed schema
  fingerprint, the RL011 reference roots).

The rule-set fingerprint hashes the ``repro.lint`` package sources, the
effective per-rule options and the ``--select`` set, so editing a rule,
a ``pyproject.toml`` option or the selection invalidates everything —
no stale-cache false greens after a rule change.

Entries live as individual JSON files under ``artifacts/.lintcache/``
(already git-ignored via ``artifacts/*``) and are written atomically
(tempfile + :func:`os.replace`), so a crashed or concurrent run can
never leave a torn entry.  Corrupt or mismatched entries read as
misses, never as errors: the cache may only ever make linting faster,
not wronger.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .._atomic import atomic_write_text
from .findings import Finding

__all__ = ["LintCache", "ruleset_fingerprint"]

#: Bump when the entry layout changes; old entries then read as misses.
CACHE_VERSION = 1


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def ruleset_fingerprint(
    effective_options: Dict[str, Dict[str, Any]],
    select: Optional[Iterable[str]] = None,
) -> str:
    """Hash of everything that determines findings besides file content.

    Covers the analyzer implementation (every ``.py`` in this package),
    the effective per-rule options and the rule selection.
    """
    digest = hashlib.sha256()
    digest.update(f"cache-version:{CACHE_VERSION}\n".encode("utf-8"))
    package_dir = Path(__file__).resolve().parent
    for path in sorted(package_dir.glob("*.py")):
        digest.update(path.name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    digest.update(
        json.dumps(
            effective_options, sort_keys=True, default=repr
        ).encode("utf-8")
    )
    selected = "*" if select is None else ",".join(sorted(select))
    digest.update(f"\nselect:{selected}".encode("utf-8"))
    return digest.hexdigest()


class LintCache:
    """Per-file and per-tree finding cache under one directory."""

    def __init__(self, cache_dir: Path, fingerprint: str) -> None:
        self.cache_dir = cache_dir
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0

    @staticmethod
    def content_sha(data: bytes) -> str:
        return _sha256(data)

    def _entry_path(self, kind: str, key: str) -> Path:
        name = _sha256(f"{kind}\0{key}".encode("utf-8"))[:40]
        return self.cache_dir / f"{kind}-{name}.json"

    def _read(self, path: Path) -> Optional[Dict[str, Any]]:
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("version") != CACHE_VERSION:
            return None
        if entry.get("fingerprint") != self.fingerprint:
            return None
        return entry

    def _write(self, path: Path, entry: Dict[str, Any]) -> None:
        """Atomically publish one entry; failures are non-fatal.

        The cache is a pure accelerator: an unwritable cache directory
        must degrade to uncached linting, never fail the gate.
        """
        with contextlib.suppress(OSError):
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, json.dumps(entry, sort_keys=True))

    @staticmethod
    def _decode_findings(raw: Any) -> Optional[List[Finding]]:
        if not isinstance(raw, list):
            return None
        findings: List[Finding] = []
        try:
            for item in raw:
                findings.append(
                    Finding(
                        rule_id=item["rule"],
                        path=item["path"],
                        line=int(item["line"]),
                        col=int(item["col"]),
                        message=item["message"],
                    )
                )
        except (KeyError, TypeError, ValueError):
            return None
        return findings

    def get_file(
        self, relpath: str, file_sha: str
    ) -> Optional[List[Finding]]:
        entry = self._read(self._entry_path("file", relpath))
        if entry is None or entry.get("sha") != file_sha:
            self.misses += 1
            return None
        findings = self._decode_findings(entry.get("findings"))
        if findings is None:
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put_file(
        self, relpath: str, file_sha: str, findings: Sequence[Finding]
    ) -> None:
        self._write(
            self._entry_path("file", relpath),
            {
                "version": CACHE_VERSION,
                "fingerprint": self.fingerprint,
                "relpath": relpath,
                "sha": file_sha,
                "findings": [f.to_json_dict() for f in findings],
            },
        )

    def tree_key(
        self,
        file_hashes: Sequence[Tuple[str, str]],
        extra_files: Sequence[Path],
    ) -> str:
        """Key covering every source file plus out-of-tree inputs."""
        digest = hashlib.sha256()
        for relpath, sha in sorted(file_hashes):
            digest.update(f"{relpath}\0{sha}\n".encode("utf-8"))
        for path in extra_files:
            digest.update(str(path).encode("utf-8"))
            digest.update(b"\0")
            try:
                digest.update(_sha256(path.read_bytes()).encode())
            except OSError:
                digest.update(b"<unreadable>")
            digest.update(b"\n")
        return digest.hexdigest()

    def get_tree(self, tree_key: str) -> Optional[List[Finding]]:
        entry = self._read(self._entry_path("tree", "tree"))
        if entry is None or entry.get("key") != tree_key:
            self.misses += 1
            return None
        findings = self._decode_findings(entry.get("findings"))
        if findings is None:
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put_tree(
        self, tree_key: str, findings: Sequence[Finding]
    ) -> None:
        self._write(
            self._entry_path("tree", "tree"),
            {
                "version": CACHE_VERSION,
                "fingerprint": self.fingerprint,
                "key": tree_key,
                "findings": [f.to_json_dict() for f in findings],
            },
        )
