"""Multi-tenant fabric arbitration service.

The paper's run-time system manages one application's Special
Instructions on one reconfigurable fabric.  This package scales that
picture out: N tenants share the fabric through a long-running arbiter
that performs admission control (token buckets, atom budgets, in-flight
caps), priority arbitration with preemptive eviction, deadline-aware
overload shedding, circuit-breaker degradation to cISA-only answers
under fault storms, and content-addressed answer reuse — all on a
deterministic virtual clock so soak runs are bit-identical across
reruns.

Entry points: build a fleet with :func:`make_tenant_fleet` (or
hand-craft :class:`TenantSpec` instances), then call
:func:`run_service`; the :class:`ServiceReport` it returns carries the
shed taxonomy, the never-drop invariant and the determinism digests.
"""

from .admission import SHED_REASONS, AdmissionController, TokenBucket
from .arbiter import SERVICE_JOURNAL_FORMAT, ServiceConfig, run_service
from .breaker import CircuitBreaker
from .report import ServiceReport, TenantStats
from .request import RequestRecord, ServiceRequest, generate_requests
from .tenant import PRIORITY_CLASSES, TenantSpec, make_tenant_fleet

__all__ = [
    "PRIORITY_CLASSES",
    "SERVICE_JOURNAL_FORMAT",
    "SHED_REASONS",
    "AdmissionController",
    "CircuitBreaker",
    "RequestRecord",
    "ServiceConfig",
    "ServiceReport",
    "ServiceRequest",
    "TenantSpec",
    "TenantStats",
    "TokenBucket",
    "generate_requests",
    "make_tenant_fleet",
    "run_service",
]
