"""Multi-tenant fabric arbitration service.

The paper's run-time system manages one application's Special
Instructions on one reconfigurable fabric.  This package scales that
picture out: N tenants share the fabric through a long-running arbiter
that performs admission control (token buckets, atom budgets, in-flight
caps), priority arbitration with preemptive eviction, deadline-aware
overload shedding, circuit-breaker degradation to cISA-only answers
under fault storms, and content-addressed answer reuse — all on a
deterministic virtual clock so soak runs are bit-identical across
reruns.

Entry points: build a fleet with :func:`make_tenant_fleet` (or
hand-craft :class:`TenantSpec` instances), then call
:func:`run_service`; the :class:`ServiceReport` it returns carries the
shed taxonomy, the never-drop invariant and the determinism digests.
A crashed run (the journal survives; see ``snapshot_every``) is resumed
with :func:`recover_service`; live reconfiguration is scheduled with
:class:`ControlEvent` instances (or ``--reconfig-at`` strings parsed by
:func:`parse_reconfig_spec`).
"""

from .admission import SHED_REASONS, AdmissionController, TokenBucket
from .arbiter import (
    SERVICE_JOURNAL_FORMAT,
    ServiceConfig,
    recover_service,
    run_service,
)
from .breaker import CircuitBreaker
from .control import (
    CONTROL_ACTIONS,
    ControlEvent,
    derive_join_tenant,
    parse_reconfig_spec,
    validate_control_events,
)
from .report import ServiceReport, TenantStats
from .request import RequestRecord, ServiceRequest, generate_requests
from .snapshot import (
    SNAPSHOT_FORMAT,
    config_fingerprint,
    list_snapshots,
    load_latest_snapshot,
    snapshot_dir,
    write_snapshot,
)
from .tenant import PRIORITY_CLASSES, TenantSpec, make_tenant_fleet

__all__ = [
    "CONTROL_ACTIONS",
    "PRIORITY_CLASSES",
    "SERVICE_JOURNAL_FORMAT",
    "SHED_REASONS",
    "SNAPSHOT_FORMAT",
    "AdmissionController",
    "CircuitBreaker",
    "ControlEvent",
    "RequestRecord",
    "ServiceConfig",
    "ServiceReport",
    "ServiceRequest",
    "TenantSpec",
    "TenantStats",
    "TokenBucket",
    "config_fingerprint",
    "derive_join_tenant",
    "generate_requests",
    "list_snapshots",
    "load_latest_snapshot",
    "make_tenant_fleet",
    "parse_reconfig_spec",
    "recover_service",
    "run_service",
    "snapshot_dir",
    "validate_control_events",
    "write_snapshot",
]
