"""Deterministic live-reconfiguration control events.

A control event changes the *shape* of a running service — the tenant
fleet or the fabric AC pool — at a fixed virtual tick:

* ``tenant_join``  — a new tenant (with a full :class:`TenantSpec`)
  starts submitting; its request stream is seeded from the service seed
  and the tenant *name*, so joining never perturbs anyone else's
  arrivals.
* ``tenant_leave`` — the tenant drains gracefully: queued and in-flight
  work finishes normally, new arrivals are shed as ``draining``, and a
  ``drained`` journal line marks the tick its last request completed.
* ``ac_add``       — ``count`` fresh containers grow the fabric.
* ``ac_remove``    — ``count`` containers are retired (highest live
  index first); over-committed leases are preempted through the normal
  preemption path with reason ``retire``.

Control events are part of the run's *identity*: they enter the config
fingerprint and the journal, so a recovery must be invoked with the
same control schedule and a rerun with the same schedule is
bit-identical.  The CLI surface is ``--reconfig-at TICK:ACTION[:ARG]``
(repeatable), parsed by :func:`parse_reconfig_spec`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from ..errors import ServiceError
from ..exec.spec import WorkloadSpec
from .tenant import TenantSpec

__all__ = [
    "CONTROL_ACTIONS",
    "ControlEvent",
    "parse_reconfig_spec",
    "derive_join_tenant",
    "validate_control_events",
]

#: The live-reconfiguration vocabulary.
CONTROL_ACTIONS: Tuple[str, ...] = (
    "tenant_join",
    "tenant_leave",
    "ac_add",
    "ac_remove",
)


@dataclass(frozen=True)
class ControlEvent:
    """One scheduled reconfiguration of the running service.

    ``name`` is the tenant for the ``tenant_*`` actions (and must match
    ``spec.name`` on a join); ``count`` is the container delta for the
    ``ac_*`` actions.  ``spec`` is required for ``tenant_join`` — the
    joining tenant's full specification.
    """

    tick: int
    action: str
    name: str = ""
    count: int = 1
    spec: Optional[TenantSpec] = None

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ServiceError(
                f"control event tick must be >= 0, got {self.tick}"
            )
        if self.action not in CONTROL_ACTIONS:
            raise ServiceError(
                f"unknown control action {self.action!r}; known: "
                f"{list(CONTROL_ACTIONS)}"
            )
        if self.action in ("tenant_join", "tenant_leave"):
            if not self.name:
                raise ServiceError(
                    f"{self.action} at tick {self.tick} needs a tenant "
                    f"name"
                )
        if self.action == "tenant_join":
            if self.spec is not None and self.spec.name != self.name:
                raise ServiceError(
                    f"tenant_join at tick {self.tick}: spec name "
                    f"{self.spec.name!r} != event name {self.name!r}"
                )
        if self.action in ("ac_add", "ac_remove") and self.count < 1:
            raise ServiceError(
                f"{self.action} at tick {self.tick} needs count >= 1, "
                f"got {self.count}"
            )

    def to_json_dict(self) -> Dict[str, Any]:
        """Canonical form — feeds the config fingerprint."""
        doc: Dict[str, Any] = {
            "tick": self.tick,
            "action": self.action,
        }
        if self.name:
            doc["name"] = self.name
        if self.action in ("ac_add", "ac_remove"):
            doc["count"] = self.count
        if self.spec is not None:
            doc["spec"] = dataclasses.asdict(self.spec)
        return doc


def parse_reconfig_spec(text: str) -> ControlEvent:
    """Parse one ``--reconfig-at`` value: ``TICK:ACTION[:ARG]``.

    ``ARG`` is the tenant name for ``tenant_join``/``tenant_leave`` and
    the (optional, default 1) container count for ``ac_add``/
    ``ac_remove``.  A join parsed from the CLI carries no spec yet —
    the caller derives one (:func:`derive_join_tenant`) and attaches it
    with :func:`dataclasses.replace`.
    """
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ServiceError(
            f"malformed --reconfig-at {text!r}; expected "
            f"TICK:ACTION[:ARG]"
        )
    try:
        tick = int(parts[0])
    except ValueError:
        raise ServiceError(
            f"malformed --reconfig-at {text!r}: tick {parts[0]!r} is "
            f"not an integer"
        ) from None
    action = parts[1]
    if action not in CONTROL_ACTIONS:
        raise ServiceError(
            f"malformed --reconfig-at {text!r}: unknown action "
            f"{action!r}; known: {list(CONTROL_ACTIONS)}"
        )
    if action in ("tenant_join", "tenant_leave"):
        if len(parts) != 3 or not parts[2]:
            raise ServiceError(
                f"malformed --reconfig-at {text!r}: {action} needs a "
                f"tenant name (TICK:{action}:NAME)"
            )
        return ControlEvent(tick=tick, action=action, name=parts[2])
    count = 1
    if len(parts) == 3:
        try:
            count = int(parts[2])
        except ValueError:
            raise ServiceError(
                f"malformed --reconfig-at {text!r}: count {parts[2]!r} "
                f"is not an integer"
            ) from None
    return ControlEvent(tick=tick, action=action, count=count)


def derive_join_tenant(
    name: str,
    seed: int,
    mean_gap: int = 160,
    deadline_slack: int = 600,
    variants: int = 4,
) -> TenantSpec:
    """A deterministic spec for a CLI-named joining tenant.

    Joining tenants from the CLI get the fleet defaults (HEF,
    ``standard`` priority, 2-AC lease) with a workload seeded from the
    service seed and the tenant *name* — the same arguments always
    derive the identical spec, so a recovery re-derives it exactly.
    """
    name_salt = sum(ord(ch) for ch in name)
    return TenantSpec(
        name=name,
        workload=WorkloadSpec(
            frames=1, seed=seed + name_salt, max_traces=2
        ),
        scheduler="HEF",
        priority="standard",
        lease_acs=2,
        mean_gap=mean_gap,
        deadline_slack=deadline_slack,
        variants=variants,
    )


def validate_control_events(
    initial_tenants: Sequence[str],
    events: Sequence[ControlEvent],
) -> None:
    """Reject structurally impossible control schedules up front.

    Checks the fleet-membership story end to end: joins need a spec and
    a fresh name (never one from the initial fleet, an earlier join, or
    a departed tenant — request IDs and stats are keyed by name);
    leaves need a currently-active tenant.  Raises
    :class:`ServiceError` on the first violation.
    """
    active = set(initial_tenants)
    ever = set(initial_tenants)
    ordered = sorted(enumerate(events), key=lambda e: (e[1].tick, e[0]))
    for _, event in ordered:
        if event.action == "tenant_join":
            if event.spec is None:
                raise ServiceError(
                    f"tenant_join {event.name!r} at tick {event.tick} "
                    f"has no TenantSpec attached"
                )
            if event.name in ever:
                raise ServiceError(
                    f"tenant_join at tick {event.tick}: name "
                    f"{event.name!r} is already taken (names are never "
                    f"reused — stats and request IDs key on them)"
                )
            active.add(event.name)
            ever.add(event.name)
        elif event.action == "tenant_leave":
            if event.name not in active:
                raise ServiceError(
                    f"tenant_leave at tick {event.tick}: {event.name!r} "
                    f"is not an active tenant"
                )
            active.discard(event.name)
