"""The multi-tenant fabric arbiter: one virtual-clock event loop.

The arbiter is the paper's run-time system scaled out: instead of one
application owning the fabric, N tenants submit hot-spot
scheduling/simulation requests with deadlines, and the service decides
*who* gets Atom Containers *when*:

* **Admission** — every arrival passes the
  :class:`~repro.service.admission.AdmissionController` gates (token
  bucket, in-flight cap, atom budget, bounded queue, deadline triage);
  sheds are tagged with the taxonomy and counted per tenant.
* **Arbitration** — admitted requests queue by
  ``(priority, deadline, seq)``; dispatch leases
  :attr:`~repro.fabric.fabric.Fabric.free_acs` containers per request
  and plans the tenant's hot spot against exactly that lease
  (:meth:`~repro.core.runtime.RuntimeManager.plan_with_lease` seeds the
  admission estimates).  Higher-priority arrivals preempt lower-priority
  leases; container faults force preemption when the fabric shrinks
  below the granted leases.  Preempted requests re-queue after a
  seeded-jitter backoff (:func:`~repro.fabric.faults.backoff_delay` on
  the virtual clock) — **admitted requests are never dropped**.
* **Degradation** — a fault storm trips the
  :class:`~repro.service.breaker.CircuitBreaker`; while it is open (or
  when the fabric can no longer fit a lease at all) requests are served
  the cISA-only software answer instead of failing.
* **Answer reuse** — results are content-addressed: an in-run memo plus
  the optional :class:`~repro.exec.cache.ResultCache` (read-through)
  serve repeated requests as admission-free cache hits.

Everything runs on an integer virtual clock with a ``(tick, kind, seq)``
event heap and seeded randomness only, so a rerun with the same fleet,
config and a cold cache produces a bit-identical journal and identical
per-tenant digests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple, Union

from ..core.runtime import RuntimeManager
from ..core.schedulers import get_scheduler
from ..errors import ServiceError
from ..exec.cache import CODE_VERSION_SALT, ResultCache, canonical_json, cell_key
from ..exec.runner import execute_cell
from ..exec.spec import SweepCell
from ..fabric.atom import AtomRegistry
from ..fabric.fabric import Fabric
from ..fabric.faults import backoff_delay
from ..h264.silibrary import HOT_SPOT_SIS, build_atom_registry, build_si_library
from ..obs.events import (
    BreakerTransition,
    ContainerDead,
    DegradedServed,
    RequestAdmitted,
    RequestCompleted,
    RequestPreempted,
    RequestShed,
)
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from .admission import AdmissionController
from .breaker import CircuitBreaker
from .report import ServiceReport, TenantStats
from .request import RequestRecord, ServiceRequest, generate_requests
from .tenant import TenantSpec

__all__ = ["SERVICE_JOURNAL_FORMAT", "ServiceConfig", "run_service"]

#: Format tag of the service journal's header line.
SERVICE_JOURNAL_FORMAT = 1

#: Event-kind ranks: at one tick, faults land first (capacity shrinks
#: before new work), then completions free leases, then arrivals are
#: admitted, then backoff-gated dispatch polls run.
_FAULT, _COMPLETE, _ARRIVAL, _DISPATCH = 0, 1, 2, 3

#: Fallback admission estimate (ticks) before planning seeds better ones.
_DEFAULT_EST_TICKS = 24

#: Plan-derived estimate: entry cost plus per-scheduled-atom cost.
_EST_BASE_TICKS = 8
_EST_TICKS_PER_ATOM = 6

#: Virtual latency of serving an answer straight from the cache.
_HIT_LATENCY_TICKS = 1


@dataclass(frozen=True)
class ServiceConfig:
    """Arbiter configuration (everything on the virtual clock)."""

    num_acs: int = 8
    duration: int = 20_000
    seed: int = 2008
    #: Global bound on queued admitted requests.
    queue_limit: int = 32
    #: Virtual-clock scale: simulated cycles per service tick (at the
    #: paper's 100 MHz prototype, 200k cycles = 2 ms per tick).
    cycles_per_tick: int = 200_000
    #: Priority preemptions per request before it turns non-preemptible.
    max_preemptions: int = 3
    #: Seeded-backoff parameters for preempted-request requeueing.
    backoff_base: float = 8.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    breaker_threshold: int = 3
    breaker_window: int = 400
    breaker_cooldown: int = 800
    #: Virtual ticks at which one container dies (hard-fault storm).
    fault_ticks: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.num_acs < 1:
            raise ServiceError(f"num_acs must be >= 1, got {self.num_acs}")
        if self.duration < 1:
            raise ServiceError(
                f"duration must be >= 1, got {self.duration}"
            )
        if self.queue_limit < 1:
            raise ServiceError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.cycles_per_tick < 1:
            raise ServiceError(
                f"cycles_per_tick must be >= 1, got "
                f"{self.cycles_per_tick}"
            )
        if self.max_preemptions < 0:
            raise ServiceError(
                f"max_preemptions must be >= 0, got "
                f"{self.max_preemptions}"
            )
        if self.backoff_base <= 0 or self.backoff_factor < 1.0:
            raise ServiceError(
                f"backoff needs base > 0 and factor >= 1, got "
                f"{self.backoff_base}/{self.backoff_factor}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ServiceError(
                f"backoff_jitter must be in [0, 1], got "
                f"{self.backoff_jitter}"
            )
        if any(tick < 0 for tick in self.fault_ticks):
            raise ServiceError(
                f"fault_ticks must be non-negative: {self.fault_ticks}"
            )


class _ServiceJournal:
    """Canonical-JSONL journal with a running content digest.

    The digest is computed over the exact bytes written, so two runs
    agree on the journal digest iff the files are bit-identical —
    whether or not a file was actually requested.
    """

    def __init__(self, path: Optional[Union[str, Path]]) -> None:
        self._hash = hashlib.sha256()
        self._handle: Optional[TextIO] = None
        if path is not None:
            self._handle = Path(path).open("w", encoding="ascii")

    def write(self, record: Dict[str, Any]) -> None:
        line = canonical_json(record)
        self._hash.update(line.encode("ascii") + b"\n")
        if self._handle is not None:
            self._handle.write(line + "\n")

    def digest(self) -> str:
        return self._hash.hexdigest()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class _Arbiter:
    """One service run's mutable state (see module docstring)."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        config: ServiceConfig,
        cache: Optional[ResultCache],
        tracer: Tracer,
        metrics: Optional[MetricsRegistry],
        journal: _ServiceJournal,
    ) -> None:
        self.tenants = {tenant.name: tenant for tenant in tenants}
        if len(self.tenants) != len(tenants):
            raise ServiceError("tenant names must be unique")
        self.config = config
        self.cache = cache
        self.tracer = tracer
        self.metrics = metrics
        self.journal = journal
        self.fabric = Fabric(self._registry(), config.num_acs)
        self.admission = AdmissionController(
            tenants,
            queue_limit=config.queue_limit,
            default_est_ticks=_DEFAULT_EST_TICKS,
        )
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            window=config.breaker_window,
            cooldown=config.breaker_cooldown,
        )
        self.rng = random.Random(config.seed)
        self.stats = {
            tenant.name: TenantStats(
                name=tenant.name, priority=tenant.priority
            )
            for tenant in tenants
        }
        self.records: List[RequestRecord] = []
        self.queue: List[RequestRecord] = []
        self.running: List[RequestRecord] = []
        self.heap: List[Tuple[int, int, int, int, int]] = []
        self.memo: Dict[str, Dict[str, Any]] = {}
        self.faults = 0
        self.end_tick = 0
        self._push_seq = 0

    # -- setup -------------------------------------------------------------

    def _registry(self) -> AtomRegistry:
        return build_atom_registry()

    def seed_estimates(self) -> None:
        """Seed per-tenant admission estimates from leased planning.

        For each tenant and each of its hot spots, the run-time manager
        plans against the tenant's *lease* (zero included — that is the
        pure-software plan); the scheduled-atom count prices the
        request.  This is the paper's planning machinery answering the
        service's triage question before any traffic flows.
        """
        registry = build_atom_registry()
        library = build_si_library(registry)
        empty = library.space.molecule({})
        for name in sorted(self.tenants):
            tenant = self.tenants[name]
            manager = RuntimeManager(
                library,
                get_scheduler(tenant.scheduler),
                num_acs=self.config.num_acs,
            )
            estimates: List[int] = []
            for hot_spot in tenant.hot_spots:
                plan = manager.plan_with_lease(
                    hot_spot,
                    HOT_SPOT_SIS[hot_spot],
                    empty,
                    tenant.lease_acs,
                )
                estimates.append(
                    _EST_BASE_TICKS
                    + _EST_TICKS_PER_ATOM * plan.num_scheduled_atoms
                )
            self.admission.seed_estimate(
                name, sum(estimates) // len(estimates)
            )

    # -- event plumbing ----------------------------------------------------

    def push(self, tick: int, kind: int, a: int = -1, b: int = -1) -> None:
        self._push_seq += 1
        heapq.heappush(self.heap, (tick, kind, self._push_seq, a, b))

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    # -- result serving ----------------------------------------------------

    def _cell_for(self, request: ServiceRequest, degraded: bool) -> SweepCell:
        tenant = self.tenants[request.tenant]
        workload = dataclasses.replace(
            tenant.workload,
            hot_spots=(request.hot_spot,),
            seed=tenant.workload.seed + request.variant,
        )
        if degraded or request.lease_acs == 0:
            return SweepCell(
                system="Software", num_acs=0, workload=workload
            )
        return SweepCell(
            system="RISPP",
            scheduler=tenant.scheduler,
            num_acs=request.lease_acs,
            workload=workload,
        )

    def _probe(self, cell: SweepCell) -> Optional[Dict[str, Any]]:
        """A previously-served answer for ``cell``, if any (no compute)."""
        key = cell_key(cell, self._salt())
        payload = self.memo.get(key)
        if payload is not None:
            return payload
        if self.cache is not None and self.cache.contains(cell):
            payload = self.cache.get(cell)
            if payload is not None:
                self.memo[key] = payload
            return payload
        return None

    def _execute(self, cell: SweepCell) -> Tuple[Dict[str, Any], bool]:
        """The answer for ``cell``: memo, then read-through cache."""
        key = cell_key(cell, self._salt())
        memoised = self.memo.get(key)
        if memoised is not None:
            return memoised, True
        if self.cache is not None:
            payload, hit = self.cache.read_through(
                cell, lambda: execute_cell(cell).to_json_dict()
            )
        else:
            payload, hit = execute_cell(cell).to_json_dict(), False
        self.memo[key] = payload
        return payload, hit

    def _salt(self) -> str:
        return self.cache.salt if self.cache is not None else (
            CODE_VERSION_SALT
        )

    @staticmethod
    def _digest(payload: Dict[str, Any]) -> str:
        return hashlib.sha256(
            canonical_json(payload).encode("ascii")
        ).hexdigest()[:16]

    def _service_ticks(self, payload: Dict[str, Any]) -> int:
        return max(
            1, int(payload["total_cycles"]) // self.config.cycles_per_tick
        )

    # -- the event loop ----------------------------------------------------

    def run(self) -> ServiceReport:
        requests = generate_requests(
            list(self.tenants.values()),
            self.config.duration,
            self.config.seed,
        )
        self.journal.write(
            {
                "kind": "header",
                "format": SERVICE_JOURNAL_FORMAT,
                "salt": self._salt(),
                "seed": self.config.seed,
                "duration": self.config.duration,
                "num_acs": self.config.num_acs,
                "tenants": sorted(self.tenants),
            }
        )
        self.seed_estimates()
        for index, request in enumerate(requests):
            self.push(request.arrival, _ARRIVAL, index)
        for tick in self.config.fault_ticks:
            self.push(tick, _FAULT)
        while self.heap:
            tick, kind, _seq, a, b = heapq.heappop(self.heap)
            now = self.end_tick = max(self.end_tick, tick)
            transition = self.breaker.poll(now)
            if transition is not None:
                self._breaker_event(now, transition)
            if kind == _FAULT:
                self._on_fault(now)
            elif kind == _COMPLETE:
                self._on_complete(now, a, b)
            elif kind == _ARRIVAL:
                self._on_arrival(now, requests[a])
            # _DISPATCH events carry no payload: the dispatch pass below
            # runs after *every* event anyway; the heap entry only
            # guarantees the loop wakes up when a backoff gate opens.
            self._dispatch(now)
        if self.queue or self.running:
            raise ServiceError(
                f"arbiter drained its event heap with {len(self.queue)} "
                f"queued and {len(self.running)} running requests left"
            )
        return self._report()

    # -- event handlers ----------------------------------------------------

    def _on_arrival(self, now: int, request: ServiceRequest) -> None:
        stats = self.stats[request.tenant]
        stats.submitted += 1
        self._count("service.submitted")
        cell = self._cell_for(request, degraded=False)
        payload = self._probe(cell)
        if payload is not None:
            # Answer reuse: the content-addressed result server already
            # holds this answer — serve it admission-free.
            record = RequestRecord(
                request=request,
                status="running",
                admitted=False,
                cache_hit=True,
                service_ticks=_HIT_LATENCY_TICKS,
                digest=self._digest(payload),
            )
            record.started = now
            record.index = len(self.records)
            self.records.append(record)
            self.running.append(record)
            self.journal.write(
                {
                    "kind": "hit",
                    "tick": now,
                    "tenant": request.tenant,
                    "request": request.request_id,
                }
            )
            self.push(
                now + _HIT_LATENCY_TICKS,
                _COMPLETE,
                record.index,
                record.epoch,
            )
            return
        reason = self.admission.admit(
            request,
            now,
            queue_depth=len(self.queue),
            backlog_ticks=sum(r.est_ticks for r in self.queue),
            capacity_slots=max(
                1,
                self.fabric.usable_acs // max(1, request.lease_acs),
            ),
        )
        if reason is not None:
            stats.shed[reason] = stats.shed.get(reason, 0) + 1
            self._count(f"service.shed.{reason}")
            if self.tracer.enabled:
                self.tracer.emit(
                    RequestShed(
                        cycle=now,
                        tenant=request.tenant,
                        request_id=request.request_id,
                        reason=reason,
                    )
                )
            self.journal.write(
                {
                    "kind": "shed",
                    "tick": now,
                    "tenant": request.tenant,
                    "request": request.request_id,
                    "reason": reason,
                }
            )
            return
        stats.admitted += 1
        self._count("service.admitted")
        record = RequestRecord(
            request=request,
            est_ticks=self.admission.estimate(request.tenant),
        )
        record.index = len(self.records)
        self.records.append(record)
        self.queue.append(record)
        if self.tracer.enabled:
            self.tracer.emit(
                RequestAdmitted(
                    cycle=now,
                    tenant=request.tenant,
                    request_id=request.request_id,
                    hot_spot=request.hot_spot,
                    deadline=request.deadline,
                    lease_acs=request.lease_acs,
                )
            )
        self.journal.write(
            {
                "kind": "admit",
                "tick": now,
                "tenant": request.tenant,
                "request": request.request_id,
                "hot_spot": request.hot_spot,
                "deadline": request.deadline,
            }
        )

    def _on_fault(self, now: int) -> None:
        alive = [
            c.index for c in self.fabric.containers if not c.is_faulty
        ]
        if not alive:
            return
        index = alive[0]
        self.fabric.kill_container(index)
        self.faults += 1
        self._count("service.faults")
        if self.tracer.enabled:
            self.tracer.emit(
                ContainerDead(cycle=now, container_index=index)
            )
        self.journal.write(
            {"kind": "fault", "tick": now, "container": index}
        )
        transition = self.breaker.on_fault(now)
        if transition is not None:
            self._breaker_event(now, transition)
        # Shrunken fabric: force-preempt the lowest-priority leases
        # until the granted leases fit the remaining capacity again.
        while self.fabric.overcommitted_acs > 0:
            holders = [r for r in self.running if r.holds_lease]
            if not holders:
                break
            holders.sort(
                key=lambda r: (
                    r.request.priority,
                    -r.request.deadline,
                    -r.request.seq,
                )
            )
            self._preempt(holders[0], now, "fault")

    def _on_complete(self, now: int, index: int, epoch: int) -> None:
        record = self.records[index]
        if record.status != "running" or record.epoch != epoch:
            return  # stale completion of a preempted dispatch
        record.status = "done"
        record.completed = now
        request = record.request
        stats = self.stats[request.tenant]
        latency = now - request.arrival
        stats.latencies.append(latency)
        stats.completions.append(
            {
                "request": request.request_id,
                "tick": now,
                "digest": record.digest,
                "degraded": record.degraded,
                "cache_hit": record.cache_hit,
            }
        )
        if not record.admitted:
            stats.cache_hits += 1
            self._count("service.cache_hits")
        else:
            stats.completed += 1
            self._count("service.completed")
            self.admission.release(request)
            if record.degraded:
                stats.degraded += 1
                self._count("service.degraded")
        if record.holds_lease:
            self.fabric.release_acs(request.lease_acs)
            record.holds_lease = False
            self.admission.observe_service_ticks(
                request.tenant, record.service_ticks
            )
            transition = self.breaker.on_success(now)
            if transition is not None:
                self._breaker_event(now, transition)
        self.running.remove(record)
        self._observe("service.latency_ticks", float(latency))
        if self.tracer.enabled:
            self.tracer.emit(
                RequestCompleted(
                    cycle=now,
                    tenant=request.tenant,
                    request_id=request.request_id,
                    latency=latency,
                    degraded=record.degraded,
                    cache_hit=record.cache_hit,
                )
            )
        self.journal.write(
            {
                "kind": "complete",
                "tick": now,
                "tenant": request.tenant,
                "request": request.request_id,
                "latency": latency,
                "degraded": record.degraded,
                "cache_hit": record.cache_hit,
                "digest": record.digest,
            }
        )

    def _breaker_event(self, now: int, state: str) -> None:
        if state == "open":
            self._count("service.breaker_trips")
        if self.tracer.enabled:
            self.tracer.emit(
                BreakerTransition(
                    cycle=now,
                    state=state,
                    faults=self.breaker.faults_in_window(now),
                )
            )
        self.journal.write(
            {"kind": "breaker", "tick": now, "state": state}
        )

    # -- dispatch and preemption -------------------------------------------

    def _dispatch(self, now: int) -> None:
        while True:
            eligible = [r for r in self.queue if r.not_before <= now]
            if not eligible:
                return
            eligible.sort(
                key=lambda r: (
                    -r.request.priority,
                    r.request.deadline,
                    r.request.seq,
                )
            )
            head = eligible[0]
            lease = head.request.lease_acs
            if (
                self.breaker.is_open(now)
                or lease > self.fabric.usable_acs
                or lease == 0
            ):
                self._dispatch_degraded(head, now)
                continue
            if lease <= self.fabric.free_acs:
                self._dispatch_fabric(head, now)
                continue
            if not self._preempt_for(head, now):
                return  # capacity busy; a completion will wake us

    def _start(self, record: RequestRecord, now: int) -> None:
        self.queue.remove(record)
        self.running.append(record)
        record.status = "running"
        record.started = now
        record.epoch += 1

    def _dispatch_fabric(self, record: RequestRecord, now: int) -> None:
        request = record.request
        self.fabric.reserve_acs(request.lease_acs)
        record.holds_lease = True
        record.degraded = False
        payload, hit = self._execute(
            self._cell_for(request, degraded=False)
        )
        record.cache_hit = record.cache_hit or hit
        record.digest = self._digest(payload)
        record.service_ticks = self._service_ticks(payload)
        self._observe(
            "service.service_ticks", float(record.service_ticks)
        )
        self._start(record, now)
        self.push(
            now + record.service_ticks,
            _COMPLETE,
            record.index,
            record.epoch,
        )

    def _dispatch_degraded(self, record: RequestRecord, now: int) -> None:
        request = record.request
        if self.breaker.is_open(now):
            reason = "breaker_open"
        elif request.lease_acs > self.fabric.usable_acs:
            reason = "capacity_lost"
        else:
            reason = "cisa_tenant"
        record.degraded = True
        record.degrade_reason = reason
        record.holds_lease = False
        payload, hit = self._execute(
            self._cell_for(request, degraded=True)
        )
        record.cache_hit = record.cache_hit or hit
        record.digest = self._digest(payload)
        record.service_ticks = self._service_ticks(payload)
        self._start(record, now)
        if self.tracer.enabled:
            self.tracer.emit(
                DegradedServed(
                    cycle=now,
                    tenant=request.tenant,
                    request_id=request.request_id,
                    reason=reason,
                )
            )
        self.journal.write(
            {
                "kind": "degraded",
                "tick": now,
                "tenant": request.tenant,
                "request": request.request_id,
                "reason": reason,
            }
        )
        self.push(
            now + record.service_ticks,
            _COMPLETE,
            record.index,
            record.epoch,
        )

    def _preempt_for(self, head: RequestRecord, now: int) -> bool:
        """Free capacity for ``head`` by preempting lower priorities."""
        needed = head.request.lease_acs - self.fabric.free_acs
        victims = [
            r
            for r in self.running
            if r.holds_lease
            and r.preemptions < self.config.max_preemptions
            and r.request.priority < head.request.priority
        ]
        victims.sort(
            key=lambda r: (
                r.request.priority,
                -r.request.deadline,
                -r.request.seq,
            )
        )
        chosen: List[RequestRecord] = []
        freed = 0
        for victim in victims:
            if freed >= needed:
                break
            chosen.append(victim)
            freed += victim.request.lease_acs
        if freed < needed:
            return False
        for victim in chosen:
            self._preempt(victim, now, "priority")
        return True

    def _preempt(
        self, record: RequestRecord, now: int, reason: str
    ) -> None:
        request = record.request
        self.fabric.release_acs(request.lease_acs)
        record.holds_lease = False
        record.status = "queued"
        record.epoch += 1  # invalidate the scheduled completion
        record.preemptions += 1
        backoff = max(
            1,
            int(
                round(
                    backoff_delay(
                        self.config.backoff_base,
                        self.config.backoff_factor,
                        record.preemptions,
                        jitter=self.config.backoff_jitter,
                        rng=self.rng,
                    )
                )
            ),
        )
        record.not_before = now + backoff
        self.running.remove(record)
        self.queue.append(record)
        self.push(record.not_before, _DISPATCH)
        stats = self.stats[request.tenant]
        stats.preemptions += 1
        self._count("service.preemptions")
        if self.tracer.enabled:
            self.tracer.emit(
                RequestPreempted(
                    cycle=now,
                    tenant=request.tenant,
                    request_id=request.request_id,
                    reason=reason,
                    preemptions=record.preemptions,
                    backoff=backoff,
                )
            )
        self.journal.write(
            {
                "kind": "preempt",
                "tick": now,
                "tenant": request.tenant,
                "request": request.request_id,
                "reason": reason,
                "backoff": backoff,
            }
        )

    # -- reporting ---------------------------------------------------------

    def _report(self) -> ServiceReport:
        report = ServiceReport(
            duration=self.config.duration,
            num_acs=self.config.num_acs,
            end_tick=self.end_tick,
            tenants=self.stats,
            breaker_trips=self.breaker.trips,
            faults=self.faults,
            journal_digest=self.journal.digest(),
        )
        if report.dropped_admitted != 0:
            raise ServiceError(
                f"never-drop invariant violated: "
                f"{report.dropped_admitted} admitted requests did not "
                f"complete"
            )
        return report


def run_service(
    tenants: Sequence[TenantSpec],
    config: Optional[ServiceConfig] = None,
    cache: Optional[ResultCache] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    journal_path: Optional[Union[str, Path]] = None,
) -> ServiceReport:
    """Run the multi-tenant fabric arbitration service to completion.

    Arrivals stop at ``config.duration`` ticks; the run then drains
    every admitted request (the virtual clock keeps advancing), so the
    report's never-drop invariant is checked over the *whole* stream.
    """
    config = config if config is not None else ServiceConfig()
    journal = _ServiceJournal(journal_path)
    try:
        arbiter = _Arbiter(
            tenants=tenants,
            config=config,
            cache=cache,
            tracer=tracer if tracer is not None else NULL_TRACER,
            metrics=metrics,
            journal=journal,
        )
        return arbiter.run()
    finally:
        journal.close()
