"""The multi-tenant fabric arbiter: one virtual-clock event loop.

The arbiter is the paper's run-time system scaled out: instead of one
application owning the fabric, N tenants submit hot-spot
scheduling/simulation requests with deadlines, and the service decides
*who* gets Atom Containers *when*:

* **Admission** — every arrival passes the
  :class:`~repro.service.admission.AdmissionController` gates (token
  bucket, in-flight cap, atom budget, bounded queue, deadline triage);
  sheds are tagged with the taxonomy and counted per tenant.
* **Arbitration** — admitted requests queue by
  ``(priority, deadline, seq)``; dispatch leases
  :attr:`~repro.fabric.fabric.Fabric.free_acs` containers per request
  and plans the tenant's hot spot against exactly that lease
  (:meth:`~repro.core.runtime.RuntimeManager.plan_with_lease` seeds the
  admission estimates).  Higher-priority arrivals preempt lower-priority
  leases; container faults force preemption when the fabric shrinks
  below the granted leases.  Preempted requests re-queue after a
  seeded-jitter backoff (:func:`~repro.fabric.faults.backoff_delay` on
  the virtual clock) — **admitted requests are never dropped**.
* **Degradation** — a fault storm trips the
  :class:`~repro.service.breaker.CircuitBreaker`; while it is open (or
  when the fabric can no longer fit a lease at all) requests are served
  the cISA-only software answer instead of failing.
* **Answer reuse** — results are content-addressed: an in-run memo plus
  the optional :class:`~repro.exec.cache.ResultCache` (read-through)
  serve repeated requests as admission-free cache hits.
* **Live reconfiguration** — a deterministic
  :class:`~repro.service.control.ControlEvent` schedule joins/drains
  tenants and grows/shrinks the AC pool mid-run; leaving tenants finish
  their admitted work (new arrivals shed as ``draining``), removed
  containers evict over-committed leases through the normal preemption
  path (reason ``retire``).
* **Crash safety** — with ``snapshot_every`` set (and a journal on
  disk), the arbiter periodically persists its complete state
  (:mod:`repro.service.snapshot`); :func:`recover_service` restores the
  newest valid snapshot — or replays from tick 0 — and re-executes,
  verifying every regenerated journal line byte-for-byte against the
  on-disk tail, so a run killed at *any* tick recovers to bit-identical
  digests and reports.

Everything runs on an integer virtual clock with a ``(tick, kind, seq)``
event heap and seeded randomness only, so a rerun with the same fleet,
config, control schedule and a cold cache produces a bit-identical
journal and identical per-tenant digests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import json
import os
import random
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, TextIO, Tuple, Union

from .._atomic import trim_torn_tail
from ..core.runtime import RuntimeManager
from ..core.schedulers import get_scheduler
from ..errors import RecoveryError, ServiceCrash, ServiceError
from ..exec.cache import CODE_VERSION_SALT, ResultCache, canonical_json, cell_key
from ..exec.runner import execute_cell
from ..exec.spec import SweepCell
from ..fabric.atom import AtomRegistry
from ..fabric.fabric import Fabric
from ..fabric.faults import backoff_delay
from ..h264.silibrary import HOT_SPOT_SIS, build_atom_registry, build_si_library
from ..obs.events import (
    AcRetired,
    BreakerTransition,
    ContainerDead,
    DegradedServed,
    RequestAdmitted,
    RequestCompleted,
    RequestPreempted,
    RequestShed,
    ServiceRecovered,
    SnapshotWritten,
    TenantDrained,
    TenantJoined,
)
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from .admission import AdmissionController
from .breaker import CircuitBreaker
from .control import ControlEvent, validate_control_events
from .report import ServiceReport, TenantStats
from .request import RequestRecord, ServiceRequest, generate_requests
from .snapshot import (
    SNAPSHOT_FORMAT,
    config_fingerprint,
    load_latest_snapshot,
    write_snapshot,
)
from .tenant import TenantSpec

__all__ = [
    "SERVICE_JOURNAL_FORMAT",
    "ServiceConfig",
    "run_service",
    "recover_service",
]

#: Format tag of the service journal's header line.  v2 added the
#: config ``fingerprint`` field (crash recovery cross-checks it).
SERVICE_JOURNAL_FORMAT = 2

#: Event-kind ranks: at one tick, faults land first (capacity shrinks
#: before new work), then control events reshape the fleet, then
#: completions free leases, then arrivals are admitted, then
#: backoff-gated dispatch polls run.
_FAULT, _CONTROL, _COMPLETE, _ARRIVAL, _DISPATCH = 0, 1, 2, 3, 4

#: Fallback admission estimate (ticks) before planning seeds better ones.
_DEFAULT_EST_TICKS = 24

#: Plan-derived estimate: entry cost plus per-scheduled-atom cost.
_EST_BASE_TICKS = 8
_EST_TICKS_PER_ATOM = 6

#: Virtual latency of serving an answer straight from the cache.
_HIT_LATENCY_TICKS = 1

#: Crash-injection modes: ``sigkill`` kills the process outright (the
#: subprocess/CI path), ``raise`` throws :class:`ServiceCrash` so
#: in-process tests can observe the post-crash disk state.
_CRASH_MODES = ("sigkill", "raise")


@dataclass(frozen=True)
class ServiceConfig:
    """Arbiter configuration (everything on the virtual clock)."""

    num_acs: int = 8
    duration: int = 20_000
    seed: int = 2008
    #: Global bound on queued admitted requests.
    queue_limit: int = 32
    #: Virtual-clock scale: simulated cycles per service tick (at the
    #: paper's 100 MHz prototype, 200k cycles = 2 ms per tick).
    cycles_per_tick: int = 200_000
    #: Priority preemptions per request before it turns non-preemptible.
    max_preemptions: int = 3
    #: Seeded-backoff parameters for preempted-request requeueing.
    backoff_base: float = 8.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    breaker_threshold: int = 3
    breaker_window: int = 400
    breaker_cooldown: int = 800
    #: Virtual ticks at which one container dies (hard-fault storm).
    fault_ticks: Tuple[int, ...] = ()
    #: Snapshot cadence in virtual ticks; 0 disables snapshots.  The
    #: cadence is operational only — journal bytes and digests are
    #: identical whatever its value (snapshots are sidecar files).
    snapshot_every: int = 0

    def __post_init__(self) -> None:
        if self.num_acs < 1:
            raise ServiceError(f"num_acs must be >= 1, got {self.num_acs}")
        if self.duration < 1:
            raise ServiceError(
                f"duration must be >= 1, got {self.duration}"
            )
        if self.queue_limit < 1:
            raise ServiceError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.cycles_per_tick < 1:
            raise ServiceError(
                f"cycles_per_tick must be >= 1, got "
                f"{self.cycles_per_tick}"
            )
        if self.max_preemptions < 0:
            raise ServiceError(
                f"max_preemptions must be >= 0, got "
                f"{self.max_preemptions}"
            )
        if self.backoff_base <= 0 or self.backoff_factor < 1.0:
            raise ServiceError(
                f"backoff needs base > 0 and factor >= 1, got "
                f"{self.backoff_base}/{self.backoff_factor}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ServiceError(
                f"backoff_jitter must be in [0, 1], got "
                f"{self.backoff_jitter}"
            )
        if any(tick < 0 for tick in self.fault_ticks):
            raise ServiceError(
                f"fault_ticks must be non-negative: {self.fault_ticks}"
            )
        if self.snapshot_every < 0:
            raise ServiceError(
                f"snapshot_every must be >= 0, got "
                f"{self.snapshot_every}"
            )


class _ServiceJournal:
    """Canonical-JSONL journal with a running content digest.

    The digest is computed over the exact bytes written, so two runs
    agree on the journal digest iff the files are bit-identical —
    whether or not a file was actually requested.  Every line is
    flushed as it is written (a SIGKILLed run leaves its complete
    prefix on disk); ``fsync=True`` additionally forces each line to
    stable storage.

    In **recovery mode** (:meth:`for_recovery`) the journal starts from
    an already-on-disk prefix and verifies each regenerated line
    byte-for-byte against the remaining on-disk tail before switching
    to appending: any divergence raises :class:`RecoveryError` instead
    of silently forking history.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]],
        *,
        fsync: bool = False,
    ) -> None:
        self._hash = hashlib.sha256()
        self._handle: Optional[TextIO] = None
        self._fsync = bool(fsync)
        #: Logical bytes hashed so far (== file length when on disk).
        self.offset = 0
        self._tail: List[str] = []
        self._tail_pos = 0
        if path is not None:
            self._handle = Path(path).open("w", encoding="ascii")

    @classmethod
    def for_recovery(
        cls,
        path: Union[str, Path],
        prefix: bytes,
        tail: List[str],
        *,
        fsync: bool = False,
    ) -> "_ServiceJournal":
        """A journal resuming an existing file.

        ``prefix`` is the byte region a snapshot anchors to (already
        hashed, never re-verified here — the snapshot loader checked
        its SHA); ``tail`` is the list of complete journal lines after
        the prefix, to be verified against re-execution.  New lines are
        appended to the file only once the tail is fully consumed.
        """
        journal = cls(None, fsync=fsync)
        journal._hash.update(prefix)
        journal.offset = len(prefix)
        journal._tail = list(tail)
        journal._handle = Path(path).open("a", encoding="ascii")
        return journal

    def write(self, record: Dict[str, Any]) -> None:
        line = canonical_json(record)
        data = line.encode("ascii") + b"\n"
        self._hash.update(data)
        self.offset += len(data)
        if self._tail_pos < len(self._tail):
            expected = self._tail[self._tail_pos]
            if line != expected:
                raise RecoveryError(
                    f"recovery diverged from the journal at line "
                    f"{self._tail_pos}: regenerated {line!r} but the "
                    f"journal says {expected!r} — the journal was "
                    f"written by a different config, code version or "
                    f"cache state"
                )
            self._tail_pos += 1
            return  # these bytes are already on disk
        if self._handle is not None:
            self._handle.write(line + "\n")
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())

    def tail_remaining(self) -> int:
        """Journal tail lines not yet re-verified by re-execution."""
        return len(self._tail) - self._tail_pos

    def digest(self) -> str:
        return self._hash.hexdigest()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class _Arbiter:
    """One service run's mutable state (see module docstring)."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        config: ServiceConfig,
        cache: Optional[ResultCache],
        tracer: Tracer,
        metrics: Optional[MetricsRegistry],
        journal: _ServiceJournal,
        control_events: Sequence[ControlEvent] = (),
        crash_at_tick: Optional[int] = None,
        crash_mode: str = "sigkill",
        journal_path: Optional[Union[str, Path]] = None,
        fsync: bool = False,
    ) -> None:
        self.tenants = {tenant.name: tenant for tenant in tenants}
        if len(self.tenants) != len(tenants):
            raise ServiceError("tenant names must be unique")
        self.config = config
        self.cache = cache
        self.tracer = tracer
        self.metrics = metrics
        self.journal = journal
        #: Control schedule in deterministic processing order (tick,
        #: then position in the caller's list).
        self.controls: List[ControlEvent] = [
            event
            for _, event in sorted(
                enumerate(control_events),
                key=lambda item: (item[1].tick, item[0]),
            )
        ]
        self.fingerprint = config_fingerprint(
            tenants, config, self.controls
        )
        self.fabric = Fabric(self._registry(), config.num_acs)
        self.admission = AdmissionController(
            tenants,
            queue_limit=config.queue_limit,
            default_est_ticks=_DEFAULT_EST_TICKS,
        )
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            window=config.breaker_window,
            cooldown=config.breaker_cooldown,
        )
        self.rng = random.Random(config.seed)
        self.stats = {
            tenant.name: TenantStats(
                name=tenant.name, priority=tenant.priority
            )
            for tenant in tenants
        }
        self.requests: List[ServiceRequest] = []
        self.records: List[RequestRecord] = []
        self.queue: List[RequestRecord] = []
        self.running: List[RequestRecord] = []
        self.heap: List[Tuple[int, int, int, int, int]] = []
        self.memo: Dict[str, Dict[str, Any]] = {}
        self.faults = 0
        self.end_tick = 0
        self._push_seq = 0
        #: Tenants whose ``tenant_leave`` landed; arrivals shed as
        #: ``draining``.  ``drained`` ⊆ ``draining``: the subset whose
        #: admitted work has fully completed.
        self.draining: Set[str] = set()
        self.drained: Set[str] = set()
        self._crash_at = crash_at_tick
        self._crash_mode = crash_mode
        self._journal_path = (
            Path(journal_path) if journal_path is not None else None
        )
        self._fsync = bool(fsync)
        #: True while re-executing a recovered timeline: disk-cache
        #: reads outside the restored memo are suppressed so the rerun
        #: cannot see answers the crashed run stored *after* the
        #: resume point (which would flip misses into hits and diverge
        #: the journal).
        self._replaying = False
        self._next_snapshot = config.snapshot_every

    # -- setup -------------------------------------------------------------

    def _registry(self) -> AtomRegistry:
        return build_atom_registry()

    def _planning_estimate(self, tenant: TenantSpec) -> int:
        """One tenant's plan-derived admission estimate (ticks).

        For each of the tenant's hot spots, the run-time manager plans
        against the tenant's *lease* (zero included — that is the pure
        software plan); the scheduled-atom count prices the request.
        This is the paper's planning machinery answering the service's
        triage question before any traffic flows.
        """
        registry = build_atom_registry()
        library = build_si_library(registry)
        empty = library.space.molecule({})
        manager = RuntimeManager(
            library,
            get_scheduler(tenant.scheduler),
            num_acs=self.config.num_acs,
        )
        estimates: List[int] = []
        for hot_spot in tenant.hot_spots:
            plan = manager.plan_with_lease(
                hot_spot,
                HOT_SPOT_SIS[hot_spot],
                empty,
                tenant.lease_acs,
            )
            estimates.append(
                _EST_BASE_TICKS
                + _EST_TICKS_PER_ATOM * plan.num_scheduled_atoms
            )
        return sum(estimates) // len(estimates)

    def seed_estimates(self) -> None:
        """Seed every tenant's admission estimate from leased planning."""
        for name in sorted(self.tenants):
            self.admission.seed_estimate(
                name, self._planning_estimate(self.tenants[name])
            )

    # -- event plumbing ----------------------------------------------------

    def push(self, tick: int, kind: int, a: int = -1, b: int = -1) -> None:
        self._push_seq += 1
        heapq.heappush(self.heap, (tick, kind, self._push_seq, a, b))

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(value)

    # -- result serving ----------------------------------------------------

    def _cell_for(self, request: ServiceRequest, degraded: bool) -> SweepCell:
        tenant = self.tenants[request.tenant]
        workload = dataclasses.replace(
            tenant.workload,
            hot_spots=(request.hot_spot,),
            seed=tenant.workload.seed + request.variant,
        )
        if degraded or request.lease_acs == 0:
            return SweepCell(
                system="Software", num_acs=0, workload=workload
            )
        return SweepCell(
            system="RISPP",
            scheduler=tenant.scheduler,
            num_acs=request.lease_acs,
            workload=workload,
        )

    def _probe(self, cell: SweepCell) -> Optional[Dict[str, Any]]:
        """A previously-served answer for ``cell``, if any (no compute)."""
        key = cell_key(cell, self._salt())
        payload = self.memo.get(key)
        if payload is not None:
            return payload
        if self._replaying:
            # Recovery: the disk cache may hold answers the crashed run
            # stored after the resume point.  The original run saw a
            # miss here (every disk hit is memoised, and the memo was
            # restored), so the rerun must miss too.
            return None
        if self.cache is not None and self.cache.contains(cell):
            payload = self.cache.get(cell)
            if payload is not None:
                self.memo[key] = payload
            return payload
        return None

    def _execute(self, cell: SweepCell) -> Tuple[Dict[str, Any], bool]:
        """The answer for ``cell``: memo, then read-through cache."""
        key = cell_key(cell, self._salt())
        memoised = self.memo.get(key)
        if memoised is not None:
            return memoised, True
        if self.cache is not None and not self._replaying:
            payload, hit = self.cache.read_through(
                cell, lambda: execute_cell(cell).to_json_dict()
            )
        else:
            # No cache — or recovering, where a disk read could surface
            # post-crash answers the original run computed itself.  The
            # original's read-through miss computed and stored; do the
            # same, so the cache stays complete and ``hit`` agrees.
            payload, hit = execute_cell(cell).to_json_dict(), False
            if self.cache is not None:
                self.cache.put(cell, payload)
        self.memo[key] = payload
        return payload, hit

    def _salt(self) -> str:
        return self.cache.salt if self.cache is not None else (
            CODE_VERSION_SALT
        )

    @staticmethod
    def _digest(payload: Dict[str, Any]) -> str:
        return hashlib.sha256(
            canonical_json(payload).encode("ascii")
        ).hexdigest()[:16]

    def _service_ticks(self, payload: Dict[str, Any]) -> int:
        return max(
            1, int(payload["total_cycles"]) // self.config.cycles_per_tick
        )

    # -- the event loop ----------------------------------------------------

    def run(self) -> ServiceReport:
        self.requests = list(
            generate_requests(
                list(self.tenants.values()),
                self.config.duration,
                self.config.seed,
            )
        )
        self.journal.write(
            {
                "kind": "header",
                "format": SERVICE_JOURNAL_FORMAT,
                "salt": self._salt(),
                "fingerprint": self.fingerprint,
                "seed": self.config.seed,
                "duration": self.config.duration,
                "num_acs": self.config.num_acs,
                "tenants": sorted(self.tenants),
            }
        )
        self.seed_estimates()
        for index, request in enumerate(self.requests):
            self.push(request.arrival, _ARRIVAL, index)
        for tick in self.config.fault_ticks:
            self.push(tick, _FAULT)
        for index, _event in enumerate(self.controls):
            self.push(self.controls[index].tick, _CONTROL, index)
        return self._run_loop()

    def run_recovered(self) -> ServiceReport:
        """Resume a restored timeline: the heap already holds the rest."""
        return self._run_loop()

    def _run_loop(self) -> ServiceReport:
        while self.heap:
            tick, kind, _seq, a, b = heapq.heappop(self.heap)
            now = self.end_tick = max(self.end_tick, tick)
            if self._crash_at is not None and now >= self._crash_at:
                self._crash(now)
            transition = self.breaker.poll(now)
            if transition is not None:
                self._breaker_event(now, transition)
            if kind == _FAULT:
                self._on_fault(now)
            elif kind == _CONTROL:
                self._on_control(now, self.controls[a])
            elif kind == _COMPLETE:
                self._on_complete(now, a, b)
            elif kind == _ARRIVAL:
                self._on_arrival(now, self.requests[a])
            # _DISPATCH events carry no payload: the dispatch pass below
            # runs after *every* event anyway; the heap entry only
            # guarantees the loop wakes up when a backoff gate opens.
            self._dispatch(now)
            if (
                self._journal_path is not None
                and self.config.snapshot_every > 0
                and not self._replaying
                and now >= self._next_snapshot
                and self.heap
            ):
                self._write_snapshot(now)
        if self.queue or self.running:
            raise ServiceError(
                f"arbiter drained its event heap with {len(self.queue)} "
                f"queued and {len(self.running)} running requests left"
            )
        return self._report()

    def _crash(self, now: int) -> None:
        """The chaos hook: die *before* processing this tick's event.

        Journal lines are flushed as written, so the on-disk prefix is
        exactly the lines the run produced before this tick — the state
        recovery re-executes against.
        """
        if self._crash_mode == "raise":
            raise ServiceCrash(
                f"injected crash at tick {now} (crash_mode=raise)"
            )
        os.kill(os.getpid(), signal.SIGKILL)

    # -- event handlers ----------------------------------------------------

    def _shed(self, now: int, request: ServiceRequest, reason: str) -> None:
        stats = self.stats[request.tenant]
        stats.shed[reason] = stats.shed.get(reason, 0) + 1
        self._count(f"service.shed.{reason}")
        if self.tracer.enabled:
            self.tracer.emit(
                RequestShed(
                    cycle=now,
                    tenant=request.tenant,
                    request_id=request.request_id,
                    reason=reason,
                )
            )
        self.journal.write(
            {
                "kind": "shed",
                "tick": now,
                "tenant": request.tenant,
                "request": request.request_id,
                "reason": reason,
            }
        )

    def _on_arrival(self, now: int, request: ServiceRequest) -> None:
        stats = self.stats[request.tenant]
        stats.submitted += 1
        self._count("service.submitted")
        if request.tenant in self.draining:
            # Graceful drain: a leaving tenant's new arrivals are shed
            # before any cache probe — the tenant is *going away*, not
            # entitled to admission-free answers.
            self._shed(now, request, "draining")
            return
        cell = self._cell_for(request, degraded=False)
        payload = self._probe(cell)
        if payload is not None:
            # Answer reuse: the content-addressed result server already
            # holds this answer — serve it admission-free.
            record = RequestRecord(
                request=request,
                status="running",
                admitted=False,
                cache_hit=True,
                service_ticks=_HIT_LATENCY_TICKS,
                digest=self._digest(payload),
            )
            record.started = now
            record.index = len(self.records)
            self.records.append(record)
            self.running.append(record)
            self.journal.write(
                {
                    "kind": "hit",
                    "tick": now,
                    "tenant": request.tenant,
                    "request": request.request_id,
                }
            )
            self.push(
                now + _HIT_LATENCY_TICKS,
                _COMPLETE,
                record.index,
                record.epoch,
            )
            return
        reason = self.admission.admit(
            request,
            now,
            queue_depth=len(self.queue),
            backlog_ticks=sum(r.est_ticks for r in self.queue),
            capacity_slots=max(
                1,
                self.fabric.usable_acs // max(1, request.lease_acs),
            ),
        )
        if reason is not None:
            self._shed(now, request, reason)
            return
        stats.admitted += 1
        self._count("service.admitted")
        record = RequestRecord(
            request=request,
            est_ticks=self.admission.estimate(request.tenant),
        )
        record.index = len(self.records)
        self.records.append(record)
        self.queue.append(record)
        if self.tracer.enabled:
            self.tracer.emit(
                RequestAdmitted(
                    cycle=now,
                    tenant=request.tenant,
                    request_id=request.request_id,
                    hot_spot=request.hot_spot,
                    deadline=request.deadline,
                    lease_acs=request.lease_acs,
                )
            )
        self.journal.write(
            {
                "kind": "admit",
                "tick": now,
                "tenant": request.tenant,
                "request": request.request_id,
                "hot_spot": request.hot_spot,
                "deadline": request.deadline,
            }
        )

    def _on_fault(self, now: int) -> None:
        alive = [
            c.index for c in self.fabric.containers if not c.is_faulty
        ]
        if not alive:
            return
        index = alive[0]
        self.fabric.kill_container(index)
        self.faults += 1
        self._count("service.faults")
        if self.tracer.enabled:
            self.tracer.emit(
                ContainerDead(cycle=now, container_index=index)
            )
        self.journal.write(
            {"kind": "fault", "tick": now, "container": index}
        )
        transition = self.breaker.on_fault(now)
        if transition is not None:
            self._breaker_event(now, transition)
        self._preempt_overcommitted(now, "fault")

    def _preempt_overcommitted(self, now: int, reason: str) -> None:
        """Shrunken fabric: force-preempt the lowest-priority leases
        until the granted leases fit the remaining capacity again."""
        while self.fabric.overcommitted_acs > 0:
            holders = [r for r in self.running if r.holds_lease]
            if not holders:
                break
            holders.sort(
                key=lambda r: (
                    r.request.priority,
                    -r.request.deadline,
                    -r.request.seq,
                )
            )
            self._preempt(holders[0], now, reason)

    # -- live reconfiguration ----------------------------------------------

    def _on_control(self, now: int, event: ControlEvent) -> None:
        if event.action == "tenant_join":
            self._control_join(now, event)
        elif event.action == "tenant_leave":
            self._control_leave(now, event)
        elif event.action == "ac_add":
            self._control_ac_add(now, event)
        else:
            self._control_ac_remove(now, event)

    def _control_join(self, now: int, event: ControlEvent) -> None:
        spec = event.spec
        assert spec is not None  # validate_control_events enforced it
        self.tenants[spec.name] = spec
        self.stats[spec.name] = TenantStats(
            name=spec.name, priority=spec.priority
        )
        self.admission.add_tenant(spec)
        self.admission.seed_estimate(
            spec.name, self._planning_estimate(spec)
        )
        self._count("service.tenants_joined")
        if self.tracer.enabled:
            self.tracer.emit(
                TenantJoined(
                    cycle=now,
                    tenant=spec.name,
                    priority=spec.priority,
                    lease_acs=spec.lease_acs,
                )
            )
        self.journal.write(
            {
                "kind": "control",
                "action": "tenant_join",
                "tick": now,
                "tenant": spec.name,
            }
        )
        # The joining tenant's request stream: seeded from the service
        # seed and the tenant *name* (exactly like the initial fleet's
        # streams), started relative to the join tick.  Global sequence
        # numbers continue from the current request table, so the
        # stream — and every arbitration tie-break — is a pure function
        # of (fleet, config, control schedule).
        rng = random.Random(f"{self.config.seed}:{spec.name}")
        low = max(1, spec.mean_gap // 2)
        high = max(low, spec.mean_gap * 3 // 2)
        tick = now + low + rng.randrange(high - low + 1)
        counter = 0
        while tick < self.config.duration:
            hot_spot = spec.hot_spots[rng.randrange(len(spec.hot_spots))]
            variant = rng.randrange(spec.variants)
            request = ServiceRequest(
                tenant=spec.name,
                request_id=f"{spec.name}-r{counter:04d}",
                hot_spot=hot_spot,
                variant=variant,
                arrival=tick,
                deadline=tick + spec.deadline_slack,
                lease_acs=spec.lease_acs,
                priority=spec.priority_rank,
                seq=len(self.requests),
            )
            self.requests.append(request)
            self.push(tick, _ARRIVAL, request.seq)
            counter += 1
            tick += low + rng.randrange(high - low + 1)

    def _control_leave(self, now: int, event: ControlEvent) -> None:
        self.draining.add(event.name)
        self._count("service.tenants_leaving")
        self.journal.write(
            {
                "kind": "control",
                "action": "tenant_leave",
                "tick": now,
                "tenant": event.name,
            }
        )
        self._check_drained(now, event.name)

    def _control_ac_add(self, now: int, event: ControlEvent) -> None:
        self.fabric.add_containers(event.count)
        self._count("service.acs_added", event.count)
        self.journal.write(
            {
                "kind": "control",
                "action": "ac_add",
                "tick": now,
                "count": event.count,
                "num_acs": self.fabric.num_acs,
            }
        )

    def _control_ac_remove(self, now: int, event: ControlEvent) -> None:
        for _ in range(event.count):
            candidates = [
                c.index
                for c in self.fabric.containers
                if not c.is_faulty
            ]
            if not candidates:
                break
            index = candidates[-1]  # stale-victim style: highest live
            self.fabric.retire_container(index)
            self._count("service.acs_retired")
            if self.tracer.enabled:
                self.tracer.emit(
                    AcRetired(
                        cycle=now,
                        index=index,
                        usable_acs=self.fabric.usable_acs,
                    )
                )
            self.journal.write(
                {
                    "kind": "control",
                    "action": "ac_remove",
                    "tick": now,
                    "container": index,
                    "usable_acs": self.fabric.usable_acs,
                }
            )
        self._preempt_overcommitted(now, "retire")

    def _check_drained(self, now: int, name: str) -> None:
        """Emit the drain completion once a leaver has no work left."""
        if name not in self.draining or name in self.drained:
            return
        if any(r.request.tenant == name for r in self.queue):
            return
        if any(r.request.tenant == name for r in self.running):
            return
        self.drained.add(name)
        completed = self.stats[name].completed
        self._count("service.tenants_drained")
        if self.tracer.enabled:
            self.tracer.emit(
                TenantDrained(
                    cycle=now, tenant=name, completed=completed
                )
            )
        self.journal.write(
            {
                "kind": "drained",
                "tick": now,
                "tenant": name,
                "completed": completed,
            }
        )

    def _on_complete(self, now: int, index: int, epoch: int) -> None:
        record = self.records[index]
        if record.status != "running" or record.epoch != epoch:
            return  # stale completion of a preempted dispatch
        record.status = "done"
        record.completed = now
        request = record.request
        stats = self.stats[request.tenant]
        latency = now - request.arrival
        stats.latencies.append(latency)
        stats.completions.append(
            {
                "request": request.request_id,
                "tick": now,
                "digest": record.digest,
                "degraded": record.degraded,
                "cache_hit": record.cache_hit,
            }
        )
        if not record.admitted:
            stats.cache_hits += 1
            self._count("service.cache_hits")
        else:
            stats.completed += 1
            self._count("service.completed")
            self.admission.release(request)
            if record.degraded:
                stats.degraded += 1
                self._count("service.degraded")
        if record.holds_lease:
            self.fabric.release_acs(request.lease_acs)
            record.holds_lease = False
            self.admission.observe_service_ticks(
                request.tenant, record.service_ticks
            )
            transition = self.breaker.on_success(now)
            if transition is not None:
                self._breaker_event(now, transition)
        self.running.remove(record)
        self._observe("service.latency_ticks", float(latency))
        if self.tracer.enabled:
            self.tracer.emit(
                RequestCompleted(
                    cycle=now,
                    tenant=request.tenant,
                    request_id=request.request_id,
                    latency=latency,
                    degraded=record.degraded,
                    cache_hit=record.cache_hit,
                )
            )
        self.journal.write(
            {
                "kind": "complete",
                "tick": now,
                "tenant": request.tenant,
                "request": request.request_id,
                "latency": latency,
                "degraded": record.degraded,
                "cache_hit": record.cache_hit,
                "digest": record.digest,
            }
        )
        self._check_drained(now, request.tenant)

    def _breaker_event(self, now: int, state: str) -> None:
        if state == "open":
            self._count("service.breaker_trips")
        if self.tracer.enabled:
            self.tracer.emit(
                BreakerTransition(
                    cycle=now,
                    state=state,
                    faults=self.breaker.faults_in_window(now),
                )
            )
        self.journal.write(
            {"kind": "breaker", "tick": now, "state": state}
        )

    # -- dispatch and preemption -------------------------------------------

    def _dispatch(self, now: int) -> None:
        while True:
            eligible = [r for r in self.queue if r.not_before <= now]
            if not eligible:
                return
            eligible.sort(
                key=lambda r: (
                    -r.request.priority,
                    r.request.deadline,
                    r.request.seq,
                )
            )
            head = eligible[0]
            lease = head.request.lease_acs
            if (
                self.breaker.is_open(now)
                or lease > self.fabric.usable_acs
                or lease == 0
            ):
                self._dispatch_degraded(head, now)
                continue
            if lease <= self.fabric.free_acs:
                self._dispatch_fabric(head, now)
                continue
            if not self._preempt_for(head, now):
                return  # capacity busy; a completion will wake us

    def _start(self, record: RequestRecord, now: int) -> None:
        self.queue.remove(record)
        self.running.append(record)
        record.status = "running"
        record.started = now
        record.epoch += 1

    def _dispatch_fabric(self, record: RequestRecord, now: int) -> None:
        request = record.request
        self.fabric.reserve_acs(request.lease_acs)
        record.holds_lease = True
        record.degraded = False
        payload, hit = self._execute(
            self._cell_for(request, degraded=False)
        )
        record.cache_hit = record.cache_hit or hit
        record.digest = self._digest(payload)
        record.service_ticks = self._service_ticks(payload)
        self._observe(
            "service.service_ticks", float(record.service_ticks)
        )
        self._start(record, now)
        self.push(
            now + record.service_ticks,
            _COMPLETE,
            record.index,
            record.epoch,
        )

    def _dispatch_degraded(self, record: RequestRecord, now: int) -> None:
        request = record.request
        if self.breaker.is_open(now):
            reason = "breaker_open"
        elif request.lease_acs > self.fabric.usable_acs:
            reason = "capacity_lost"
        else:
            reason = "cisa_tenant"
        record.degraded = True
        record.degrade_reason = reason
        record.holds_lease = False
        payload, hit = self._execute(
            self._cell_for(request, degraded=True)
        )
        record.cache_hit = record.cache_hit or hit
        record.digest = self._digest(payload)
        record.service_ticks = self._service_ticks(payload)
        self._start(record, now)
        if self.tracer.enabled:
            self.tracer.emit(
                DegradedServed(
                    cycle=now,
                    tenant=request.tenant,
                    request_id=request.request_id,
                    reason=reason,
                )
            )
        self.journal.write(
            {
                "kind": "degraded",
                "tick": now,
                "tenant": request.tenant,
                "request": request.request_id,
                "reason": reason,
            }
        )
        self.push(
            now + record.service_ticks,
            _COMPLETE,
            record.index,
            record.epoch,
        )

    def _preempt_for(self, head: RequestRecord, now: int) -> bool:
        """Free capacity for ``head`` by preempting lower priorities."""
        needed = head.request.lease_acs - self.fabric.free_acs
        victims = [
            r
            for r in self.running
            if r.holds_lease
            and r.preemptions < self.config.max_preemptions
            and r.request.priority < head.request.priority
        ]
        victims.sort(
            key=lambda r: (
                r.request.priority,
                -r.request.deadline,
                -r.request.seq,
            )
        )
        chosen: List[RequestRecord] = []
        freed = 0
        for victim in victims:
            if freed >= needed:
                break
            chosen.append(victim)
            freed += victim.request.lease_acs
        if freed < needed:
            return False
        for victim in chosen:
            self._preempt(victim, now, "priority")
        return True

    def _preempt(
        self, record: RequestRecord, now: int, reason: str
    ) -> None:
        request = record.request
        self.fabric.release_acs(request.lease_acs)
        record.holds_lease = False
        record.status = "queued"
        record.epoch += 1  # invalidate the scheduled completion
        record.preemptions += 1
        backoff = max(
            1,
            int(
                round(
                    backoff_delay(
                        self.config.backoff_base,
                        self.config.backoff_factor,
                        record.preemptions,
                        jitter=self.config.backoff_jitter,
                        rng=self.rng,
                    )
                )
            ),
        )
        record.not_before = now + backoff
        self.running.remove(record)
        self.queue.append(record)
        self.push(record.not_before, _DISPATCH)
        stats = self.stats[request.tenant]
        stats.preemptions += 1
        self._count("service.preemptions")
        if self.tracer.enabled:
            self.tracer.emit(
                RequestPreempted(
                    cycle=now,
                    tenant=request.tenant,
                    request_id=request.request_id,
                    reason=reason,
                    preemptions=record.preemptions,
                    backoff=backoff,
                )
            )
        self.journal.write(
            {
                "kind": "preempt",
                "tick": now,
                "tenant": request.tenant,
                "request": request.request_id,
                "reason": reason,
                "backoff": backoff,
            }
        )

    # -- snapshot / restore ------------------------------------------------

    _RECORD_FIELDS = (
        "status",
        "admitted",
        "index",
        "est_ticks",
        "not_before",
        "preemptions",
        "epoch",
        "started",
        "completed",
        "degraded",
        "cache_hit",
        "holds_lease",
        "service_ticks",
        "digest",
        "degrade_reason",
    )

    def _capture_state(self, now: int) -> Dict[str, Any]:
        """The complete mutable state of the run at ``now`` (JSON-able).

        Captured *between* heap events: the heap holds everything still
        pending, so restoring this dict and re-entering the loop is the
        exact continuation of the original run.
        """
        rng_state = self.rng.getstate()
        return {
            "format": SNAPSHOT_FORMAT,
            "salt": self._salt(),
            "fingerprint": self.fingerprint,
            "tick": now,
            "journal_offset": self.journal.offset,
            "journal_sha": self.journal.digest(),
            "end_tick": self.end_tick,
            "push_seq": self._push_seq,
            "heap": [list(entry) for entry in self.heap],
            "requests": [
                dataclasses.asdict(request) for request in self.requests
            ],
            "records": [
                dict(
                    {"seq": record.request.seq},
                    **{
                        name: getattr(record, name)
                        for name in self._RECORD_FIELDS
                    },
                )
                for record in self.records
            ],
            "queue": [record.index for record in self.queue],
            "running": [record.index for record in self.running],
            "active_tenants": sorted(self.tenants),
            "stats": {
                name: {
                    "priority": stats.priority,
                    "submitted": stats.submitted,
                    "admitted": stats.admitted,
                    "completed": stats.completed,
                    "degraded": stats.degraded,
                    "cache_hits": stats.cache_hits,
                    "preemptions": stats.preemptions,
                    "shed": stats.shed,
                    "latencies": stats.latencies,
                    "completions": stats.completions,
                }
                for name, stats in self.stats.items()
            },
            "admission": {
                name: {
                    "tokens": ledger.bucket.tokens,
                    "bucket_last": ledger.bucket._last,
                    "in_flight": ledger.in_flight,
                    "leased_atoms": ledger.leased_atoms,
                    "est_ticks": ledger.est_ticks,
                }
                for name, ledger in (
                    (name, self.admission.ledger_for(name))
                    for name in sorted(self.tenants)
                )
            },
            "breaker": {
                "trips": self.breaker.trips,
                "state": self.breaker.state,
                "open_until": self.breaker._open_until,
                "faults": list(self.breaker._faults),
            },
            "rng": [rng_state[0], list(rng_state[1]), rng_state[2]],
            "memo": self.memo,
            "fabric": {
                "num_acs": self.fabric.num_acs,
                "dead": list(self.fabric.dead_indices),
                "retired": list(self.fabric.retired_indices),
                "reserved": self.fabric.reserved_acs,
            },
            "faults": self.faults,
            "draining": sorted(self.draining),
            "drained": sorted(self.drained),
        }

    def _write_snapshot(self, now: int) -> None:
        assert self._journal_path is not None
        state = self._capture_state(now)
        path = write_snapshot(
            self._journal_path, state, fsync=self._fsync
        )
        self._next_snapshot = now + self.config.snapshot_every
        self._count("service.snapshots")
        if self.tracer.enabled:
            self.tracer.emit(
                SnapshotWritten(
                    cycle=now,
                    tick=now,
                    path=str(path),
                    journal_offset=int(state["journal_offset"]),
                )
            )

    def _restore_state(self, state: Dict[str, Any]) -> None:
        """Rebuild the arbiter from a validated snapshot dict.

        Immutable structure (tenant specs) is *re-derived* from the
        initial fleet plus the control schedule's join specs; only
        mutable state is deserialised.
        """
        spec_by_name: Dict[str, TenantSpec] = dict(self.tenants)
        for event in self.controls:
            if event.action == "tenant_join" and event.spec is not None:
                spec_by_name[event.name] = event.spec
        try:
            active: List[str] = list(state["active_tenants"])
            self.tenants = {
                name: spec_by_name[name] for name in active
            }
            self.requests = [
                ServiceRequest(**raw) for raw in state["requests"]
            ]
            by_seq = {
                request.seq: request for request in self.requests
            }
            self.records = []
            for raw in state["records"]:
                record = RequestRecord(request=by_seq[raw["seq"]])
                for name in self._RECORD_FIELDS:
                    setattr(record, name, raw[name])
                self.records.append(record)
            self.queue = [self.records[i] for i in state["queue"]]
            self.running = [self.records[i] for i in state["running"]]
            self.heap = [
                (
                    int(e[0]),
                    int(e[1]),
                    int(e[2]),
                    int(e[3]),
                    int(e[4]),
                )
                for e in state["heap"]
            ]
            self._push_seq = int(state["push_seq"])
            self.end_tick = int(state["end_tick"])
            self.faults = int(state["faults"])
            self.draining = set(state["draining"])
            self.drained = set(state["drained"])
            self.memo = dict(state["memo"])
            self.stats = {}
            for name, raw_stats in state["stats"].items():
                stats = TenantStats(
                    name=name, priority=raw_stats["priority"]
                )
                stats.submitted = raw_stats["submitted"]
                stats.admitted = raw_stats["admitted"]
                stats.completed = raw_stats["completed"]
                stats.degraded = raw_stats["degraded"]
                stats.cache_hits = raw_stats["cache_hits"]
                stats.preemptions = raw_stats["preemptions"]
                stats.shed = dict(raw_stats["shed"])
                stats.latencies = list(raw_stats["latencies"])
                stats.completions = list(raw_stats["completions"])
                self.stats[name] = stats
            self.admission = AdmissionController(
                [spec_by_name[name] for name in active],
                queue_limit=self.config.queue_limit,
                default_est_ticks=_DEFAULT_EST_TICKS,
            )
            for name, raw_ledger in state["admission"].items():
                ledger = self.admission.ledger_for(name)
                ledger.bucket.tokens = int(raw_ledger["tokens"])
                ledger.bucket._last = int(raw_ledger["bucket_last"])
                ledger.in_flight = int(raw_ledger["in_flight"])
                ledger.leased_atoms = int(raw_ledger["leased_atoms"])
                ledger.est_ticks = int(raw_ledger["est_ticks"])
            raw_breaker = state["breaker"]
            self.breaker.trips = int(raw_breaker["trips"])
            self.breaker._state = str(raw_breaker["state"])
            self.breaker._open_until = int(raw_breaker["open_until"])
            self.breaker._faults = [
                int(t) for t in raw_breaker["faults"]
            ]
            raw_rng = state["rng"]
            self.rng.setstate(
                (raw_rng[0], tuple(raw_rng[1]), raw_rng[2])
            )
            raw_fabric = state["fabric"]
            self.fabric = Fabric(self._registry(), self.config.num_acs)
            grown = int(raw_fabric["num_acs"]) - self.config.num_acs
            if grown > 0:
                self.fabric.add_containers(grown)
            for index in raw_fabric["dead"]:
                self.fabric.kill_container(int(index))
            for index in raw_fabric["retired"]:
                self.fabric.retire_container(int(index))
            # Leases are restored verbatim: reserve_acs() would reject
            # the over-committed case a fault storm legitimately leaves
            # behind, so the counter is set directly.
            self.fabric._reserved = int(raw_fabric["reserved"])
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise RecoveryError(
                f"snapshot is structurally invalid: {exc!r}"
            ) from exc

    # -- reporting ---------------------------------------------------------

    def _report(self) -> ServiceReport:
        report = ServiceReport(
            duration=self.config.duration,
            num_acs=self.config.num_acs,
            end_tick=self.end_tick,
            tenants=self.stats,
            breaker_trips=self.breaker.trips,
            faults=self.faults,
            journal_digest=self.journal.digest(),
        )
        if report.dropped_admitted != 0:
            raise ServiceError(
                f"never-drop invariant violated: "
                f"{report.dropped_admitted} admitted requests did not "
                f"complete"
            )
        return report


def run_service(
    tenants: Sequence[TenantSpec],
    config: Optional[ServiceConfig] = None,
    cache: Optional[ResultCache] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    journal_path: Optional[Union[str, Path]] = None,
    control_events: Sequence[ControlEvent] = (),
    crash_at_tick: Optional[int] = None,
    crash_mode: str = "sigkill",
    fsync: bool = False,
) -> ServiceReport:
    """Run the multi-tenant fabric arbitration service to completion.

    Arrivals stop at ``config.duration`` ticks; the run then drains
    every admitted request (the virtual clock keeps advancing), so the
    report's never-drop invariant is checked over the *whole* stream.

    ``control_events`` schedules live reconfiguration; it is validated
    up front and enters the journal header's config fingerprint.
    ``crash_at_tick`` arms the chaos crash injector: the run dies
    immediately before processing the first event at or after that tick
    (``crash_mode="sigkill"`` kills the process, ``"raise"`` raises
    :class:`~repro.errors.ServiceCrash`).  ``fsync`` forces every
    journal line to stable storage.
    """
    config = config if config is not None else ServiceConfig()
    if crash_mode not in _CRASH_MODES:
        raise ServiceError(
            f"unknown crash_mode {crash_mode!r}; known: "
            f"{list(_CRASH_MODES)}"
        )
    validate_control_events(
        [tenant.name for tenant in tenants], control_events
    )
    journal = _ServiceJournal(journal_path, fsync=fsync)
    try:
        arbiter = _Arbiter(
            tenants=tenants,
            config=config,
            cache=cache,
            tracer=tracer if tracer is not None else NULL_TRACER,
            metrics=metrics,
            journal=journal,
            control_events=control_events,
            crash_at_tick=crash_at_tick,
            crash_mode=crash_mode,
            journal_path=journal_path,
            fsync=fsync,
        )
        return arbiter.run()
    finally:
        journal.close()


def recover_service(
    tenants: Sequence[TenantSpec],
    config: Optional[ServiceConfig] = None,
    cache: Optional[ResultCache] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    journal_path: Union[str, Path] = "",
    control_events: Sequence[ControlEvent] = (),
    fsync: bool = False,
) -> ServiceReport:
    """Recover a crashed service run from its journal (and snapshots).

    Must be invoked with the *same* fleet, config, control schedule and
    cache setup as the crashed run — the journal header's salt and
    config fingerprint are cross-checked and a mismatch raises
    :class:`~repro.errors.RecoveryError`.

    The newest snapshot whose journal anchor still matches the on-disk
    bytes is restored and the run re-executed from its tick; with no
    usable snapshot the whole timeline replays from tick 0.  Either
    way, every regenerated journal line is verified byte-for-byte
    against the on-disk tail before new lines are appended, so the
    recovered run's final journal — and therefore every digest and
    per-tenant report — is bit-identical to what the uninterrupted run
    would have produced.

    Determinism caveat: recovery re-executes with disk-cache reads
    suppressed outside the restored memo (see ``_Arbiter._probe``).
    For the supported setups — ``--no-cache`` or a cache directory
    private to the run — this is exactly the original timeline.  A
    cache shared with *other* writers that warmed keys before the
    original run started is not reconstructible; such divergence is
    detected and raised, never silently absorbed.
    """
    config = config if config is not None else ServiceConfig()
    validate_control_events(
        [tenant.name for tenant in tenants], control_events
    )
    path = Path(journal_path)
    if not path.is_file():
        raise RecoveryError(
            f"cannot recover: journal {str(path)!r} does not exist"
        )
    trim_torn_tail(path)
    data = path.read_bytes()
    lines = data.decode("ascii").splitlines()
    if not lines:
        raise RecoveryError(
            f"cannot recover: journal {str(path)!r} is empty (not even "
            f"a header survived)"
        )
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        raise RecoveryError(
            f"cannot recover: journal header is not valid JSON: {exc}"
        ) from exc
    salt = cache.salt if cache is not None else CODE_VERSION_SALT
    ordered_controls = [
        event
        for _, event in sorted(
            enumerate(control_events),
            key=lambda item: (item[1].tick, item[0]),
        )
    ]
    fingerprint = config_fingerprint(tenants, config, ordered_controls)
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise RecoveryError(
            "cannot recover: journal does not start with a header line"
        )
    if header.get("format") != SERVICE_JOURNAL_FORMAT:
        raise RecoveryError(
            f"cannot recover: journal format "
            f"{header.get('format')!r} != {SERVICE_JOURNAL_FORMAT} "
            f"(written by a different code version)"
        )
    if header.get("salt") != salt:
        raise RecoveryError(
            f"cannot recover: journal salt {header.get('salt')!r} does "
            f"not match this code version / cache setup"
        )
    if header.get("fingerprint") != fingerprint:
        raise RecoveryError(
            "cannot recover: config fingerprint mismatch — the fleet, "
            "config or control schedule differs from the crashed run"
        )
    state = load_latest_snapshot(
        path, salt=salt, fingerprint=fingerprint, journal_bytes=data
    )
    resolved_tracer = tracer if tracer is not None else NULL_TRACER
    if state is not None:
        offset = int(state["journal_offset"])
        tail = data[offset:].decode("ascii").splitlines()
        journal = _ServiceJournal.for_recovery(
            path, prefix=data[:offset], tail=tail, fsync=fsync
        )
        source = "snapshot"
        resume_tick = int(state["tick"])
    else:
        tail = lines
        journal = _ServiceJournal.for_recovery(
            path, prefix=b"", tail=tail, fsync=fsync
        )
        source = "replay"
        resume_tick = 0
    try:
        arbiter = _Arbiter(
            tenants=tenants,
            config=config,
            cache=cache,
            tracer=resolved_tracer,
            metrics=metrics,
            journal=journal,
            control_events=control_events,
        )
        arbiter._replaying = True
        if resolved_tracer.enabled:
            resolved_tracer.emit(
                ServiceRecovered(
                    cycle=resume_tick,
                    source=source,
                    resume_tick=resume_tick,
                    tail_lines=len(tail),
                )
            )
        if state is not None:
            arbiter._restore_state(state)
            report = arbiter.run_recovered()
        else:
            report = arbiter.run()
        if journal.tail_remaining() > 0:
            raise RecoveryError(
                f"recovery finished with {journal.tail_remaining()} "
                f"journal lines never regenerated — the journal holds "
                f"history this configuration does not produce"
            )
        return report
    finally:
        journal.close()
