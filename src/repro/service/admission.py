"""Admission control: token buckets, per-tenant caps, deadline triage.

Every shedding decision the service ever makes happens *here*, at
admission time, and is tagged with one of :data:`SHED_REASONS`.  Once a
request is admitted it is never dropped — overload later in its life
shows up as preemption-and-requeue or a degraded answer, not as loss.

All arithmetic is integer arithmetic on the virtual clock: the
controller is a pure function of the request stream, so reruns shed
exactly the same requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..errors import ServiceError
from .request import ServiceRequest
from .tenant import TenantSpec

__all__ = ["SHED_REASONS", "TokenBucket", "AdmissionController"]

#: The shedding taxonomy.  ``draining`` is checked first (a leaving
#: tenant's new arrivals are refused outright); then the gates in
#: order: ``rate_limited`` / ``in_flight_cap`` / ``atom_budget`` /
#: ``queue_full`` are the over-budget reasons; ``deadline`` sheds
#: requests that could not finish in time even if admitted (per the
#: backlog estimate).
SHED_REASONS = (
    "draining",
    "rate_limited",
    "in_flight_cap",
    "atom_budget",
    "queue_full",
    "deadline",
)


class TokenBucket:
    """Integer token bucket on the virtual clock: one token per
    ``interval`` ticks, at most ``capacity`` banked."""

    def __init__(self, capacity: int, interval: int) -> None:
        if capacity < 1 or interval < 1:
            raise ServiceError(
                f"token bucket needs capacity >= 1 and interval >= 1, "
                f"got capacity={capacity} interval={interval}"
            )
        self.capacity = int(capacity)
        self.interval = int(interval)
        self.tokens = int(capacity)
        self._last = 0

    def _refill(self, now: int) -> None:
        gained = (now - self._last) // self.interval
        if gained > 0:
            self.tokens = min(self.capacity, self.tokens + gained)
            self._last += gained * self.interval
            if self.tokens == self.capacity:
                # Full bucket: credit no partial interval from idle time.
                self._last = now

    def try_take(self, now: int) -> bool:
        """Consume one token if available; refills first."""
        self._refill(now)
        if self.tokens > 0:
            self.tokens -= 1
            return True
        return False


@dataclass
class _TenantLedger:
    """Per-tenant admission bookkeeping."""

    spec: TenantSpec
    bucket: TokenBucket
    in_flight: int = 0
    leased_atoms: int = 0
    #: EWMA of observed fabric service times, scaled — see
    #: :meth:`AdmissionController.observe_service_ticks`.
    est_ticks: int = 0


class AdmissionController:
    """The service's single admission gate.

    ``admit`` applies the gates in :data:`SHED_REASONS` order and
    returns the shed reason, or ``None`` when the request is admitted
    (after charging the tenant's ledger).  ``release`` refunds the
    ledger when an admitted request completes.
    """

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        queue_limit: int,
        default_est_ticks: int = 24,
    ) -> None:
        if queue_limit < 1:
            raise ServiceError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        if len({t.name for t in tenants}) != len(tenants):
            raise ServiceError("tenant names must be unique")
        self.queue_limit = int(queue_limit)
        self.default_est_ticks = int(default_est_ticks)
        self._ledgers: Dict[str, _TenantLedger] = {
            tenant.name: _TenantLedger(
                spec=tenant,
                bucket=TokenBucket(tenant.burst, tenant.rate_interval),
                est_ticks=self.default_est_ticks,
            )
            for tenant in tenants
        }

    def ledger_for(self, tenant: str) -> _TenantLedger:
        return self._ledgers[tenant]

    def add_tenant(self, spec: TenantSpec) -> None:
        """Open a fresh ledger for a tenant joining mid-run."""
        if spec.name in self._ledgers:
            raise ServiceError(
                f"tenant {spec.name!r} already has an admission ledger"
            )
        self._ledgers[spec.name] = _TenantLedger(
            spec=spec,
            bucket=TokenBucket(spec.burst, spec.rate_interval),
            est_ticks=self.default_est_ticks,
        )

    def estimate(self, tenant: str) -> int:
        """Current service-time estimate (ticks) for one tenant."""
        return self._ledgers[tenant].est_ticks

    def observe_service_ticks(self, tenant: str, actual: int) -> None:
        """Fold an observed fabric service time into the estimate
        (integer EWMA, weight 1/4 on the new observation)."""
        ledger = self._ledgers[tenant]
        ledger.est_ticks = max(1, (3 * ledger.est_ticks + actual) // 4)

    def seed_estimate(self, tenant: str, est: int) -> None:
        """Install a planning-derived initial estimate (pre-traffic)."""
        self._ledgers[tenant].est_ticks = max(1, int(est))

    def admit(
        self,
        request: ServiceRequest,
        now: int,
        queue_depth: int,
        backlog_ticks: int,
        capacity_slots: int,
    ) -> Optional[str]:
        """Apply the admission gates; charge the ledger on admission.

        ``backlog_ticks`` is the summed service estimate of the queued
        requests ahead, ``capacity_slots`` how many requests the fabric
        serves concurrently — together they estimate this request's
        start tick for the deadline gate.
        """
        ledger = self._ledgers[request.tenant]
        spec = ledger.spec
        reason: Optional[str] = None
        if not ledger.bucket.try_take(now):
            reason = "rate_limited"
        elif ledger.in_flight >= spec.max_in_flight:
            reason = "in_flight_cap"
        elif ledger.leased_atoms + request.lease_acs > spec.atom_budget:
            reason = "atom_budget"
        elif queue_depth >= self.queue_limit:
            reason = "queue_full"
        else:
            wait = backlog_ticks // max(1, capacity_slots)
            if now + wait + ledger.est_ticks > request.deadline:
                reason = "deadline"
        if reason is not None:
            return reason
        ledger.in_flight += 1
        ledger.leased_atoms += request.lease_acs
        return None

    def release(self, request: ServiceRequest) -> None:
        """Refund one admitted request's ledger charges (completion)."""
        ledger = self._ledgers[request.tenant]
        if ledger.in_flight <= 0:
            raise ServiceError(
                f"ledger underflow for tenant {request.tenant!r}: "
                f"release without a matching admit"
            )
        ledger.in_flight -= 1
        ledger.leased_atoms -= request.lease_acs
