"""Structured results of one service run.

The report is the service's contract surface: the shed taxonomy, the
never-drop invariant (``dropped_admitted`` must be 0), per-tenant
latency percentiles, and the determinism digests — one per tenant over
its completion stream, one over the whole journal — that the soak test
and the CI ``service-soak`` job compare across runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..exec.cache import canonical_json

__all__ = ["TenantStats", "ServiceReport"]


def _percentile(values: List[int], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 <= q <= 1)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return float(ordered[rank])


@dataclass
class TenantStats:
    """Per-tenant accounting of one service run."""

    name: str
    priority: str
    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    degraded: int = 0
    cache_hits: int = 0
    preemptions: int = 0
    shed: Dict[str, int] = field(default_factory=dict)
    latencies: List[int] = field(default_factory=list)
    #: Per-completion records feeding :meth:`digest`.
    completions: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def dropped_admitted(self) -> int:
        """Admitted requests that never completed — must be 0."""
        return self.admitted - self.completed

    def digest(self) -> str:
        """SHA-256 over the tenant's completion stream (hex).

        Covers request identity, completion tick, the result payload's
        content digest and the served-degraded/cached flags — if two
        runs disagree on *any* answer or its timing, the digests differ.
        """
        payload = canonical_json(self.completions)
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "priority": self.priority,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "cache_hits": self.cache_hits,
            "preemptions": self.preemptions,
            "shed": dict(sorted(self.shed.items())),
            "dropped_admitted": self.dropped_admitted,
            "p50_latency": _percentile(self.latencies, 0.50),
            "p99_latency": _percentile(self.latencies, 0.99),
            "digest": self.digest(),
        }


@dataclass
class ServiceReport:
    """Everything one arbiter run produced."""

    duration: int
    num_acs: int
    end_tick: int
    tenants: Dict[str, TenantStats]
    breaker_trips: int = 0
    faults: int = 0
    journal_digest: str = ""

    # -- aggregates --------------------------------------------------------

    @property
    def submitted(self) -> int:
        return sum(t.submitted for t in self.tenants.values())

    @property
    def admitted(self) -> int:
        return sum(t.admitted for t in self.tenants.values())

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants.values())

    @property
    def degraded(self) -> int:
        return sum(t.degraded for t in self.tenants.values())

    @property
    def cache_hits(self) -> int:
        return sum(t.cache_hits for t in self.tenants.values())

    @property
    def preemptions(self) -> int:
        return sum(t.preemptions for t in self.tenants.values())

    @property
    def dropped_admitted(self) -> int:
        """The never-drop invariant: must be 0 after a completed run."""
        return sum(t.dropped_admitted for t in self.tenants.values())

    def shed_taxonomy(self) -> Dict[str, int]:
        """Total sheds per taxonomy reason, sorted by reason."""
        totals: Dict[str, int] = {}
        for stats in self.tenants.values():
            for reason, count in stats.shed.items():
                totals[reason] = totals.get(reason, 0) + count
        return dict(sorted(totals.items()))

    @property
    def shed_total(self) -> int:
        return sum(self.shed_taxonomy().values())

    @property
    def shed_rate(self) -> float:
        return self.shed_total / self.submitted if self.submitted else 0.0

    def latencies(self) -> List[int]:
        merged: List[int] = []
        for stats in self.tenants.values():
            merged.extend(stats.latencies)
        return merged

    def service_digest(self) -> str:
        """One digest over all tenant digests plus the journal digest."""
        parts = {
            name: stats.digest()
            for name, stats in sorted(self.tenants.items())
        }
        parts["__journal__"] = self.journal_digest
        payload = canonical_json(parts)
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    # -- rendering ---------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "duration": self.duration,
            "num_acs": self.num_acs,
            "end_tick": self.end_tick,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "cache_hits": self.cache_hits,
            "preemptions": self.preemptions,
            "dropped_admitted": self.dropped_admitted,
            "shed": self.shed_taxonomy(),
            "breaker_trips": self.breaker_trips,
            "faults": self.faults,
            "p50_latency": _percentile(self.latencies(), 0.50),
            "p99_latency": _percentile(self.latencies(), 0.99),
            "journal_digest": self.journal_digest,
            "service_digest": self.service_digest(),
            "tenants": {
                name: stats.to_json_dict()
                for name, stats in sorted(self.tenants.items())
            },
        }

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"service run: {self.submitted} submitted over "
            f"{self.duration} ticks (drained by tick {self.end_tick}), "
            f"{self.num_acs} ACs",
            f"  admitted {self.admitted}, completed {self.completed} "
            f"({self.degraded} degraded, {self.cache_hits} cache hits), "
            f"dropped {self.dropped_admitted}",
            f"  shed {self.shed_total} ({self.shed_rate:.1%}): "
            + (
                ", ".join(
                    f"{reason}={count}"
                    for reason, count in self.shed_taxonomy().items()
                )
                or "none"
            ),
            f"  faults {self.faults}, breaker trips "
            f"{self.breaker_trips}, preemptions {self.preemptions}",
            f"  latency p50 {_percentile(self.latencies(), 0.50):.0f} "
            f"p99 {_percentile(self.latencies(), 0.99):.0f} ticks",
        ]
        for name, stats in sorted(self.tenants.items()):
            lines.append(
                f"  {name} [{stats.priority}]: {stats.submitted} in, "
                f"{stats.completed} done ({stats.degraded} degraded, "
                f"{stats.cache_hits} hits), {stats.shed_total} shed, "
                f"{stats.preemptions} preempted, "
                f"digest {stats.digest()[:12]}"
            )
        lines.append(f"  service digest: {self.service_digest()}")
        return "\n".join(lines)
